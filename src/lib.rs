//! # `pba` — Parallel Balanced Allocations
//!
//! A reproduction of the parallel balls-into-bins literature around
//! *“Parallel Balanced Allocations”* (Stemann, SPAA 1996) and its
//! heavily-loaded successor (*“Parallel Balanced Allocations: The Heavily
//! Loaded Case”*): round-synchronous collision protocols, rising-threshold
//! protocols for `m ≫ n`, asymmetric superbin protocols, sequential
//! multiple-choice baselines, a deterministic simulation engine with message
//! accounting, a from-scratch parallel substrate, a numerics toolkit, and an
//! experiment harness that regenerates every reproduced result.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! ## Quickstart
//!
//! ```
//! use pba::prelude::*;
//!
//! // 1M balls into 1024 bins with the heavily-loaded threshold protocol.
//! let spec = ProblemSpec::new(1 << 20, 1 << 10).unwrap();
//! let protocol = ThresholdHeavy::new(spec);
//! let outcome = Simulator::new(spec, RunConfig::seeded(42))
//!     .run(protocol)
//!     .unwrap();
//!
//! let stats = outcome.load_stats();
//! assert_eq!(stats.total(), 1 << 20);
//! // Max load is m/n + O(1): far below the naive √((m/n)·ln n) excess.
//! assert!(stats.gap() <= 8, "gap {} too large", stats.gap());
//! ```

pub use pba_analysis as analysis;
pub use pba_cluster as cluster;
pub use pba_conformance as conformance;
pub use pba_core as core;
pub use pba_par as par;
pub use pba_protocols as protocols;
pub use pba_runner as runner;
pub use pba_stream as stream;

/// Commonly used items, re-exported for `use pba::prelude::*`.
pub mod prelude {
    pub use pba_core::{
        Allocation, ChunkPlan, EngineMetrics, ExecutorKind, FanoutSink, FaultPlan, FaultRecord,
        FaultStats, LoadStats, MessageStats, MetricsReport, MetricsSink, Phase, ProblemSpec,
        RoundProtocol, RunConfig, RunOutcome, Simulator, StragglerSpec, Tuning,
    };
    pub use pba_protocols::{
        ALight, AdlerGreedy, Asymmetric, BatchedTwoChoice, Collision, EstimatedAverage,
        FixedThreshold, GreedyD, KdChoice, ParallelTwoChoice, SingleChoice, StemannHeavy,
        ThresholdHeavy, TrivialRoundRobin, WithMemory,
    };
    pub use pba_stream::{
        replay, Batch, LatencyHistogram, PolicyKind, ReplayService, ServiceConfig, ServiceReport,
        StreamAllocator, WeightDist, Workload, WorkloadCfg, WorkloadKind,
    };
}
