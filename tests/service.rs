//! Service-level harness: the replay facade must be a *transparent* wrapper
//! around [`StreamAllocator`] — same placements as direct ingestion, no ball
//! dropped or reordered under backpressure, every in-flight batch flushed at
//! drain — and a snapshot taken mid-replay must restore into a session that
//! finishes bit-identically to the uninterrupted run.

use pba::prelude::*;

const BINS: u32 = 64;
const BATCH: u64 = 256;
const SEED: u64 = 0x5EE7;

fn workload() -> Workload {
    Workload::new(WorkloadCfg::uniform(BATCH).with_churn(0.4), SEED)
}

/// Final state we compare across interrupted and uninterrupted runs.
#[derive(Debug, PartialEq)]
struct FinalState {
    loads: Vec<u64>,
    resident: u64,
    snapshot: Vec<u8>,
    placements: Vec<Vec<u32>>,
}

/// Replay `total` batches; when `interrupt_at` is set, snapshot after that
/// batch, throw the live session away, restore from the bytes, and replay
/// the remainder in a *fresh* service session.
fn replay_with_interruption(
    policy: PolicyKind,
    shards: usize,
    parallel: bool,
    total: u64,
    interrupt_at: Option<u64>,
) -> FinalState {
    let fresh = |restored: Option<StreamAllocator>| {
        let mut alloc = match restored {
            Some(a) => a,
            None => StreamAllocator::new(BINS, SEED, policy).with_shards(shards),
        };
        if parallel {
            alloc = alloc.parallel();
        }
        alloc
    };
    let mut traffic = workload();
    let mut placements = Vec::new();

    let (alloc, tail_batches) = match interrupt_at {
        None => (fresh(None), total),
        Some(k) => {
            let cfg = ServiceConfig::default()
                .with_checkpoint_every(2)
                .with_snapshot_at(k)
                .with_placements();
            let (_, report) = replay(fresh(None), &mut traffic, k, cfg);
            placements.extend(report.placements);
            let (at, bytes) = report.snapshot.expect("snapshot taken");
            assert_eq!(at, k);
            // The live session is gone; only the bytes cross over. The
            // workload generator is fast-forwarded implicitly: `traffic`
            // already consumed the first `k` batches.
            let restored = StreamAllocator::restore(&bytes).expect("snapshot restores");
            assert_eq!(restored.batches(), k);
            (fresh(Some(restored)), total - k)
        }
    };

    let cfg = ServiceConfig::default()
        .with_checkpoint_every(2)
        .with_placements();
    let (alloc, report) = replay(alloc, &mut traffic, tail_batches, cfg);
    placements.extend(report.placements);
    FinalState {
        loads: alloc.bin_state().load_vector(),
        resident: alloc.resident(),
        snapshot: alloc.snapshot(),
        placements,
    }
}

#[test]
fn interrupted_replay_finishes_bit_identically_across_shards_and_lanes() {
    for policy in [PolicyKind::BatchedTwoChoice, PolicyKind::Threshold] {
        for (shards, parallel) in [(1, false), (4, false), (4, true)] {
            let uninterrupted = replay_with_interruption(policy, shards, parallel, 8, None);
            for checkpoint in [1, 4, 7] {
                let resumed =
                    replay_with_interruption(policy, shards, parallel, 8, Some(checkpoint));
                // `snapshot` equality covers loads, the full resident-ball
                // set (canonical bytes), and policy state in one shot; the
                // explicit fields make failures readable.
                assert_eq!(
                    uninterrupted, resumed,
                    "{policy:?} shards={shards} parallel={parallel} resume@{checkpoint}"
                );
            }
        }
    }
}

#[test]
fn faulted_interrupted_replay_matches_uninterrupted_run() {
    // The plan carries engine-only components (stragglers) alongside the
    // domain failures streaming honours; re-arming it after restore must
    // reproduce the exact redirect sequence.
    let plan = FaultPlan::new(0xFA57)
        .with_stragglers(4, 0.5)
        .with_shard_failures(4, 0.5);
    let run = |interrupt_at: Option<u64>| {
        let mut traffic = workload();
        let mut alloc = StreamAllocator::new(BINS, SEED, PolicyKind::BatchedTwoChoice)
            .with_shards(4)
            .with_faults(plan);
        let mut placements = Vec::new();
        let mut redirects = 0u64;
        let mut degraded = 0u64;
        let (head, tail) = match interrupt_at {
            Some(k) => (k, 8 - k),
            None => (8, 0),
        };
        let cfg = ServiceConfig::default().with_placements();
        let (mid, report) = replay(alloc, &mut traffic, head, cfg);
        placements.extend(report.placements);
        redirects += report.fault_redirects;
        degraded += report.degraded_batches;
        alloc = mid;
        if interrupt_at.is_some() {
            alloc = StreamAllocator::restore(&alloc.snapshot())
                .expect("restores")
                .with_faults(plan);
            let (done, report) = replay(alloc, &mut traffic, tail, cfg);
            placements.extend(report.placements);
            redirects += report.fault_redirects;
            degraded += report.degraded_batches;
            alloc = done;
        }
        (placements, redirects, degraded, alloc.snapshot())
    };
    let baseline = run(None);
    assert!(baseline.1 > 0, "plan must actually redirect placements");
    for checkpoint in [2, 5] {
        assert_eq!(baseline, run(Some(checkpoint)), "resume at {checkpoint}");
    }
}

#[test]
fn backpressure_never_drops_or_reorders() {
    // A single-slot queue saturates immediately: every submit after the
    // first blocks until the worker finishes the previous batch. The
    // service must still deliver every ball, in order, with placements
    // bit-identical to direct ingestion.
    let direct = {
        let mut alloc = StreamAllocator::new(BINS, SEED, PolicyKind::BatchedTwoChoice);
        let mut traffic = workload();
        (0..16)
            .map(|_| alloc.ingest(&traffic.next_batch()).placements)
            .collect::<Vec<_>>()
    };
    for queue in [1usize, 2, 16] {
        let alloc = StreamAllocator::new(BINS, SEED, PolicyKind::BatchedTwoChoice);
        let mut traffic = workload();
        let cfg = ServiceConfig::default()
            .with_queue_capacity(queue)
            .with_placements();
        let (_, report) = replay(alloc, &mut traffic, 16, cfg);
        assert_eq!(report.batches, 16, "queue {queue}");
        assert_eq!(report.placements, direct, "queue {queue}");
    }
}

#[test]
fn drain_flushes_every_in_flight_batch_under_faults() {
    // Fill the queue beyond its capacity, then drain immediately: the
    // worker must flush everything that was submitted — including batches
    // still waiting in the queue — with the fault plan live.
    let plan = FaultPlan::new(0xD1A1).with_shard_failures(4, 0.6);
    let alloc = StreamAllocator::new(BINS, SEED, PolicyKind::OneChoice)
        .with_shards(4)
        .with_faults(plan);
    let service = ReplayService::start(
        alloc,
        ServiceConfig::default()
            .with_queue_capacity(2)
            .with_checkpoint_every(64),
    );
    let mut traffic = workload();
    let mut submitted_balls = 0u64;
    for _ in 0..12 {
        let batch = traffic.next_batch();
        submitted_balls += batch.arrivals.len() as u64;
        service.submit(batch);
    }
    let (alloc, report) = service.drain();
    assert_eq!(report.batches, 12);
    assert_eq!(report.balls, submitted_balls);
    assert!(report.degraded_batches > 0, "0.6 × 12 batches must fire");
    // One partial checkpoint window covers the whole session.
    assert_eq!(report.checkpoints.len(), 1);
    assert_eq!(report.checkpoints[0].batches, 12);
    assert_eq!(report.total.count(), submitted_balls);
    assert_eq!(alloc.batches(), 12);
}

#[test]
fn service_checkpoints_flow_to_the_metrics_sink() {
    use std::sync::Arc;
    let sink = Arc::new(EngineMetrics::new());
    let alloc =
        StreamAllocator::new(BINS, SEED, PolicyKind::BatchedTwoChoice).with_metrics(sink.clone());
    let mut traffic = workload();
    let cfg = ServiceConfig::default().with_checkpoint_every(3);
    let (_, report) = replay(alloc, &mut traffic, 9, cfg);
    assert_eq!(report.checkpoints.len(), 3);
    let r = sink.report();
    assert_eq!(r.service_checkpoints, 3);
    assert_eq!(r.service_balls, report.balls);
}
