//! Integration: every line the `--trace` JSONL sink emits parses back as
//! JSON and carries the documented keys with the documented types, for
//! all seven event kinds (`round`, `fault`, `run`, `pool`, `batch`,
//! `cluster`, `service`). The parser is the shared one in
//! `pba_core::json` — the same implementation the cluster wire codec
//! reads frames with.

use std::sync::Arc;

use pba::core::{ProblemSpec, RunConfig};
use pba::prelude::*;
use pba::runner::json::{parse, Json};
use pba::runner::JsonlTrace;

fn obj(v: &Json) -> &std::collections::BTreeMap<String, Json> {
    v.as_obj()
        .unwrap_or_else(|| panic!("expected object, got {v:?}"))
}

fn expect_num(m: &std::collections::BTreeMap<String, Json>, key: &str) -> f64 {
    match m.get(key).and_then(Json::as_f64) {
        Some(x) => x,
        None => panic!("key '{key}' should be a number, got {:?}", m.get(key)),
    }
}

fn expect_str<'a>(m: &'a std::collections::BTreeMap<String, Json>, key: &str) -> &'a str {
    match m.get(key) {
        Some(Json::Str(s)) => s,
        other => panic!("key '{key}' should be a string, got {other:?}"),
    }
}

fn expect_num_array(m: &std::collections::BTreeMap<String, Json>, key: &str) -> Vec<f64> {
    match m.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v.as_f64() {
                Some(x) => x,
                None => panic!("'{key}' element should be a number, got {v:?}"),
            })
            .collect(),
        other => panic!("key '{key}' should be an array, got {other:?}"),
    }
}

const ROUND_NUM_KEYS: [&str; 19] = [
    "seed",
    "m",
    "n",
    "lanes",
    "round",
    "active_before",
    "requests",
    "granted",
    "committed",
    "wasted_grants",
    "underloaded_bins",
    "unfilled_want",
    "max_load",
    "msg_requests",
    "msg_responses",
    "msg_commits",
    "gather_nanos",
    "count_scan_nanos",
    "grant_nanos",
];

const BATCH_NUM_KEYS: [&str; 13] = [
    "seed",
    "n",
    "shards",
    "batch",
    "arrivals",
    "departures",
    "arrival_weight",
    "resident",
    "max_load",
    "gap",
    "failed_domains",
    "fault_redirects",
    "wall_nanos",
];

const FAULT_NUM_KEYS: [&str; 11] = [
    "seed",
    "m",
    "n",
    "lanes",
    "round",
    "dropped_requests",
    "crash_redraws",
    "crash_lost",
    "straggler_balls",
    "deferred_balls",
    "backoff_escalations",
];

const SERVICE_NUM_KEYS: [&str; 17] = [
    "seed",
    "n",
    "shards",
    "queue",
    "rate",
    "checkpoint",
    "batches",
    "balls",
    "resident",
    "max_load",
    "gap",
    "p50_nanos",
    "p99_nanos",
    "p999_nanos",
    "max_nanos",
    "wall_nanos",
    "snapshot_bytes",
];

const CLUSTER_NUM_KEYS: [&str; 12] = [
    "seed",
    "n",
    "shards",
    "shard",
    "lo",
    "hi",
    "frames_sent",
    "frames_recv",
    "bytes_sent",
    "bytes_recv",
    "barriers",
    "killed",
];

#[test]
fn every_trace_line_parses_with_documented_schema() {
    let dir = std::env::temp_dir().join("pba_trace_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
    let trace = Arc::new(JsonlTrace::create(&path).unwrap());

    // Engine events (round/run, plus pool under the parallel executor).
    let spec = ProblemSpec::new(1 << 12, 1 << 8).unwrap();
    pba::protocols::run_by_name(
        "collision",
        spec,
        RunConfig::seeded(3).parallel().with_metrics(trace.clone()),
    )
    .expect("registry name")
    .expect("run succeeds");

    // A fault-injected run so `fault` events appear in the trace. A
    // drop-only plan keeps any capacity-constrained protocol feasible.
    pba::protocols::run_by_name(
        "collision",
        spec,
        RunConfig::seeded(4)
            .with_faults(FaultPlan::new(9).with_drop_prob(0.2))
            .with_metrics(trace.clone()),
    )
    .expect("registry name")
    .expect("faulted run succeeds");

    // Streaming batch events, departures included.
    let mut alloc = StreamAllocator::new(64, 9, PolicyKind::BatchedTwoChoice)
        .with_shards(4)
        .with_metrics(trace.clone());
    let mut traffic = Workload::new(WorkloadCfg::uniform(256).with_churn(0.5), 11);
    for _ in 0..3 {
        alloc.ingest(&traffic.next_batch());
    }

    // Service checkpoint events: replay through the facade with a
    // mid-replay snapshot, so one window reports nonzero snapshot_bytes.
    let alloc = StreamAllocator::new(64, 9, PolicyKind::BatchedTwoChoice)
        .with_shards(4)
        .with_metrics(trace.clone());
    let mut traffic = Workload::new(WorkloadCfg::uniform(256).with_churn(0.5), 11);
    let cfg = ServiceConfig::default()
        .with_checkpoint_every(2)
        .with_snapshot_at(3);
    let (_, report) = replay(alloc, &mut traffic, 6, cfg);
    assert_eq!(report.checkpoints.len(), 3);

    // Cluster events: a 2-shard in-thread cluster run over the same sink.
    pba::cluster::ClusterConfig::engine("collision", spec, 7)
        .with_shards(2)
        .with_metrics(trace.clone())
        .run_local()
        .expect("cluster run succeeds");

    trace.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut rounds = 0usize;
    let mut faults = 0usize;
    let mut runs = 0usize;
    let mut batches = 0usize;
    let mut clusters = 0usize;
    let mut services = 0usize;
    let mut snapshot_bytes = 0.0f64;
    for (lineno, line) in text.lines().enumerate() {
        let parsed =
            parse(line).unwrap_or_else(|e| panic!("line {lineno} is not valid JSON ({e}): {line}"));
        let m = obj(&parsed);
        match expect_str(m, "event") {
            "round" => {
                rounds += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in ROUND_NUM_KEYS {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "total_nanos") >= expect_num(m, "resolve_commit_nanos"));
            }
            "fault" => {
                faults += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in FAULT_NUM_KEYS {
                    expect_num(m, key);
                }
            }
            "run" => {
                runs += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in ["seed", "m", "n", "lanes", "rounds", "placed", "unallocated"] {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "wall_nanos") > 0.0);
            }
            "pool" => {
                for key in ["jobs", "tasks", "busy_nanos_total"] {
                    expect_num(m, key);
                }
                let lanes = expect_num(m, "lanes") as usize;
                assert_eq!(expect_num_array(m, "busy_nanos").len(), lanes);
            }
            "batch" => {
                batches += 1;
                assert_eq!(expect_str(m, "policy"), "batched-two-choice");
                for key in BATCH_NUM_KEYS {
                    expect_num(m, key);
                }
                let touches = expect_num_array(m, "shard_touches");
                assert_eq!(touches.len(), expect_num(m, "shards") as usize);
                assert_eq!(
                    touches.iter().sum::<f64>(),
                    expect_num(m, "arrivals"),
                    "shard touches must cover every placement"
                );
            }
            "service" => {
                services += 1;
                assert_eq!(expect_str(m, "policy"), "batched-two-choice");
                for key in SERVICE_NUM_KEYS {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "p99_nanos") >= expect_num(m, "p50_nanos"));
                assert!(expect_num(m, "p999_nanos") >= expect_num(m, "p99_nanos"));
                assert!(expect_num(m, "max_nanos") >= expect_num(m, "p999_nanos"));
                snapshot_bytes += expect_num(m, "snapshot_bytes");
            }
            "cluster" => {
                clusters += 1;
                assert_eq!(expect_str(m, "mode"), "engine");
                assert_eq!(expect_str(m, "workload"), "collision");
                for key in CLUSTER_NUM_KEYS {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "hi") > expect_num(m, "lo"));
                assert!(expect_num(m, "frames_sent") > 0.0);
            }
            other => panic!("line {lineno}: unknown event kind '{other}'"),
        }
    }
    assert!(rounds > 0, "no round events traced");
    assert!(faults > 0, "the 20% drop plan must trace fault events");
    assert_eq!(runs, 3, "one run event per engine run, cluster included");
    assert_eq!(
        batches, 9,
        "one batch event per ingested batch, service-driven included"
    );
    assert_eq!(clusters, 2, "one cluster event per shard");
    assert_eq!(services, 3, "one service event per checkpoint window");
    assert!(
        snapshot_bytes > 0.0,
        "the snapshot-at window must report its snapshot size"
    );
}
