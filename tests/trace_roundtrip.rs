//! Integration: every line the `--trace` JSONL sink emits parses back as
//! JSON and carries the documented keys with the documented types, for
//! all five event kinds (`round`, `fault`, `run`, `pool`, `batch`).

use std::collections::BTreeMap;
use std::sync::Arc;

use pba::core::{ProblemSpec, RunConfig};
use pba::prelude::*;
use pba::runner::JsonlTrace;

/// A parsed JSON value — just enough structure for the trace schema.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// Minimal recursive-descent JSON parser (the workspace is
/// zero-dependency, so the test supplies its own reader). Strict enough
/// to reject truncated or malformed lines.
fn parse_json(s: &str) -> Result<Json, String> {
    let bytes: Vec<char> = s.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("non-string key {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some('"') => out.push('"'),
                            Some('\\') => out.push('\\'),
                            Some('n') => out.push('\n'),
                            Some('r') => out.push('\r'),
                            Some('t') => out.push('\t'),
                            Some('u') => {
                                let hex: String = b[*pos + 1..*pos + 5].iter().collect();
                                let code =
                                    u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("bad codepoint")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some('t') if b[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if b[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if b[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len() && matches!(b[*pos], '0'..='9' | '-' | '+' | '.' | 'e' | 'E') {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

fn obj(v: &Json) -> &BTreeMap<String, Json> {
    match v {
        Json::Obj(m) => m,
        other => panic!("expected object, got {other:?}"),
    }
}

fn expect_num(m: &BTreeMap<String, Json>, key: &str) -> f64 {
    match m.get(key) {
        Some(Json::Num(x)) => *x,
        other => panic!("key '{key}' should be a number, got {other:?}"),
    }
}

fn expect_str<'a>(m: &'a BTreeMap<String, Json>, key: &str) -> &'a str {
    match m.get(key) {
        Some(Json::Str(s)) => s,
        other => panic!("key '{key}' should be a string, got {other:?}"),
    }
}

fn expect_num_array(m: &BTreeMap<String, Json>, key: &str) -> Vec<f64> {
    match m.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::Num(x) => *x,
                other => panic!("'{key}' element should be a number, got {other:?}"),
            })
            .collect(),
        other => panic!("key '{key}' should be an array, got {other:?}"),
    }
}

const ROUND_NUM_KEYS: [&str; 19] = [
    "seed",
    "m",
    "n",
    "lanes",
    "round",
    "active_before",
    "requests",
    "granted",
    "committed",
    "wasted_grants",
    "underloaded_bins",
    "unfilled_want",
    "max_load",
    "msg_requests",
    "msg_responses",
    "msg_commits",
    "gather_nanos",
    "count_scan_nanos",
    "grant_nanos",
];

const BATCH_NUM_KEYS: [&str; 13] = [
    "seed",
    "n",
    "shards",
    "batch",
    "arrivals",
    "departures",
    "arrival_weight",
    "resident",
    "max_load",
    "gap",
    "failed_domains",
    "fault_redirects",
    "wall_nanos",
];

const FAULT_NUM_KEYS: [&str; 11] = [
    "seed",
    "m",
    "n",
    "lanes",
    "round",
    "dropped_requests",
    "crash_redraws",
    "crash_lost",
    "straggler_balls",
    "deferred_balls",
    "backoff_escalations",
];

#[test]
fn every_trace_line_parses_with_documented_schema() {
    let dir = std::env::temp_dir().join("pba_trace_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
    let trace = Arc::new(JsonlTrace::create(&path).unwrap());

    // Engine events (round/run, plus pool under the parallel executor).
    let spec = ProblemSpec::new(1 << 12, 1 << 8).unwrap();
    pba::protocols::run_by_name(
        "collision",
        spec,
        RunConfig::seeded(3).parallel().with_metrics(trace.clone()),
    )
    .expect("registry name")
    .expect("run succeeds");

    // A fault-injected run so `fault` events appear in the trace. A
    // drop-only plan keeps any capacity-constrained protocol feasible.
    pba::protocols::run_by_name(
        "collision",
        spec,
        RunConfig::seeded(4)
            .with_faults(FaultPlan::new(9).with_drop_prob(0.2))
            .with_metrics(trace.clone()),
    )
    .expect("registry name")
    .expect("faulted run succeeds");

    // Streaming batch events, departures included.
    let mut alloc = StreamAllocator::new(64, 9, PolicyKind::BatchedTwoChoice)
        .with_shards(4)
        .with_metrics(trace.clone());
    let mut traffic = Workload::new(WorkloadCfg::uniform(256).with_churn(0.5), 11);
    for _ in 0..3 {
        alloc.ingest(&traffic.next_batch());
    }

    trace.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut rounds = 0usize;
    let mut faults = 0usize;
    let mut runs = 0usize;
    let mut batches = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let parsed = parse_json(line)
            .unwrap_or_else(|e| panic!("line {lineno} is not valid JSON ({e}): {line}"));
        let m = obj(&parsed);
        match expect_str(m, "event") {
            "round" => {
                rounds += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in ROUND_NUM_KEYS {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "total_nanos") >= expect_num(m, "resolve_commit_nanos"));
            }
            "fault" => {
                faults += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in FAULT_NUM_KEYS {
                    expect_num(m, key);
                }
            }
            "run" => {
                runs += 1;
                expect_str(m, "protocol");
                expect_str(m, "executor");
                for key in ["seed", "m", "n", "lanes", "rounds", "placed", "unallocated"] {
                    expect_num(m, key);
                }
                assert!(expect_num(m, "wall_nanos") > 0.0);
            }
            "pool" => {
                for key in ["jobs", "tasks", "busy_nanos_total"] {
                    expect_num(m, key);
                }
                let lanes = expect_num(m, "lanes") as usize;
                assert_eq!(expect_num_array(m, "busy_nanos").len(), lanes);
            }
            "batch" => {
                batches += 1;
                assert_eq!(expect_str(m, "policy"), "batched-two-choice");
                for key in BATCH_NUM_KEYS {
                    expect_num(m, key);
                }
                let touches = expect_num_array(m, "shard_touches");
                assert_eq!(touches.len(), expect_num(m, "shards") as usize);
                assert_eq!(
                    touches.iter().sum::<f64>(),
                    expect_num(m, "arrivals"),
                    "shard touches must cover every placement"
                );
            }
            other => panic!("line {lineno}: unknown event kind '{other}'"),
        }
    }
    assert!(rounds > 0, "no round events traced");
    assert!(faults > 0, "the 20% drop plan must trace fault events");
    assert_eq!(runs, 2, "expected one run event per engine run");
    assert_eq!(batches, 3, "expected one batch event per ingested batch");
}
