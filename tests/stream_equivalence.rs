//! Integration: [`StreamAllocator`] placements are a pure function of
//! `(seed, policy, workload)` — shard count and sequential-vs-parallel
//! ingestion change only throughput, never a single placement.

use pba::prelude::*;
use pba::stream::Batch;

/// Batches big enough to cross the allocator's parallel dispatch cutoff,
/// so the parallel variant genuinely exercises the pool path.
const BINS: u32 = 256;
const BATCH: u64 = 16 * 1024;
const BATCHES: u64 = 3;

fn ingest_all(policy: PolicyKind, shards: usize, parallel: bool) -> (Vec<u32>, Vec<u64>) {
    let mut alloc = StreamAllocator::new(BINS, 42, policy).with_shards(shards);
    if parallel {
        alloc = alloc.parallel();
    }
    let mut traffic = Workload::new(WorkloadCfg::uniform(BATCH).with_churn(0.25), 7);
    let mut placements = Vec::new();
    for _ in 0..BATCHES {
        placements.extend(alloc.ingest(&traffic.next_batch()).placements);
    }
    (placements, alloc.bin_state().load_vector())
}

#[test]
fn snapshot_policies_place_identically_across_shards_and_lanes() {
    for policy in [
        PolicyKind::OneChoice,
        PolicyKind::BatchedTwoChoice,
        PolicyKind::Threshold,
    ] {
        let (baseline, base_loads) = ingest_all(policy, 1, false);
        assert_eq!(baseline.len(), (BATCH * BATCHES) as usize);
        for shards in [2usize, 8] {
            for parallel in [false, true] {
                let (got, loads) = ingest_all(policy, shards, parallel);
                assert_eq!(
                    got,
                    baseline,
                    "{}: placements diverged at shards={shards} parallel={parallel}",
                    policy.name()
                );
                assert_eq!(loads, base_loads, "{}: loads diverged", policy.name());
            }
        }
    }
}

#[test]
fn live_load_two_choice_is_shard_invariant() {
    // TwoChoice reads live loads and always ingests sequentially; its
    // placements must still be independent of the shard layout.
    let (baseline, _) = ingest_all(PolicyKind::TwoChoice, 1, false);
    for shards in [2usize, 8] {
        let (got, _) = ingest_all(PolicyKind::TwoChoice, shards, false);
        assert_eq!(got, baseline, "two-choice diverged at shards={shards}");
    }
}

#[test]
fn replayed_session_is_deterministic_end_to_end() {
    // Same seed, same workload, fresh allocator: byte-identical outcome
    // records (the contract the experiments' replications rely on).
    let run = || {
        let mut alloc = StreamAllocator::new(64, 5, PolicyKind::BatchedTwoChoice);
        let mut traffic = Workload::new(WorkloadCfg::uniform(512).with_churn(1.0), 5);
        (0..4)
            .map(|_| alloc.ingest(&traffic.next_batch()).record)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn process_count_axis_preserves_final_loads() {
    // The cluster orchestrator distributes the same allocator over shard
    // workers behind real message passing; the process count is one more
    // axis that must not move a single load. The mirror drives its
    // workload off the run seed (unsalted), so the reference is built the
    // same way.
    use pba::cluster::ClusterConfig;
    let cfg = WorkloadCfg::uniform(2048).with_churn(0.25);
    let mut reference = StreamAllocator::new(BINS, 42, PolicyKind::BatchedTwoChoice);
    let mut traffic = Workload::new(cfg, 42);
    for _ in 0..BATCHES {
        reference.ingest(&traffic.next_batch());
    }
    let want = reference.bin_state().load_vector();
    for shards in [1u32, 2, 4] {
        let out = ClusterConfig::stream(PolicyKind::BatchedTwoChoice, BINS, 42, BATCHES, 1)
            .with_workload(cfg)
            .with_shards(shards)
            .run_local()
            .unwrap();
        assert_eq!(
            out.loads, want,
            "loads diverged at {shards} worker processes"
        );
    }
}

#[test]
fn explicit_batches_match_workload_generated_ones() {
    // Hand-built batches go through the same ingestion path as workload
    // output; ids are opaque to placement.
    let mut a = StreamAllocator::new(32, 1, PolicyKind::BatchedTwoChoice);
    let mut b = StreamAllocator::new(32, 1, PolicyKind::BatchedTwoChoice);
    let out_a = a.ingest(&Batch::unit_arrivals(0, 100));
    let out_b = b.ingest(&Batch::unit_arrivals(5_000, 100));
    assert_eq!(out_a.placements, out_b.placements);
}
