//! Integration: the multi-process cluster mode is **bit-identical** to
//! the single-process paths — same final loads, rounds, message counts,
//! and fault decisions for every shard count — and its chaos harness
//! (really killing a shard worker) lands on exactly the loads of the
//! in-process dead-domain run. Shards here are worker threads over
//! in-memory pipes speaking the same wire protocol as child processes;
//! `crates/runner/tests/cluster_cli.rs` covers the real-process
//! transport end to end.

use pba::cluster::wire::Frame;
use pba::cluster::{ClusterConfig, WireFormat};
use pba::prelude::*;

const SEED: u64 = 1105;

fn single_process(protocol: &str, spec: ProblemSpec, faults: Option<FaultPlan>) -> RunOutcome {
    let mut cfg = RunConfig::seeded(SEED).with_validation(true);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    pba::protocols::run_by_name(protocol, spec, cfg)
        .expect("registry name")
        .expect("run succeeds")
}

#[test]
fn engine_cluster_is_bit_identical_across_shard_counts() {
    let spec = ProblemSpec::new(1 << 11, 1 << 7).unwrap();
    for protocol in ["collision", "parallel-two-choice"] {
        let single = single_process(protocol, spec, None);
        for shards in [1u32, 2, 4] {
            let out = ClusterConfig::engine(protocol, spec, SEED)
                .with_shards(shards)
                .with_validation(true)
                .run_local()
                .unwrap();
            let run = out.run.expect("engine outcome");
            assert_eq!(
                run.loads, single.loads,
                "{protocol} loads at {shards} shards"
            );
            assert_eq!(run.rounds, single.rounds, "{protocol} rounds");
            assert_eq!(run.messages, single.messages, "{protocol} messages");
            assert_eq!(run.placed, single.placed);
            assert_eq!(run.unallocated, single.unallocated);
        }
    }
}

#[test]
fn engine_cluster_reproduces_fault_decisions() {
    // Crashed bins and dropped requests are drawn from the fault stream;
    // the distributed grant waves must land on the same decisions.
    let spec = ProblemSpec::new(1 << 11, 1 << 7).unwrap();
    let plan = FaultPlan::new(17)
        .with_crashed_bins(0.08)
        .with_drop_prob(0.05);
    let single = single_process("collision", spec, Some(plan));
    let single_faults = single.faults.expect("fault stats recorded");
    for shards in [2u32, 4] {
        let out = ClusterConfig::engine("collision", spec, SEED)
            .with_shards(shards)
            .with_faults(plan)
            .with_validation(true)
            .run_local()
            .unwrap();
        let run = out.run.expect("engine outcome");
        assert_eq!(run.loads, single.loads, "faulted loads at {shards} shards");
        assert_eq!(run.rounds, single.rounds);
        assert_eq!(run.messages, single.messages);
        let faults = run.faults.expect("fault stats recorded");
        assert_eq!(faults, single_faults, "fault decisions at {shards} shards");
    }
}

/// The orchestrator's stream mirror drives the workload off the run seed
/// (no salt); the in-process reference must be built the same way.
fn stream_reference(
    policy: PolicyKind,
    bins: u32,
    cfg: WorkloadCfg,
    batches: u64,
    faults: Option<FaultPlan>,
) -> Vec<u64> {
    let mut alloc = StreamAllocator::new(bins, SEED, policy);
    if let Some(plan) = faults {
        alloc = alloc.with_faults(plan);
    }
    let mut traffic = Workload::new(cfg, SEED);
    for _ in 0..batches {
        alloc.ingest(&traffic.next_batch());
    }
    alloc.bin_state().load_vector()
}

#[test]
fn stream_cluster_is_bit_identical_across_shard_counts() {
    let (bins, batches) = (96u32, 5u64);
    for policy in [PolicyKind::OneChoice, PolicyKind::BatchedTwoChoice] {
        let cfg = WorkloadCfg::uniform(4 * u64::from(bins)).with_churn(0.25);
        let want = stream_reference(policy, bins, cfg, batches, None);
        for shards in [1u32, 2, 4] {
            let out = ClusterConfig::stream(policy, bins, SEED, batches, 1)
                .with_workload(cfg)
                .with_shards(shards)
                .run_local()
                .unwrap();
            assert_eq!(out.loads, want, "{} at {shards} shards", policy.name());
            assert_eq!(out.batches, batches);
        }
    }
}

#[test]
fn killed_shard_matches_in_process_dead_domain_run() {
    // The chaos harness really kills shard 1's worker before batch 2; the
    // surviving placements must equal an in-process run whose fault plan
    // declares domain 1 dead from batch 2 — the redirect is the same
    // pure function either way.
    let (bins, shards, batches) = (64u32, 4u32, 6u64);
    let (kill_shard, kill_batch) = (1u32, 2u64);
    let plan = FaultPlan::new(SEED)
        .with_shard_failures(shards, 0.0)
        .with_dead_domain(kill_shard, kill_batch);
    let cfg = WorkloadCfg::uniform(2 * u64::from(bins));
    let want = stream_reference(PolicyKind::BatchedTwoChoice, bins, cfg, batches, Some(plan));

    let out = ClusterConfig::stream(PolicyKind::BatchedTwoChoice, bins, SEED, batches, 1)
        .with_workload(cfg)
        .with_shards(shards)
        .with_kill(kill_shard, kill_batch)
        .run_local()
        .unwrap();
    assert_eq!(
        out.loads, want,
        "killed-shard loads diverge from dead-domain run"
    );
    let rec = &out.shard_records[kill_shard as usize];
    assert!(rec.killed, "the scheduled kill must be recorded");
    assert!(
        out.shard_records
            .iter()
            .filter(|r| r.shard != kill_shard)
            .all(|r| !r.killed),
        "only the scheduled shard dies"
    );
    // The dead domain owns bins the mirror stopped placing into after the
    // kill; its range must have received strictly less than a full share.
    let lo = pba::cluster::shard_lo(kill_shard, bins, shards) as usize;
    let hi = pba::cluster::shard_lo(kill_shard + 1, bins, shards) as usize;
    let dead: u64 = want[lo..hi].iter().sum();
    let total: u64 = want.iter().sum();
    assert!(
        dead * u64::from(shards) < total,
        "dead domain absorbed a full share: {dead} of {total}"
    );
}

#[test]
fn misbehaving_worker_surfaces_a_clear_error() {
    // A worker that answers the hello with garbage: the orchestrator
    // must fail with a transport error naming the shard and the problem,
    // not hang or panic.
    let dir = std::env::temp_dir().join(format!("pba-bad-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let exe = dir.join("bad-worker.sh");
    std::fs::write(&exe, "#!/bin/sh\necho 'not a wire frame'\ncat >/dev/null\n").unwrap();
    // Sandbox-friendly chmod via std: mark the script executable.
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&exe, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let spec = ProblemSpec::new(64, 16).unwrap();
    let err = ClusterConfig::engine("collision", spec, 1)
        .with_shards(2)
        .with_worker_exe(exe)
        .run_process()
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("cluster transport failure") && err.contains("unreadable reply"),
        "expected a malformed-frame transport error, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Splice a valid FNV-1a checksum onto a JSON body so content-level
/// decode errors are reachable past the checksum gate.
fn stamped(body: &str) -> String {
    let sum = pba::core::wire::fnv1a(body.as_bytes());
    format!("{},\"sum\":\"{sum:016x}\"}}", &body[..body.len() - 1])
}

#[test]
fn wire_decode_errors_are_descriptive() {
    // Unchecksummed or mangled lines die at the checksum gate with a
    // diagnostic; a correctly stamped line surfaces the content error.
    for (line, needle) in [
        ("not json".to_string(), "checksum"),
        ("{\"x\":1}".to_string(), "checksum"),
        (stamped("{\"x\":1}"), "missing"),
        (stamped("{\"t\":\"warp\"}"), "warp"),
    ] {
        let err = Frame::decode(&line).unwrap_err();
        assert!(
            err.to_lowercase().contains(needle),
            "{line}: error should mention '{needle}', got: {err}"
        );
    }
    // A tampered-but-well-formed line is rejected by the sum before any
    // content parsing happens.
    let good = Frame::CommitOk { round: 4, sum: 77 }.encode();
    let tampered = good.replace("\"round\":4", "\"round\":5");
    assert!(Frame::decode(&tampered).unwrap_err().contains("checksum"));
}

#[test]
fn huge_seeds_round_trip_exactly_on_both_codecs() {
    // Seeds above 2^53 do not fit a JSON double; both codecs must carry
    // the native u64 exactly, giving the same run as a single process.
    let seed = (1u64 << 60) + 3_141_592_653;
    let spec = ProblemSpec::new(1 << 10, 1 << 6).unwrap();
    let single = pba::protocols::run_by_name(
        "collision",
        spec,
        RunConfig::seeded(seed).with_validation(true),
    )
    .expect("registry name")
    .expect("run succeeds");
    for wire in [WireFormat::Binary, WireFormat::Json] {
        let out = ClusterConfig::engine("collision", spec, seed)
            .with_shards(2)
            .with_wire(wire)
            .run_local()
            .unwrap();
        let run = out.run.expect("engine outcome");
        assert_eq!(run.loads, single.loads, "loads on {} wire", wire.name());
        assert_eq!(run.rounds, single.rounds, "rounds on {} wire", wire.name());
    }
    // And the frame itself is exact: a hello through either codec keeps
    // every bit of the seed.
    let hello = Frame::Hello(pba::cluster::Hello {
        mode: "engine".into(),
        shard: 0,
        shards: 1,
        lo: 0,
        hi: 16,
        n: 16,
        m: 64,
        seed: u64::MAX - 12,
        workload: "collision".into(),
        straggle_prob: 0.0,
        straggle_us: 0,
        fault_seed: (1 << 57) + 5,
    });
    assert_eq!(Frame::decode(&hello.encode()).unwrap(), hello);
    assert_eq!(Frame::decode_binary(&hello.encode_binary()).unwrap(), hello);
}

/// Tiny deterministic generator for the corruption fuzzer.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A representative frame vocabulary for the fuzzer: every direction of
/// the conversation, sparse lists, strings, and full-width integers.
fn fuzz_frames() -> Vec<Frame> {
    vec![
        Frame::Ready { shard: 3 },
        Frame::Grants {
            round: 9,
            active: 512,
            placed: 1024,
            counts: vec![(1, 3), (17, 1), (200, 9)],
            crashed: vec![4, 90],
        },
        Frame::GrantsOk {
            round: 9,
            accept: vec![(1, 2), (200, 9)],
            underloaded: 7,
            unfilled: 11,
        },
        Frame::CommitOk {
            round: 9,
            sum: u64::MAX - 3,
        },
        Frame::Delta {
            batch: 44,
            loads: vec![(0, 5), (63, 2)],
        },
        Frame::DeltaOk {
            batch: 44,
            total: 99,
            max: 12,
        },
        Frame::Loads {
            loads: vec![0, 3, u64::MAX >> 1, 2],
        },
        Frame::Error {
            detail: "synthetic failure".into(),
        },
    ]
}

#[test]
fn mangled_frames_are_rejected_never_misread() {
    // Satellite guarantee: a corrupted frame (bit flip, truncation, or a
    // lying length header) must decode to a diagnostic error or to the
    // original frame (when the flip lands in redundant encoding space) —
    // never to a *different* valid frame. Both codecs, seeded fuzz.
    let mut rng = XorShift(0xBADC_0FFE_E0DD_F00D);
    for frame in fuzz_frames() {
        // Binary codec: flips, truncations, and length lies.
        let bytes = frame.encode_binary();
        for _ in 0..200 {
            let mut mangled = bytes.clone();
            match rng.next() % 3 {
                0 => {
                    let bit = rng.next() as usize % (mangled.len() * 8);
                    mangled[bit / 8] ^= 1 << (bit % 8);
                }
                1 => {
                    let keep = rng.next() as usize % mangled.len();
                    mangled.truncate(keep);
                }
                _ => {
                    // Lie in the 4-byte length header (offset 2..6:
                    // magic, tag, then little-endian length).
                    let byte = 2 + rng.next() as usize % 4;
                    mangled[byte] = mangled[byte].wrapping_add(1 + (rng.next() % 255) as u8);
                }
            }
            if mangled == bytes {
                continue;
            }
            match Frame::decode_binary(&mangled) {
                Err(err) => assert!(!err.is_empty(), "empty diagnostic for mangled frame"),
                Ok(decoded) => assert_eq!(
                    decoded, frame,
                    "corruption decoded to a different frame: {decoded:?}"
                ),
            }
        }
        // JSON codec: flips and truncations on the line.
        let line = frame.encode();
        for _ in 0..200 {
            let mut mangled = line.clone().into_bytes();
            if rng.next().is_multiple_of(2) {
                let bit = rng.next() as usize % (mangled.len() * 8);
                mangled[bit / 8] ^= 1 << (bit % 8);
            } else {
                let keep = rng.next() as usize % mangled.len();
                mangled.truncate(keep);
            }
            if mangled == line.as_bytes() {
                continue;
            }
            let Ok(text) = String::from_utf8(mangled) else {
                continue; // a reader would reject non-UTF-8 upstream
            };
            match Frame::decode(&text) {
                Err(err) => assert!(!err.is_empty(), "empty diagnostic for mangled line"),
                Ok(decoded) => assert_eq!(
                    decoded, frame,
                    "corruption decoded to a different frame: {decoded:?}"
                ),
            }
        }
    }
}

#[test]
fn codec_and_overlap_matrix_is_bit_identical() {
    // The full {binary, json} x {overlap, strict} matrix lands on the
    // single-process run for both the engine and the stream mirror.
    let spec = ProblemSpec::new(1 << 11, 1 << 7).unwrap();
    let single = single_process("collision", spec, None);
    let (bins, batches) = (96u32, 4u64);
    let cfg = WorkloadCfg::uniform(4 * u64::from(bins)).with_churn(0.2);
    let want = stream_reference(PolicyKind::BatchedTwoChoice, bins, cfg, batches, None);
    for wire in [WireFormat::Binary, WireFormat::Json] {
        for overlap in [true, false] {
            let cell = format!("{} wire, overlap {overlap}", wire.name());
            let out = ClusterConfig::engine("collision", spec, SEED)
                .with_shards(4)
                .with_wire(wire)
                .with_overlap(overlap)
                .run_local()
                .unwrap();
            let run = out.run.expect("engine outcome");
            assert_eq!(run.loads, single.loads, "engine loads ({cell})");
            assert_eq!(run.rounds, single.rounds, "engine rounds ({cell})");
            assert_eq!(run.messages, single.messages, "engine messages ({cell})");

            let out = ClusterConfig::stream(PolicyKind::BatchedTwoChoice, bins, SEED, batches, 1)
                .with_workload(cfg)
                .with_shards(4)
                .with_wire(wire)
                .with_overlap(overlap)
                .run_local()
                .unwrap();
            assert_eq!(out.loads, want, "stream loads ({cell})");
        }
    }
}
