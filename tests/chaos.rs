//! Integration: deterministic chaos. Fault injection must be a pure
//! function of `(seed, FaultPlan)` — identical plans give bit-identical
//! allocations AND bit-identical fault-event streams across executors,
//! lane counts, and shard counts — and the no-fault path must stay
//! pristine (zero fault events, no clock reads added to the round loop).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pba::core::metrics::{RoundTiming, RunMeta};
use pba::core::RoundRecord;
use pba::prelude::*;
use pba::stream::Batch;

/// A plan exercising every engine-side fault class at once.
fn rich_plan() -> FaultPlan {
    FaultPlan::new(0xC4A05)
        .with_drop_prob(0.15)
        .with_crashed_bins(0.05)
        .with_stragglers(8, 0.2)
}

/// Records the fault-event stream verbatim.
#[derive(Default)]
struct FaultRecorder {
    events: Mutex<Vec<FaultRecord>>,
}

impl MetricsSink for FaultRecorder {
    fn on_round(&self, _meta: &RunMeta, _record: &RoundRecord, _timing: &RoundTiming) {}

    fn on_fault(&self, _meta: &RunMeta, record: &FaultRecord) {
        self.events.lock().unwrap().push(*record);
    }
}

fn faulted_run(
    name: &str,
    executor: ExecutorKind,
    plan: FaultPlan,
) -> (RunOutcome, Vec<FaultRecord>) {
    // Large enough that the parallel executor genuinely fans out instead
    // of falling back to the sequential path (PAR_CUTOFF), and m = n so
    // the protocols' capacity slack can absorb a 5% crashed-bin loss
    // (collision's bound c·n > m is tight in the heavily loaded regime).
    let spec = ProblemSpec::new(1 << 17, 1 << 17).unwrap();
    faulted_run_at(name, executor, plan, spec, None)
}

fn faulted_run_at(
    name: &str,
    executor: ExecutorKind,
    plan: FaultPlan,
    spec: ProblemSpec,
    tuning: Option<Tuning>,
) -> (RunOutcome, Vec<FaultRecord>) {
    let rec = Arc::new(FaultRecorder::default());
    // Validation armed: every chaos run doubles as an invariant audit
    // (conservation, capacity, fault legality) at zero cost to the
    // assertions below — outcomes are bit-identical either way.
    let mut cfg = RunConfig::seeded(23)
        .with_executor(executor)
        .with_faults(plan)
        .with_validation(true)
        .with_metrics(rec.clone());
    if let Some(t) = tuning {
        cfg = cfg.with_tuning(t);
    }
    let out = pba::protocols::run_by_name(name, spec, cfg)
        .expect("known protocol")
        .expect("run ok");
    let events = rec.events.lock().unwrap().clone();
    (out, events)
}

/// The tentpole determinism claim: identical `(seed, FaultPlan)` gives
/// identical loads, rounds, fault totals, and fault-event streams on the
/// sequential executor, the default parallel executor, and a pinned
/// 2-lane and 8-lane parallel executor.
#[test]
fn chaos_is_bit_identical_across_executors_and_lanes() {
    for name in ["collision", "parallel-two-choice"] {
        let (seq, seq_events) = faulted_run(name, ExecutorKind::Sequential, rich_plan());
        assert!(
            !seq_events.is_empty(),
            "{name}: a 15% drop plan must inject something"
        );
        for lanes in [
            ExecutorKind::Parallel,
            ExecutorKind::ParallelWith(2),
            ExecutorKind::ParallelWith(8),
        ] {
            let (par, par_events) = faulted_run(name, lanes, rich_plan());
            assert_eq!(seq.loads, par.loads, "{name} {lanes:?}: loads diverge");
            assert_eq!(seq.rounds, par.rounds, "{name} {lanes:?}: rounds diverge");
            assert_eq!(
                seq.faults, par.faults,
                "{name} {lanes:?}: fault totals diverge"
            );
            assert_eq!(
                seq_events, par_events,
                "{name} {lanes:?}: fault-event streams diverge"
            );
        }
    }
}

/// The new protocol families ride the same chaos contract. `kd-choice`
/// takes the full rich plan — its one-window capacity slack absorbs the
/// 5% crashed-bin loss at m = n, k = 2. `estimated-average` caps every
/// bin at exactly ⌈m/n⌉ with zero slack, so crashing bins makes the
/// instance structurally infeasible; its plan keeps the drop and
/// straggler axes only. Both must place everyone, stay bit-identical
/// across executors and lane counts, and pass the armed validator
/// (which now audits k-slot conservation for the replicated family).
///
/// The estimated-average leg runs at n = 2^14 with lowered chunk
/// geometry (so the pool still genuinely fans out): its zero-slack
/// endgame is a coupon-collector on the last below-cap bin, and at
/// n = 2^17 the probe-degree ceiling would make that tail crawl under
/// a 15% drop plan.
#[test]
fn new_families_chaos_is_bit_identical_and_validated() {
    let drop_straggler_plan = FaultPlan::new(0xEA05)
        .with_drop_prob(0.15)
        .with_stragglers(8, 0.2);
    let big = ProblemSpec::new(1 << 17, 1 << 17).unwrap();
    let mid = ProblemSpec::new(1 << 14, 1 << 14).unwrap();
    for (name, plan, spec, tuning) in [
        ("kd-choice", rich_plan(), big, None),
        (
            "estimated-average",
            drop_straggler_plan,
            mid,
            Some(Tuning::fixed(1024, 2048)),
        ),
    ] {
        let (seq, seq_events) = faulted_run_at(name, ExecutorKind::Sequential, plan, spec, tuning);
        assert!(
            !seq_events.is_empty(),
            "{name}: a 15% drop plan must inject something"
        );
        assert_eq!(seq.unallocated, 0, "{name}: chaos must not strand balls");
        for lanes in [
            ExecutorKind::Parallel,
            ExecutorKind::ParallelWith(2),
            ExecutorKind::ParallelWith(8),
        ] {
            let (par, par_events) = faulted_run_at(name, lanes, plan, spec, tuning);
            assert_eq!(seq.loads, par.loads, "{name} {lanes:?}: loads diverge");
            assert_eq!(seq.rounds, par.rounds, "{name} {lanes:?}: rounds diverge");
            assert_eq!(
                seq.faults, par.faults,
                "{name} {lanes:?}: fault totals diverge"
            );
            assert_eq!(
                seq_events, par_events,
                "{name} {lanes:?}: fault-event streams diverge"
            );
        }
    }
}

/// Re-running the identical configuration replays the identical chaos.
#[test]
fn chaos_replays_exactly() {
    let (a, ea) = faulted_run("collision", ExecutorKind::Sequential, rich_plan());
    let (b, eb) = faulted_run("collision", ExecutorKind::Sequential, rich_plan());
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.faults, b.faults);
    assert_eq!(ea, eb);
}

/// Different fault seeds under the same run seed give different chaos —
/// the plan seed is a real axis, not decoration.
#[test]
fn fault_seed_is_an_independent_axis() {
    let plan_b = FaultPlan::new(0xB0B)
        .with_drop_prob(0.15)
        .with_crashed_bins(0.05);
    let plan_a = FaultPlan::new(0xA0A)
        .with_drop_prob(0.15)
        .with_crashed_bins(0.05);
    let (a, _) = faulted_run("collision", ExecutorKind::Sequential, plan_a);
    let (b, _) = faulted_run("collision", ExecutorKind::Sequential, plan_b);
    assert_ne!(a.loads, b.loads, "fault seed ignored");
}

/// Crashed bins accept nothing: with m/n ≈ 8, every live bin ends loaded
/// w.h.p., so the zero-load bins are exactly the crashed ones.
#[test]
fn crashed_bins_stay_empty_and_everything_still_places() {
    let spec = ProblemSpec::new(1 << 11, 1 << 8).unwrap();
    let plan = FaultPlan::new(99).with_crashed_bins(0.05);
    let out = Simulator::new(
        spec,
        RunConfig::seeded(5).with_faults(plan).with_validation(true),
    )
    .run(ParallelTwoChoice::new(spec, 2))
    .unwrap();
    assert_eq!(out.unallocated, 0, "crashes must not strand balls");
    let stats = out.faults.expect("fault-injected run reports stats");
    assert!(stats.crashed_bins > 0, "5% of 256 bins must crash");
    let empty = out.loads.iter().filter(|&&l| l == 0).count();
    assert_eq!(
        empty as u32, stats.crashed_bins,
        "zero-load bins must be exactly the crashed set"
    );
}

/// Streaming chaos: per-batch domain failures give identical placements
/// for shards 1/2/8 and sequential vs parallel ingestion, and every
/// redirected arrival really avoids the failed domains.
#[test]
fn stream_chaos_is_identical_across_shards_and_ingestion_modes() {
    let plan = FaultPlan::new(0x51AB).with_shard_failures(8, 0.3);
    let n = 256u32;
    // 16384 arrivals per batch exceeds the allocator's parallel cutoff,
    // so the parallel runs genuinely fan out.
    let run = |shards: usize, parallel: bool| {
        let mut alloc = StreamAllocator::new(n, 77, PolicyKind::BatchedTwoChoice)
            .with_shards(shards)
            .with_faults(plan);
        if parallel {
            alloc = alloc.parallel();
        }
        let mut placements = Vec::new();
        let mut redirects = 0u64;
        for t in 0..3u64 {
            let out = alloc.ingest(&Batch::unit_arrivals(t * 20_000, 16_384));
            redirects += out.record.fault_redirects;
            placements.extend(out.placements);
        }
        (placements, redirects)
    };
    let (base, base_redirects) = run(1, false);
    assert!(
        base_redirects > 0,
        "a 30% plan over 3 batches must redirect"
    );
    for (shards, parallel) in [(2, false), (8, false), (1, true), (8, true)] {
        let (got, redirects) = run(shards, parallel);
        assert_eq!(
            base, got,
            "shards={shards} parallel={parallel}: placements diverge"
        );
        assert_eq!(base_redirects, redirects, "redirect counts diverge");
    }
    // Every placement of a degraded batch avoids the failed domains.
    for t in 0..3u64 {
        let mask = plan.failed_domains(t);
        if mask == 0 {
            continue;
        }
        let slice = &base[(t as usize) * 16_384..(t as usize + 1) * 16_384];
        for &bin in slice {
            assert_eq!(
                (mask >> plan.domain_of(bin, n)) & 1,
                0,
                "batch {t} bin {bin}"
            );
        }
    }
}

/// The no-fault path is pristine: zero fault events reach the sink, the
/// outcome carries no fault stats, and the fault module performs no clock
/// reads at all (the round loop gains no timing syscalls — fault
/// decisions are pure counter streams, which is what makes the
/// determinism tests above possible).
#[test]
fn no_fault_path_emits_nothing_and_reads_no_clocks() {
    struct Counter(AtomicU64);
    impl MetricsSink for Counter {
        fn on_round(&self, _meta: &RunMeta, _record: &RoundRecord, _timing: &RoundTiming) {}

        fn on_fault(&self, _meta: &RunMeta, _record: &FaultRecord) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let spec = ProblemSpec::new(1 << 14, 1 << 7).unwrap();
    let sink = Arc::new(Counter(AtomicU64::new(0)));
    let out = Simulator::new(spec, RunConfig::seeded(3).with_metrics(sink.clone()))
        .run(ParallelTwoChoice::new(spec, 2))
        .unwrap();
    assert_eq!(
        sink.0.load(Ordering::Relaxed),
        0,
        "no plan, no fault events"
    );
    assert!(out.faults.is_none(), "no plan, no fault stats");

    // Structural half of the claim: the entire fault module is free of
    // clock reads, so arming (or not arming) a plan cannot change the
    // number of per-round timing syscalls.
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src/faults.rs"),
    )
    .expect("faults.rs readable");
    for forbidden in ["Instant", "SystemTime", "elapsed("] {
        assert!(
            !src.contains(forbidden),
            "faults.rs must not read clocks (found `{forbidden}`)"
        );
    }
}

/// A drop-heavy plan exercises the retry/backoff machinery: totals show
/// drops, deferrals, and at least one backoff escalation, and the stream
/// of per-round records sums to the run totals.
#[test]
fn backoff_machinery_engages_under_heavy_loss() {
    let plan = FaultPlan::new(4).with_drop_prob(0.6).with_max_backoff(4);
    let (out, events) = faulted_run("parallel-two-choice", ExecutorKind::Sequential, plan);
    let stats = out.faults.unwrap();
    assert!(stats.dropped_requests > 0);
    assert!(
        stats.backoff_escalations > 0,
        "60% loss must escalate someone"
    );
    assert!(
        stats.deferred_balls > 0,
        "escalated balls must sit out rounds"
    );
    assert_eq!(out.unallocated, 0, "retries must eventually place everyone");
    let summed: u64 = events.iter().map(|e| e.dropped_requests).sum();
    assert_eq!(
        summed, stats.dropped_requests,
        "per-round records must sum to totals"
    );
    // Event streams are ordered by round and only emitted for faulty rounds.
    for w in events.windows(2) {
        assert!(w[0].round < w[1].round);
    }
    assert!(events.iter().all(|e| !e.is_empty_like()));
}

/// Helper mirror of `FaultRecord::is_empty` (not public API): a record
/// delivered to the sink must contain at least one nonzero counter.
trait EmptyLike {
    fn is_empty_like(&self) -> bool;
}

impl EmptyLike for FaultRecord {
    fn is_empty_like(&self) -> bool {
        self.dropped_requests == 0
            && self.crash_redraws == 0
            && self.crash_lost == 0
            && self.straggler_balls == 0
            && self.deferred_balls == 0
            && self.backoff_escalations == 0
    }
}
