//! Integration: message-accounting invariants across the public API.
//!
//! The papers count three message kinds (requests, responses, commit
//! notifications); these tests pin the conservation laws and the
//! per-protocol bounds at moderate scale.

use pba::core::MessageTracking;
use pba::prelude::*;

fn run_full_tracking(name: &str, spec: ProblemSpec, seed: u64) -> RunOutcome {
    let cfg = RunConfig::seeded(seed).with_tracking(MessageTracking::Full);
    pba::protocols::run_by_name(name, spec, cfg)
        .expect("known")
        .expect("ok")
}

/// Requests and responses are always 1:1 (bins answer every contact).
#[test]
fn responses_match_requests_everywhere() {
    let spec = ProblemSpec::new(1 << 13, 1 << 7).unwrap();
    for &name in pba::protocols::protocol_names() {
        let out = run_full_tracking(name, spec, 1);
        assert_eq!(out.messages.requests, out.messages.responses, "{name}");
    }
}

/// Ledger cross-check: Σ per-ball sent = requests + commits, and
/// Σ per-bin received = requests + commits (each ball→bin message has
/// exactly one sender and one receiver).
#[test]
fn ledger_totals_are_conserved() {
    let spec = ProblemSpec::new(1 << 13, 1 << 7).unwrap();
    for &name in pba::protocols::protocol_names() {
        let out = run_full_tracking(name, spec, 2);
        let expected = out.messages.requests + out.messages.commits;
        let recv: u64 = out.per_bin_received.as_ref().unwrap().iter().sum();
        assert_eq!(recv, expected, "{name}: per-bin receive total");
    }
}

/// Per-round totals in the trace sum to the outcome totals.
#[test]
fn trace_messages_sum_to_totals() {
    let spec = ProblemSpec::new(1 << 14, 1 << 8).unwrap();
    for &name in &[
        "threshold-heavy",
        "collision",
        "asymmetric",
        "batched-two-choice",
    ] {
        let out = run_full_tracking(name, spec, 3);
        let trace_total = out.trace.as_ref().unwrap().total_messages();
        assert_eq!(trace_total, out.messages, "{name}");
    }
}

/// Theorem 6's per-ball bounds for A_heavy at a real size: expectation
/// O(1), maximum O(log n).
#[test]
fn threshold_heavy_per_ball_bounds() {
    let n = 1u32 << 10;
    let spec = ProblemSpec::new((n as u64) << 8, n).unwrap();
    let out = run_full_tracking("threshold-heavy", spec, 4);
    let mean = out.messages.sent_by_balls() as f64 / spec.balls() as f64;
    assert!(mean <= 4.0, "mean per-ball messages {mean}");
    let max = out.max_ball_sent.unwrap();
    assert!(
        max as f64 <= 4.0 * (n as f64).log2(),
        "max per-ball messages {max} vs O(log n)"
    );
}

/// Non-adaptive protocols send exactly d·(active) requests per round;
/// adaptive degree-1 protocols exactly (active).
#[test]
fn per_round_request_counts_match_degrees() {
    let spec = ProblemSpec::new(1 << 13, 1 << 13).unwrap();
    let collision = run_full_tracking("collision", spec, 5);
    for rec in collision.trace.as_ref().unwrap().records() {
        assert_eq!(rec.requests, 2 * rec.active_before, "collision degree 2");
    }
    let fixed = run_full_tracking("fixed-threshold", spec, 5);
    for rec in fixed.trace.as_ref().unwrap().records() {
        assert_eq!(rec.requests, rec.active_before, "fixed-threshold degree 1");
    }
}

/// Wasted grants only exist for multi-request protocols, and are exactly
/// accepts − commits.
#[test]
fn wasted_grants_accounting() {
    let spec = ProblemSpec::new(1 << 13, 1 << 13).unwrap();
    let out = run_full_tracking("collision", spec, 6);
    for rec in out.trace.as_ref().unwrap().records() {
        // commits message count = accepted requests; committed = balls
        // placed; the difference is the wasted (declined) grants.
        assert_eq!(
            rec.messages.commits - rec.committed,
            rec.wasted_grants,
            "round {}",
            rec.round
        );
    }
    let single = run_full_tracking("fixed-threshold", spec, 6);
    for rec in single.trace.as_ref().unwrap().records() {
        assert_eq!(rec.wasted_grants, 0);
    }
}
