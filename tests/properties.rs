//! Property-style tests over the core invariants, driven by a hand-rolled
//! seeded case generator (no proptest: the default workspace builds with
//! zero external dependencies).
//!
//! Each property runs `CASES` pseudo-random cases derived from a fixed
//! master seed, so failures are reproducible: the panic message contains
//! the case seed, and re-running the test replays the identical sequence.

use pba::core::rng::{ball_stream, Rand64, SplitMix64};
use pba::prelude::*;

/// Cases per property; the generator is deterministic, so every CI run
/// explores the same instances.
const CASES: u64 = 64;

/// Deterministic case-level RNG for property `tag`.
fn case_rng(tag: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(0x9e37_79b9_7f4a_7c15 ^ (tag << 32) ^ case)
}

/// A moderate problem spec: `m ∈ [1, 5000)`, `n ∈ [1, 200)`.
fn small_spec(rng: &mut SplitMix64) -> ProblemSpec {
    let m = 1 + rng.next_u64() % 4999;
    let n = 1 + rng.below(199);
    ProblemSpec::new(m, n).expect("positive sizes are valid")
}

/// Every protocol yields a complete, well-formed allocation on any spec:
/// loads sum to m, assignment consistent, no bin out of range.
#[test]
fn protocols_always_complete_and_conserve_balls() {
    let names = pba::protocols::protocol_names();
    assert_eq!(names.len(), 14);
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let spec = small_spec(&mut rng);
        let seed = rng.next_u64();
        let name = names[rng.below(names.len() as u32) as usize];
        let cfg = RunConfig::seeded(seed).with_assignment(true);
        let out = pba::protocols::run_by_name(name, spec, cfg)
            .expect("registered")
            .unwrap_or_else(|e| panic!("case {case}: {name} on {spec}: {e}"));
        assert!(out.is_complete(), "case {case}: {name} on {spec}");
        assert_eq!(out.placed, spec.balls(), "case {case}: {name} on {spec}");
        let alloc = out.allocation();
        assert!(
            alloc.is_well_formed(),
            "case {case}: {name} on {spec}: {:?}",
            alloc.verify()
        );
    }
}

/// Threshold protocols never exceed their structural cap.
#[test]
fn threshold_heavy_gap_is_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let spec = small_spec(&mut rng);
        let seed = rng.next_u64();
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(ThresholdHeavy::new(spec))
            .unwrap();
        assert!(out.gap() <= 2, "case {case}: gap {} for {spec}", out.gap());
    }
}

/// The collision bound is a hard invariant whenever the run completes.
/// Completion itself is only w.h.p. *in n*: non-adaptive collision
/// protocols genuinely livelock on small adversarial instances (e.g.
/// three balls drawing the same bin pair at c = 2), so budget exhaustion
/// is an acceptable outcome here — the papers' guarantees are asymptotic.
#[test]
fn collision_never_exceeds_c() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = 4 + rng.below(396);
        let c = 2 + rng.below(4);
        let seed = rng.next_u64();
        let m = (n as u64) * (c as u64 - 1);
        let spec = ProblemSpec::new(m.max(1), n).unwrap();
        match Simulator::new(spec, RunConfig::seeded(seed)).run(Collision::with_params(spec, 2, c))
        {
            Ok(out) => {
                assert!(out.max_load() <= c, "case {case}: {spec} c={c}");
                assert!(out.is_complete(), "case {case}: {spec} c={c}");
            }
            Err(pba::core::CoreError::RoundBudgetExhausted { .. }) => {
                // Documented small-instance livelock; the load cap is
                // still enforced structurally (unit-tested in pba-core).
            }
            Err(e) => panic!("case {case}: unexpected error: {e}"),
        }
    }
}

/// Message conservation: every request gets exactly one response, and
/// commit notifications never exceed requests.
#[test]
fn message_conservation() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let spec = small_spec(&mut rng);
        let seed = rng.next_u64();
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(ThresholdHeavy::new(spec))
            .unwrap();
        assert_eq!(out.messages.requests, out.messages.responses, "case {case}");
        assert!(out.messages.commits <= out.messages.requests, "case {case}");
        // Every placed ball notifies at least its committed bin; balls in
        // the multi-request light phase may notify several accepting bins.
        assert!(out.messages.commits >= spec.balls(), "case {case}");
    }
}

/// Per-round trace conservation: active_before − committed of round i
/// equals active_before of round i+1; committed sums to m.
#[test]
fn trace_conservation() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let spec = small_spec(&mut rng);
        let seed = rng.next_u64();
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(FixedThreshold::new(spec, 2))
            .unwrap();
        let trace = out.trace.unwrap();
        let records = trace.records();
        for w in records.windows(2) {
            assert_eq!(
                w[0].active_before - w[0].committed,
                w[1].active_before,
                "case {case}"
            );
        }
        let total: u64 = records.iter().map(|r| r.committed).sum();
        assert_eq!(total, spec.balls(), "case {case}");
        // Granted ≥ committed each round (a grant may be wasted only for
        // degree ≥ 2; here degree is 1, so they are equal).
        for r in records {
            assert_eq!(r.granted, r.committed, "case {case}");
            assert_eq!(r.wasted_grants, 0, "case {case}");
        }
    }
}

/// RNG: bounded sampling stays in bounds for arbitrary seeds and bounds.
#[test]
fn rng_below_stays_in_bounds() {
    for case in 0..CASES {
        let mut meta = case_rng(6, case);
        let seed = meta.next_u64();
        let bound = 1 + meta.below(9999);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            assert!(rng.below(bound) < bound, "case {case}: bound {bound}");
        }
    }
}

/// Counter-based streams: the same (seed, round, ball) always yields the
/// same draws; distinct balls differ somewhere early.
#[test]
fn ball_streams_reproducible() {
    for case in 0..CASES {
        let mut meta = case_rng(7, case);
        let seed = meta.next_u64();
        let round = meta.below(50);
        let ball = meta.next_u64() % 1_000_000;
        let draw = |ball| -> Vec<u64> {
            let mut s = ball_stream(seed, round, ball);
            (0..4).map(|_| s.next_u64()).collect()
        };
        let a = draw(ball);
        assert_eq!(a, draw(ball), "case {case}");
        assert_ne!(a, draw(ball + 1), "case {case}");
    }
}

/// LoadStats invariants: gap/spread/total consistency for arbitrary load
/// vectors.
#[test]
fn load_stats_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let len = 1 + rng.below(199) as usize;
        let loads: Vec<u32> = (0..len).map(|_| rng.below(1000)).collect();
        let stats = pba::core::LoadStats::from_loads(&loads);
        assert_eq!(stats.max(), *loads.iter().max().unwrap(), "case {case}");
        assert_eq!(stats.min(), *loads.iter().min().unwrap(), "case {case}");
        assert_eq!(
            stats.total(),
            loads.iter().map(|&l| l as u64).sum::<u64>(),
            "case {case}"
        );
        assert!(stats.spread() >= stats.gap(), "case {case}");
        assert!(stats.quantile(0.0) <= stats.quantile(0.5), "case {case}");
        assert!(stats.quantile(0.5) <= stats.quantile(1.0), "case {case}");
        assert_eq!(stats.quantile(1.0), stats.max(), "case {case}");
        let hist_total: u64 = stats.histogram().values().map(|&c| c as u64).sum();
        assert_eq!(hist_total, loads.len() as u64, "case {case}");
    }
}
