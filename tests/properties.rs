//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use pba::core::rng::{ball_stream, Rand64, SplitMix64};
use pba::prelude::*;

/// Strategy: moderate problem specs (kept small so the whole suite runs
/// in seconds at 256 cases per property).
fn small_spec() -> impl Strategy<Value = ProblemSpec> {
    (1u64..5000, 1u32..200)
        .prop_map(|(m, n)| ProblemSpec::new(m, n).expect("positive sizes are valid"))
}

proptest! {
    /// Every protocol yields a complete, well-formed allocation on any
    /// spec: loads sum to m, assignment consistent, no bin out of range.
    #[test]
    fn protocols_always_complete_and_conserve_balls(
        spec in small_spec(),
        seed in any::<u64>(),
        proto_idx in 0usize..11, // = protocol_names().len(), checked below
    ) {
        prop_assert_eq!(pba::protocols::protocol_names().len(), 11);
        let name = pba::protocols::protocol_names()[proto_idx];
        let cfg = RunConfig::seeded(seed).with_assignment(true);
        let out = pba::protocols::run_by_name(name, spec, cfg)
            .expect("registered")
            .unwrap_or_else(|e| panic!("{name} on {spec}: {e}"));
        prop_assert!(out.is_complete());
        prop_assert_eq!(out.placed, spec.balls());
        let alloc = out.allocation();
        prop_assert!(alloc.is_well_formed(), "{}: {:?}", name, alloc.verify());
    }

    /// Threshold protocols never exceed their structural cap.
    #[test]
    fn threshold_heavy_gap_is_bounded(spec in small_spec(), seed in any::<u64>()) {
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(ThresholdHeavy::new(spec))
            .unwrap();
        prop_assert!(out.gap() <= 2, "gap {} for {}", out.gap(), spec);
    }

    /// The collision bound is a hard invariant whenever the run
    /// completes. Completion itself is only w.h.p. *in n*: non-adaptive
    /// collision protocols genuinely livelock on small adversarial
    /// instances (e.g. three balls drawing the same bin pair at c = 2),
    /// so budget exhaustion is an acceptable outcome here — the papers'
    /// guarantees are asymptotic.
    #[test]
    fn collision_never_exceeds_c(n in 4u32..400, c in 2u32..6, seed in any::<u64>()) {
        let m = (n as u64) * (c as u64 - 1);
        let spec = ProblemSpec::new(m.max(1), n).unwrap();
        match Simulator::new(spec, RunConfig::seeded(seed))
            .run(Collision::with_params(spec, 2, c))
        {
            Ok(out) => {
                prop_assert!(out.max_load() <= c);
                prop_assert!(out.is_complete());
            }
            Err(pba::core::CoreError::RoundBudgetExhausted { .. }) => {
                // Documented small-instance livelock; the load cap is
                // still enforced structurally (unit-tested in pba-core).
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Message conservation: every request gets exactly one response, and
    /// commit notifications never exceed requests.
    #[test]
    fn message_conservation(spec in small_spec(), seed in any::<u64>()) {
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(ThresholdHeavy::new(spec))
            .unwrap();
        prop_assert_eq!(out.messages.requests, out.messages.responses);
        prop_assert!(out.messages.commits <= out.messages.requests);
        // Every placed ball notifies at least its committed bin; balls in
        // the multi-request light phase may notify several accepting bins.
        prop_assert!(out.messages.commits >= spec.balls());
    }

    /// Per-round trace conservation: active_before − committed of round i
    /// equals active_before of round i+1; committed sums to m.
    #[test]
    fn trace_conservation(spec in small_spec(), seed in any::<u64>()) {
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(FixedThreshold::new(spec, 2))
            .unwrap();
        let trace = out.trace.unwrap();
        let records = trace.records();
        for w in records.windows(2) {
            prop_assert_eq!(w[0].active_before - w[0].committed, w[1].active_before);
        }
        let total: u64 = records.iter().map(|r| r.committed).sum();
        prop_assert_eq!(total, spec.balls());
        // Granted ≥ committed each round (a grant may be wasted only for
        // degree ≥ 2; here degree is 1, so they are equal).
        for r in records {
            prop_assert_eq!(r.granted, r.committed);
            prop_assert_eq!(r.wasted_grants, 0);
        }
    }

    /// RNG: bounded sampling is unbiased enough to pass a coarse χ²-style
    /// check, and streams are independent of call order.
    #[test]
    fn rng_below_stays_in_bounds(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Counter-based streams: the same (seed, round, ball) always yields
    /// the same draws; distinct balls differ somewhere early.
    #[test]
    fn ball_streams_reproducible(seed in any::<u64>(), round in 0u32..50, ball in 0u64..1_000_000) {
        let a: Vec<u64> = { let mut s = ball_stream(seed, round, ball); (0..4).map(|_| s.next_u64()).collect() };
        let b: Vec<u64> = { let mut s = ball_stream(seed, round, ball); (0..4).map(|_| s.next_u64()).collect() };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = { let mut s = ball_stream(seed, round, ball + 1); (0..4).map(|_| s.next_u64()).collect() };
        prop_assert_ne!(a, c);
    }

    /// LoadStats invariants: gap/spread/total consistency for arbitrary
    /// load vectors.
    #[test]
    fn load_stats_invariants(loads in prop::collection::vec(0u32..1000, 1..200)) {
        let stats = pba::core::LoadStats::from_loads(&loads);
        prop_assert_eq!(stats.max(), *loads.iter().max().unwrap());
        prop_assert_eq!(stats.min(), *loads.iter().min().unwrap());
        prop_assert_eq!(stats.total(), loads.iter().map(|&l| l as u64).sum::<u64>());
        prop_assert!(stats.spread() >= stats.gap());
        prop_assert!(stats.quantile(0.0) <= stats.quantile(0.5));
        prop_assert!(stats.quantile(0.5) <= stats.quantile(1.0));
        prop_assert_eq!(stats.quantile(1.0), stats.max());
        let hist_total: u64 = stats.histogram().values().map(|&c| c as u64).sum();
        prop_assert_eq!(hist_total, loads.len() as u64);
    }
}
