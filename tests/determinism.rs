//! Integration: determinism and executor equivalence across the public
//! API.

use pba::prelude::*;

fn run(name: &str, spec: ProblemSpec, cfg: RunConfig) -> RunOutcome {
    pba::protocols::run_by_name(name, spec, cfg)
        .expect("known")
        .expect("ok")
}

/// Same seed ⇒ identical everything, for every protocol.
#[test]
fn identical_seeds_identical_outcomes() {
    let spec = ProblemSpec::new(1 << 14, 1 << 7).unwrap();
    for &name in pba::protocols::protocol_names() {
        let a = run(name, spec, RunConfig::seeded(11));
        let b = run(name, spec, RunConfig::seeded(11));
        assert_eq!(a.loads, b.loads, "{name}");
        assert_eq!(a.rounds, b.rounds, "{name}");
        assert_eq!(a.messages, b.messages, "{name}");
    }
}

/// Different seeds ⇒ different allocations for randomized protocols.
/// Estimated-average converges to the all-⌈m/n⌉ load vector on *every*
/// seed (that is its theorem), so seed sensitivity is asserted on the
/// per-ball assignment instead of the loads there.
#[test]
fn different_seeds_differ_for_randomized_protocols() {
    let spec = ProblemSpec::new(1 << 14, 1 << 7).unwrap();
    for &name in pba::protocols::protocol_names() {
        if name == "trivial-round-robin" {
            continue; // deterministic by design
        }
        let a = run(name, spec, RunConfig::seeded(1).with_assignment(true));
        let b = run(name, spec, RunConfig::seeded(2).with_assignment(true));
        if name == "estimated-average" {
            assert_eq!(a.loads, b.loads, "{name}: perfect balance on any seed");
            assert_ne!(a.assignment, b.assignment, "{name} ignored its seed");
        } else {
            assert_ne!(a.loads, b.loads, "{name} ignored its seed");
        }
    }
}

/// The parallel executor reproduces the sequential executor bit-for-bit
/// on large instances, for representative protocols of each family
/// (degree-1 threshold, degree-2 collision, redirecting asymmetric,
/// commit-choice greedy).
#[test]
fn parallel_executor_is_bit_identical() {
    let spec = ProblemSpec::new(1 << 20, 1 << 9).unwrap();
    for &name in &[
        "threshold-heavy",
        "collision",
        "asymmetric",
        "adler-greedy",
        "single-choice",
    ] {
        let seq = run(name, spec, RunConfig::seeded(7));
        let par = run(
            name,
            spec,
            RunConfig::seeded(7).with_executor(ExecutorKind::ParallelWith(4)),
        );
        assert_eq!(seq.loads, par.loads, "{name}: load vectors diverge");
        assert_eq!(seq.rounds, par.rounds, "{name}: round counts diverge");
        assert_eq!(seq.messages, par.messages, "{name}: message totals diverge");
        assert_eq!(
            seq.per_bin_received, par.per_bin_received,
            "{name}: per-bin message counts diverge"
        );
    }
}

/// Trace records agree across executors too (per-round equality, not
/// just final state).
#[test]
fn traces_agree_across_executors() {
    let spec = ProblemSpec::new(1 << 20, 1 << 9).unwrap();
    let seq = run("threshold-heavy", spec, RunConfig::seeded(9));
    let par = run(
        "threshold-heavy",
        spec,
        RunConfig::seeded(9).with_executor(ExecutorKind::ParallelWith(3)),
    );
    let (st, pt) = (seq.trace.unwrap(), par.trace.unwrap());
    assert_eq!(st.rounds(), pt.rounds());
    for (a, b) in st.records().iter().zip(pt.records()) {
        assert_eq!(a, b, "round {} diverged", a.round);
    }
}
