//! Integration: the papers' comparative claims, checked across crates at
//! moderate scale with fixed seeds.

use pba::prelude::*;
use pba::protocols::seq::{single_choice_loads, GreedyD};

fn gap_of(name: &str, spec: ProblemSpec, seed: u64) -> u32 {
    pba::protocols::run_by_name(name, spec, RunConfig::seeded(seed))
        .expect("known protocol")
        .expect("run succeeds")
        .gap()
}

fn rounds_of(name: &str, spec: ProblemSpec, seed: u64) -> u32 {
    pba::protocols::run_by_name(name, spec, RunConfig::seeded(seed))
        .expect("known protocol")
        .expect("run succeeds")
        .rounds
}

/// The headline of the heavily loaded paper: parallel threshold protocol
/// matches the sequential two-choice quality (both m/n + O(1)-ish) and
/// crushes the naive baseline.
#[test]
fn heavy_regime_quality_ordering() {
    let n = 1u32 << 10;
    let spec = ProblemSpec::new((n as u64) << 9, n).unwrap(); // m/n = 512
    let naive = gap_of("single-choice", spec, 1);
    let heavy = gap_of("threshold-heavy", spec, 1);
    let asym = gap_of("asymmetric", spec, 1);
    let two_choice = {
        let loads = GreedyD::two_choice(spec).run(1);
        pba::core::LoadStats::from_loads(&loads).gap()
    };
    assert!(heavy <= 2, "threshold-heavy gap {heavy}");
    assert!(asym <= 8, "asymmetric gap {asym}");
    assert!(naive >= 10 * heavy.max(1), "naive {naive} vs heavy {heavy}");
    // Sequential two-choice is O(log log n): small but not necessarily
    // better than the parallel O(1) algorithms.
    assert!(two_choice <= 8, "two-choice gap {two_choice}");
}

/// Round-count ordering in the heavy regime:
/// asymmetric O(1) < threshold-heavy O(log log + log*) < fixed threshold
/// Ω(log n) < trivial Θ(n).
#[test]
fn heavy_regime_round_ordering() {
    let n = 1u32 << 9;
    let spec = ProblemSpec::new((n as u64) << 8, n).unwrap();
    let asym = rounds_of("asymmetric", spec, 2);
    let heavy = rounds_of("threshold-heavy", spec, 2);
    let fixed = rounds_of("fixed-threshold", spec, 2);
    let trivial = rounds_of("trivial-round-robin", spec, 2);
    assert!(asym <= heavy, "asym {asym} vs heavy {heavy}");
    assert!(heavy < fixed, "heavy {heavy} vs fixed {fixed}");
    assert!(
        fixed < trivial.max(fixed + 1),
        "fixed {fixed} vs trivial {trivial}"
    );
    assert!(trivial <= n, "trivial exceeded n rounds");
}

/// Balanced case: the collision protocol's double-log rounds beat the
/// naive log-scale retries, with load ≤ c.
#[test]
fn balanced_collision_beats_naive_retry() {
    let n = 1u32 << 13;
    let spec = ProblemSpec::new(n as u64, n).unwrap();
    let sim = Simulator::new(spec, RunConfig::seeded(3));
    let collision = sim.run(Collision::new(spec)).unwrap();
    assert!(collision.is_complete());
    assert!(collision.max_load() <= 2);
    assert!(collision.rounds <= 10, "rounds {}", collision.rounds);
    let naive_gap = {
        let loads = single_choice_loads(spec, 3);
        pba::core::LoadStats::from_loads(&loads).gap()
    };
    assert!(naive_gap >= 3, "naive balanced gap {naive_gap}");
}

/// Two-choice quality is preserved by batching (BCE+12) but not by
/// removing the second choice.
#[test]
fn batching_preserves_two_choice_quality() {
    let n = 1u32 << 9;
    let spec = ProblemSpec::new((n as u64) << 5, n).unwrap();
    let batched = Simulator::new(spec, RunConfig::seeded(4))
        .run(BatchedTwoChoice::new(spec, n as u64))
        .unwrap();
    let naive = gap_of("single-choice", spec, 4);
    assert!(
        batched.gap() * 3 <= naive,
        "batched {} vs naive {naive}",
        batched.gap()
    );
}

/// Every registered protocol completes and produces a well-formed
/// allocation with assignment tracking on.
#[test]
fn all_protocols_produce_well_formed_allocations() {
    let spec = ProblemSpec::new(1 << 13, 1 << 7).unwrap();
    for &name in pba::protocols::protocol_names() {
        let cfg = RunConfig::seeded(5).with_assignment(true);
        let out = pba::protocols::run_by_name(name, spec, cfg)
            .unwrap()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.is_complete(), "{name} incomplete");
        let alloc = out.allocation();
        assert!(alloc.is_well_formed(), "{name}: {:?}", alloc.verify());
    }
}

/// The (k,d)-choice comparative claim: committing k = 2 replicas through
/// d = 4 informed choices keeps the gap within a double-log window,
/// while placing the same 2m replica units by naive single choice pays
/// the √((k·m/n)·ln n)-scale binomial deviation.
#[test]
fn kd_choice_window_beats_naive_replication() {
    let n = 1u32 << 10;
    let spec = ProblemSpec::new(4 * n as u64, n).unwrap();
    let kd = pba::protocols::run_by_name("kd-choice", spec, RunConfig::seeded(7))
        .unwrap()
        .unwrap();
    assert!(kd.is_complete());
    assert_eq!(kd.replicas, 2);
    // Same 2m load units, placed one uniform choice at a time.
    let naive_spec = ProblemSpec::new(8 * n as u64, n).unwrap();
    let naive = gap_of("single-choice", naive_spec, 7);
    assert!(kd.gap() <= 5, "kd-choice gap {}", kd.gap());
    assert!(
        naive >= 2 * kd.gap().max(1),
        "naive replication gap {naive} vs kd-choice {}",
        kd.gap()
    );
}

/// The estimated-average comparative claim: the retry loop reaches the
/// *optimal* max load ⌈m/n⌉ (gap 0) where even parallel two-choice — let
/// alone single choice — leaves a nonzero gap, and it pays only a
/// handful of rounds for it.
#[test]
fn estimated_average_reaches_perfect_balance() {
    let n = 1u32 << 10;
    let spec = ProblemSpec::new(16 * n as u64, n).unwrap();
    let ea = pba::protocols::run_by_name("estimated-average", spec, RunConfig::seeded(8))
        .unwrap()
        .unwrap();
    assert!(ea.is_complete());
    assert_eq!(ea.gap(), 0, "hard cap guarantees the optimum");
    assert!(ea.rounds <= 40, "retry loop took {} rounds", ea.rounds);
    let two_choice = gap_of("parallel-two-choice", spec, 8);
    let naive = gap_of("single-choice", spec, 8);
    assert!(two_choice >= 1, "two-choice gap {two_choice}");
    assert!(
        naive > two_choice,
        "naive {naive} vs two-choice {two_choice}"
    );
}

/// The gap hierarchy of the sequential family: 1-choice ≫ (1+β) > 2-choice
/// ≥ always-go-left (up to noise).
#[test]
fn sequential_family_hierarchy() {
    let n = 1u32 << 10;
    let spec = ProblemSpec::new((n as u64) << 8, n).unwrap();
    let g1 = pba::core::LoadStats::from_loads(&GreedyD::new(spec, 1).run(6)).gap();
    let g_beta =
        pba::core::LoadStats::from_loads(&pba::protocols::seq::OnePlusBeta::new(spec, 0.5).run(6))
            .gap();
    let g2 = pba::core::LoadStats::from_loads(&GreedyD::new(spec, 2).run(6)).gap();
    assert!(g_beta < g1, "β=0.5 {g_beta} vs 1-choice {g1}");
    assert!(g2 <= g_beta, "2-choice {g2} vs β=0.5 {g_beta}");
}
