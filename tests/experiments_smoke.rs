//! Integration: every experiment runs end-to-end at smoke scale through
//! the public harness API and produces renderable reports.

use pba::runner::{all_experiments, experiment_by_id, Scale};

#[test]
fn all_experiments_run_at_smoke_scale() {
    for e in all_experiments() {
        let report = e.run(Scale::Smoke);
        assert_eq!(report.id, e.id());
        assert!(!report.tables.is_empty(), "{} produced no tables", e.id());
        for t in &report.tables {
            assert!(!t.is_empty(), "{}: empty table '{}'", e.id(), t.title());
            // CSV and markdown render without panicking and contain data.
            assert!(t.to_csv().lines().count() > 1);
            assert!(t.to_markdown().contains('|'));
        }
        assert!(!report.claim.is_empty());
        // run() attaches the harness aggregator: every report carries perf.
        let perf = report
            .perf
            .as_ref()
            .unwrap_or_else(|| panic!("{}: perf not aggregated", e.id()));
        assert!(perf.wall_nanos > 0, "{}: zero wall time", e.id());
        // e02 benchmarks a non-engine sequential baseline; the streaming
        // experiments (e15–e17, e19) drive the batch allocator instead of
        // the round engine; every other experiment must show engine
        // throughput.
        if matches!(e.id(), "e15" | "e16" | "e17" | "e19") {
            assert!(perf.engine.batches > 0, "{}: no batches seen", e.id());
            assert!(
                perf.engine.batches_per_sec() > 0.0,
                "{}: zero batch throughput",
                e.id()
            );
        } else if e.id() != "e02" {
            assert!(perf.engine.runs > 0, "{}: no engine runs seen", e.id());
            assert!(perf.balls_per_sec() > 0.0, "{}: zero throughput", e.id());
        }
    }
}

#[test]
fn reports_render_combined_markdown() {
    let e = experiment_by_id("e03").unwrap();
    let md = e.run(Scale::Smoke).to_markdown();
    assert!(md.contains("## E03"));
    assert!(md.contains("*Claim.*"));
    assert!(md.contains("| "));
}
