//! Golden seed-matrix regression: pinned final max loads for the three
//! workload families the repo's headline experiments exercise (E1
//! single-choice, E7 collision, E15 streaming batched two-choice), each
//! across three fixed seeds.
//!
//! These constants pin the *exact* output of the deterministic RNG and
//! engine pipeline. A diff here means the counter-stream layout, the
//! acceptance order, or the allocator's placement sequence changed —
//! which silently invalidates every recorded experiment table. Update
//! the constants only for an intentional, documented RNG/engine break.

use pba::prelude::*;
use pba::stream::Batch;

const SEEDS: [u64; 3] = [41, 42, 43];

/// E1-style workload: single-choice, m = 4096 balls into n = 256 bins.
#[test]
fn golden_single_choice_max_loads() {
    const GOLDEN_MAX: [u32; 3] = [26, 29, 26];
    let spec = ProblemSpec::new(1 << 12, 1 << 8).unwrap();
    for (seed, want) in SEEDS.into_iter().zip(GOLDEN_MAX) {
        let out = Simulator::new(spec, RunConfig::seeded(seed).with_validation(true))
            .run(SingleChoice::new(spec))
            .unwrap();
        assert_eq!(out.rounds, 1, "seed {seed}: single-choice is one round");
        assert_eq!(
            out.load_stats().max(),
            want,
            "seed {seed}: single-choice max load drifted"
        );
    }
}

/// E7-style workload: Stemann collision (d = 2, c = 2) at m = n = 4096.
#[test]
fn golden_collision_max_loads_and_rounds() {
    const GOLDEN: [(u32, u32); 3] = [(2, 5), (2, 5), (2, 5)];
    let spec = ProblemSpec::new(1 << 12, 1 << 12).unwrap();
    for (seed, (want_max, want_rounds)) in SEEDS.into_iter().zip(GOLDEN) {
        let out = Simulator::new(spec, RunConfig::seeded(seed).with_validation(true))
            .run(Collision::new(spec))
            .unwrap();
        assert_eq!(
            out.load_stats().max(),
            want_max,
            "seed {seed}: collision max load drifted"
        );
        assert_eq!(
            out.rounds, want_rounds,
            "seed {seed}: collision round count drifted"
        );
    }
}

/// E15-style workload: streaming batched two-choice, 16 batches of 4n
/// unit arrivals into n = 256 bins.
#[test]
fn golden_stream_max_loads() {
    const GOLDEN_MAX: [u64; 3] = [75, 73, 74];
    for (seed, want) in SEEDS.into_iter().zip(GOLDEN_MAX) {
        let mut alloc = StreamAllocator::new(256, seed, PolicyKind::BatchedTwoChoice);
        let mut last = 0;
        for t in 0..16u64 {
            last = alloc
                .ingest(&Batch::unit_arrivals(t * 2000, 1024))
                .record
                .max_load;
        }
        assert_eq!(last, want, "seed {seed}: stream max load drifted");
    }
}

/// E24-style workload: (k,d)-choice (k = 2, d = 4), m = 4096 balls as
/// two replicas each into n = 256 bins. The max sits exactly at the
/// structural capacity ⌈k·m/n⌉ + window + 2 = 37 at this size; the
/// pinned rounds are the interesting half (commit order and the k-slot
/// grant path both feed them).
#[test]
fn golden_kd_choice_max_loads_and_rounds() {
    const GOLDEN: [(u32, u32); 3] = [(37, 4), (37, 4), (37, 4)];
    let spec = ProblemSpec::new(1 << 12, 1 << 8).unwrap();
    for (seed, (want_max, want_rounds)) in SEEDS.into_iter().zip(GOLDEN) {
        let out = Simulator::new(spec, RunConfig::seeded(seed).with_validation(true))
            .run(KdChoice::with_params(spec, 2, 4))
            .unwrap();
        let total: u64 = out.loads.iter().map(|&l| l as u64).sum();
        assert_eq!(total, 2 << 12, "seed {seed}: k-slot conservation drifted");
        assert_eq!(
            out.load_stats().max(),
            want_max,
            "seed {seed}: kd-choice max load drifted"
        );
        assert_eq!(
            out.rounds, want_rounds,
            "seed {seed}: kd-choice round count drifted"
        );
    }
}

/// E25-style workload: estimated-average, m = 4096 into n = 256. Max
/// load is structurally ⌈m/n⌉ = 16 on completion, so the retry loop's
/// fingerprint is the round count.
#[test]
fn golden_estimated_average_rounds() {
    const GOLDEN_ROUNDS: [u32; 3] = [19, 17, 19];
    let spec = ProblemSpec::new(1 << 12, 1 << 8).unwrap();
    for (seed, want_rounds) in SEEDS.into_iter().zip(GOLDEN_ROUNDS) {
        let out = Simulator::new(spec, RunConfig::seeded(seed).with_validation(true))
            .run(EstimatedAverage::new(spec))
            .unwrap();
        assert_eq!(
            out.load_stats().max(),
            16,
            "seed {seed}: perfect-balance cap drifted"
        );
        assert_eq!(
            out.rounds, want_rounds,
            "seed {seed}: estimated-average round count drifted"
        );
    }
}

/// Executor-matrix regression: every registry protocol, run on the
/// sequential executor and on 2- and 8-lane pools, with faults off and
/// with a 10% message-drop plan, must produce the **bit-identical**
/// per-ball assignment. The chunk geometry is lowered so the 4096-ball
/// instance genuinely fans out across lanes instead of falling back to
/// the serial path. This is the executional half of the golden pins
/// above: the unified round kernel promises serial ≡ parallel for every
/// protocol, not just the three headline workloads.
#[test]
fn assignment_matrix_identical_across_executors_and_faults() {
    use pba::protocols::{protocol_names, run_by_name};

    let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
    let plans = [None, Some(FaultPlan::new(0xD0D0).with_drop_prob(0.1))];
    for &name in protocol_names() {
        for plan in plans {
            // Under a drop plan some bounded-round protocols legitimately
            // exhaust their budget; that outcome must then be identical
            // across executors too, so compare the whole `Result`.
            let run = |executor: ExecutorKind| {
                let mut cfg = RunConfig::seeded(99)
                    .with_executor(executor)
                    .with_assignment(true)
                    .with_validation(true)
                    .with_tuning(Tuning::fixed(256, 512))
                    .with_trace(false);
                if let Some(p) = plan {
                    cfg = cfg.with_faults(p);
                }
                run_by_name(name, spec, cfg)
                    .expect("registry name")
                    .map(|out| {
                        (
                            out.assignment.clone().expect("assignment tracked"),
                            out.rounds,
                            out.load_stats().max(),
                        )
                    })
                    .map_err(|e| e.to_string())
            };
            let base = run(ExecutorKind::Sequential);
            for lanes in [2usize, 8] {
                assert_eq!(
                    base,
                    run(ExecutorKind::ParallelWith(lanes)),
                    "{name} (faults: {}) diverged from sequential on {lanes} lanes",
                    plan.is_some(),
                );
            }
        }
    }
}
