//! Seeded differential fuzzer: random `(protocol, m, n, executor,
//! chunking, fault-spec, shard-count)` configurations, sequential vs
//! pooled execution, bit-identity of the full outcome plus the in-engine
//! invariant checker armed on both sides.
//!
//! No external fuzzing deps: the generator extends the hand-rolled
//! seeded harness of `tests/properties.rs`. Every case is derived from a
//! single `u64`, so a failure prints that seed plus a deterministically
//! *shrunk* repro (smaller m/n, faults dropped, fewer lanes) that still
//! fails; paste the seed into `shrunk_repro_seed_replays` to replay it.
//!
//! A fixed-seed corpus replays in CI (`scripts/check.sh`); the
//! exploration test walks fresh derived cases beyond the corpus.

use pba::core::rng::{Rand64, SplitMix64};
use pba::prelude::*;

/// Protocol parameters beyond the registry defaults: the new-family
/// axes. `Registry` replays the named default; the others construct the
/// protocol directly so the fuzzer sweeps the whole parameter grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Params {
    /// Registry-default construction via `run_by_name`.
    Registry,
    /// `KdChoice::with_params(spec, k, d)` — the (k,d) grid axis.
    Kd(u32, u32),
    /// `EstimatedAverage::with_params(spec, probes, retry_cap)`.
    Ea(u32, u32),
}

/// One sampled differential configuration. Everything needed to replay
/// is in this struct, and all of it derives from one seed.
#[derive(Debug, Clone)]
struct FuzzCase {
    protocol: &'static str,
    m: u64,
    n: u32,
    seed: u64,
    lanes: usize,
    min_chunk: usize,
    par_cutoff: usize,
    faults: Option<FaultPlan>,
    params: Params,
}

impl FuzzCase {
    /// Derive a full configuration from a single case seed.
    fn sample(case_seed: u64) -> Self {
        let mut rng = SplitMix64::new(case_seed ^ 0x00F0_22E5_D1FF);
        let names = pba::protocols::protocol_names();
        let protocol = names[rng.below(names.len() as u32) as usize];
        let n = 1 + rng.below(255);
        let m = 1 + rng.next_u64() % 8192;
        let lanes = 2 + rng.below(3) as usize;
        let min_chunk = [32usize, 128, 1024][rng.below(3) as usize];
        // Small cutoffs force genuine fan-out at fuzz sizes (the engine
        // default of 64 Ki would silently serialize every round).
        let par_cutoff = [1usize, 64, 256][rng.below(3) as usize];
        let faults = if rng.below(2) == 1 {
            let mut plan = FaultPlan::new(rng.next_u64());
            if rng.below(2) == 1 {
                plan = plan.with_drop_prob(rng.below(20) as f64 / 100.0);
            }
            if rng.below(2) == 1 {
                plan = plan.with_crashed_bins(rng.below(10) as f64 / 100.0);
            }
            if rng.below(2) == 1 {
                plan = plan.with_stragglers(2 + rng.below(7), rng.below(30) as f64 / 100.0);
            }
            if rng.below(2) == 1 {
                plan = plan.with_shard_failures(2 + rng.below(7), rng.below(30) as f64 / 100.0);
            }
            Some(plan)
        } else {
            None
        };
        let seed = rng.next_u64();
        // Parameter axes for the k-slot / retry families, drawn *after*
        // every legacy field so pre-existing corpus seeds still derive
        // the exact same cases. Half the draws keep registry defaults so
        // the name-based path stays covered too.
        let params = match protocol {
            "kd-choice" | "kd-choice-36" if rng.below(2) == 1 => {
                let (k, d) =
                    [(1, 2), (2, 3), (2, 4), (2, 6), (3, 6), (4, 8)][rng.below(6) as usize];
                Params::Kd(k, d)
            }
            "estimated-average" if rng.below(2) == 1 => {
                let probes = 1 + rng.below(4);
                let retry_cap = [2u32, 4, 8, 16, 32][rng.below(5) as usize];
                Params::Ea(probes, retry_cap)
            }
            _ => Params::Registry,
        };
        FuzzCase {
            protocol,
            m,
            n,
            seed,
            lanes,
            min_chunk,
            par_cutoff,
            faults,
            params,
        }
    }

    fn config(&self, executor: ExecutorKind) -> RunConfig {
        let mut cfg = RunConfig::seeded(self.seed)
            .with_executor(executor)
            .with_assignment(true)
            .with_validation(true)
            .with_tuning(Tuning::fixed(self.min_chunk, self.par_cutoff));
        if let Some(plan) = self.faults {
            cfg = cfg.with_faults(plan);
        }
        cfg
    }

    fn run(&self, executor: ExecutorKind) -> Result<RunOutcome, String> {
        let spec = ProblemSpec::new(self.m, self.n).expect("sampled sizes are positive");
        let cfg = self.config(executor);
        match self.params {
            Params::Registry => pba::protocols::run_by_name(self.protocol, spec, cfg)
                .expect("registry name")
                .map_err(|e| e.to_string()),
            Params::Kd(k, d) => Simulator::new(spec, cfg)
                .run(pba::protocols::KdChoice::with_params(spec, k, d))
                .map_err(|e| e.to_string()),
            Params::Ea(probes, retry_cap) => Simulator::new(spec, cfg)
                .run(pba::protocols::EstimatedAverage::with_params(
                    spec, probes, retry_cap,
                ))
                .map_err(|e| e.to_string()),
        }
    }

    /// The same case with registry-default parameters — for axes (like
    /// the cluster wire protocol) that only dispatch by name.
    fn with_registry_params(mut self) -> Self {
        self.params = Params::Registry;
        self
    }
}

/// Run `case` both ways and describe the first divergence, if any.
/// Sequential and pooled execution must agree on *everything* — the
/// whole outcome on success, the exact error on failure. A run-budget
/// error is a legal protocol outcome (small collision instances
/// livelock), but any *other* error — in particular an invariant
/// violation from the in-engine validator — fails the case even when
/// both executors agree on it.
fn divergence(case: &FuzzCase) -> Option<String> {
    let seq = case.run(ExecutorKind::Sequential);
    let par = case.run(ExecutorKind::ParallelWith(case.lanes));
    match (&seq, &par) {
        (Ok(s), Ok(p)) => {
            if s.loads != p.loads {
                return Some("load vectors diverge".into());
            }
            if s.assignment != p.assignment {
                return Some("assignments diverge".into());
            }
            if s.rounds != p.rounds {
                return Some(format!("rounds diverge: {} vs {}", s.rounds, p.rounds));
            }
            if s.messages != p.messages {
                return Some("message totals diverge".into());
            }
            if s.placed != p.placed || s.unallocated != p.unallocated {
                return Some("placement totals diverge".into());
            }
            None
        }
        (Err(se), Err(pe)) => {
            if se != pe {
                return Some(format!("errors diverge: '{se}' vs '{pe}'"));
            }
            if se.contains("invariant") {
                return Some(format!("invariant violation: {se}"));
            }
            if !se.contains("round budget exhausted") {
                return Some(format!("unexpected engine error: {se}"));
            }
            None
        }
        (Ok(_), Err(e)) => Some(format!("parallel failed, sequential ok: {e}")),
        (Err(e), Ok(_)) => Some(format!("sequential failed, parallel ok: {e}")),
    }
}

/// Deterministic shrinker: repeatedly try the reduction candidates in a
/// fixed order, keeping a candidate only when it *still* fails, until no
/// candidate makes progress. Purely mechanical, so the minimized repro
/// is reproducible from the original seed alone.
fn shrink(mut case: FuzzCase) -> FuzzCase {
    loop {
        let mut progressed = false;
        let mut candidates: Vec<FuzzCase> = Vec::new();
        if case.m > 1 {
            let mut c = case.clone();
            c.m /= 2;
            candidates.push(c);
        }
        if case.n > 1 {
            let mut c = case.clone();
            c.n /= 2;
            candidates.push(c);
        }
        if case.faults.is_some() {
            let mut c = case.clone();
            c.faults = None;
            candidates.push(c);
        }
        if case.lanes > 2 {
            let mut c = case.clone();
            c.lanes = 2;
            candidates.push(c);
        }
        if case.min_chunk > 32 {
            let mut c = case.clone();
            c.min_chunk = 32;
            candidates.push(c);
        }
        for candidate in candidates {
            if divergence(&candidate).is_some() {
                case = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return case;
        }
    }
}

/// Check one case seed end to end; on failure, shrink and panic with the
/// minimized repro.
fn check_seed(case_seed: u64) {
    let case = FuzzCase::sample(case_seed);
    if let Some(why) = divergence(&case) {
        let small = shrink(case);
        let small_why = divergence(&small).unwrap_or_else(|| why.clone());
        panic!(
            "differential failure for case seed {case_seed:#x}: {why}\n\
             minimized repro: {small:?}\n\
             minimized failure: {small_why}"
        );
    }
}

/// The fixed-seed corpus replayed by `scripts/check.sh`. Grown over
/// time: when the explorer finds a failure, its case seed is fixed here
/// after the fix so the regression stays covered forever.
const CORPUS: [u64; 36] = [
    0x0001,
    0x0002,
    0x0003,
    0x0004,
    0x0005,
    0x0006,
    0x0007,
    0x0008, //
    0x0009,
    0x000a,
    0x000b,
    0x000c,
    0x000d,
    0x000e,
    0x000f,
    0x0010, //
    0x1111,
    0x2222,
    0x3333,
    0x4444,
    0x5555,
    0x6666,
    0x7777,
    0x8888, //
    0x9999,
    0xaaaa,
    0xbbbb,
    0xcccc,
    0xdddd,
    0xeeee,
    0xffff,
    0xabcd, //
    0xdead_beef,
    0xcafe_f00d,
    0x1234_5678,
    0x0f1e_2d3c,
];

/// Replay the fixed corpus (fast; part of the tier-1 gate).
#[test]
fn corpus_replays_clean() {
    for &seed in &CORPUS {
        check_seed(seed);
    }
}

/// Explore fresh cases beyond the corpus, derived from a fixed master
/// seed so CI is still deterministic.
#[test]
fn explorer_finds_no_divergence() {
    let mut master = SplitMix64::new(0x00D1_FFF0_77ED);
    for _ in 0..48 {
        check_seed(master.next_u64());
    }
}

/// Deterministic sweep of the new-family parameter axes: every (k,d)
/// grid point and every retry cap runs the full differential check
/// (Serial vs Pool, validation armed), with and without a fault plan —
/// coverage that does not depend on the name sampler's luck.
#[test]
fn new_family_axes_are_bit_identical() {
    let mut master = SplitMix64::new(0x00AD_0CE2_4C25);
    let kd_grid = [(1u32, 2u32), (2, 3), (2, 4), (2, 6), (3, 6), (4, 8)];
    let retry_caps = [2u32, 4, 8, 16, 32];
    let mut cases: Vec<(&'static str, Params)> = Vec::new();
    for &(k, d) in &kd_grid {
        cases.push(("kd-choice", Params::Kd(k, d)));
    }
    for &cap in &retry_caps {
        cases.push(("estimated-average", Params::Ea(1 + cap % 4, cap)));
    }
    for (idx, &(protocol, params)) in cases.iter().enumerate() {
        for faulted in [false, true] {
            let case = FuzzCase {
                protocol,
                m: 64 + master.next_u64() % 4096,
                n: 1 + master.below(255),
                seed: master.next_u64(),
                lanes: 2 + master.below(3) as usize,
                min_chunk: 32,
                par_cutoff: 1,
                // Drop/straggler plans only: both families run bins at
                // (or near) exact capacity, so crashed bins make small
                // instances infeasible rather than interesting.
                faults: faulted.then(|| {
                    FaultPlan::new(master.next_u64())
                        .with_drop_prob(master.below(20) as f64 / 100.0)
                        .with_stragglers(2 + master.below(7), master.below(30) as f64 / 100.0)
                }),
                params,
            };
            if let Some(why) = divergence(&case) {
                panic!("axis case {idx} (faulted={faulted}) {case:?}: {why}");
            }
        }
    }
}

/// The shrinker's reductions preserve replayability: a shrunk case's
/// fields still produce a deterministic run (both executors agree run
/// over run), so a printed repro can be pasted into a unit test.
#[test]
fn shrunk_repro_seed_replays() {
    let case = FuzzCase::sample(0xabcd);
    let a = case.run(ExecutorKind::Sequential);
    let b = case.run(ExecutorKind::Sequential);
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.loads, y.loads);
            assert_eq!(x.assignment, y.assignment);
        }
        (Err(x), Err(y)) => assert_eq!(x, y),
        _ => panic!("same case, different outcome kinds"),
    }
}

/// Cluster axis: the multi-process orchestration (worker threads over
/// in-memory pipes here — the wire protocol is identical for child
/// processes) must reproduce the sequential engine bit for bit on
/// sampled cases, fault plans included. Errors must agree too: a
/// round-budget exhaustion looks the same from either side.
#[test]
fn cluster_axis_is_bit_identical() {
    use pba::cluster::ClusterConfig;
    let mut master = SplitMix64::new(0x00C1_0573_ED01);
    let mut compared = 0u32;
    for case_idx in 0..8u64 {
        // The wire protocol dispatches by registry name only, so the
        // custom-parameter axes collapse to their named defaults here.
        let case = FuzzCase::sample(master.next_u64()).with_registry_params();
        let spec = ProblemSpec::new(case.m, case.n).expect("sampled sizes are positive");
        let single = case.run(ExecutorKind::Sequential);
        for shards in [2u32, 5] {
            let shards = shards.min(case.n);
            let mut cc = ClusterConfig::engine(case.protocol, spec, case.seed)
                .with_shards(shards)
                .with_validation(true);
            if let Some(plan) = case.faults {
                cc = cc.with_faults(plan);
            }
            match (&single, cc.run_local()) {
                (Ok(s), Ok(out)) => {
                    let c = out.run.expect("engine outcome");
                    assert_eq!(
                        s.loads, c.loads,
                        "case {case_idx} ({case:?}): cluster loads diverge at {shards} shards"
                    );
                    assert_eq!(s.rounds, c.rounds, "case {case_idx}: rounds diverge");
                    assert_eq!(s.messages, c.messages, "case {case_idx}: messages diverge");
                    compared += 1;
                }
                (Err(se), Err(ce)) => {
                    assert_eq!(
                        se,
                        &ce.to_string(),
                        "case {case_idx} ({case:?}): errors diverge at {shards} shards"
                    );
                }
                (s, c) => panic!(
                    "case {case_idx} ({case:?}): outcome kinds diverge at {shards} shards: \
                     single {}, cluster {}",
                    if s.is_ok() { "ok" } else { "err" },
                    if c.is_ok() { "ok" } else { "err" },
                ),
            }
        }
    }
    assert!(compared > 0, "no successful case was compared");
}

/// Shard-count axis for the streaming allocator: placements must be
/// identical across shard counts and sequential vs parallel ingestion,
/// including under shard-domain fault redirects.
#[test]
fn stream_shard_axis_is_bit_identical() {
    let mut master = SplitMix64::new(0x0057_AEA3_F022);
    for case in 0..12u64 {
        let n = 64 + master.below(192);
        let seed = master.next_u64();
        let policy = [
            PolicyKind::OneChoice,
            PolicyKind::BatchedTwoChoice,
            PolicyKind::Threshold,
        ][master.below(3) as usize];
        let faults = (master.below(2) == 1)
            .then(|| FaultPlan::new(master.next_u64()).with_shard_failures(4, 0.3));
        let batch = (n as u64) * (1 + master.below(8) as u64);
        let reference = stream_placements(n, seed, policy, faults, batch, 1, false);
        for shards in [2usize, 4, 8] {
            for parallel in [false, true] {
                let got = stream_placements(n, seed, policy, faults, batch, shards, parallel);
                assert_eq!(
                    reference, got,
                    "case {case}: {policy:?} n={n} shards={shards} parallel={parallel}"
                );
            }
        }
    }
}

fn stream_placements(
    n: u32,
    seed: u64,
    policy: PolicyKind,
    faults: Option<FaultPlan>,
    batch: u64,
    shards: usize,
    parallel: bool,
) -> Vec<Vec<u32>> {
    let mut alloc = StreamAllocator::new(n, seed, policy).with_shards(shards);
    if parallel {
        alloc = alloc.parallel();
    }
    if let Some(plan) = faults {
        alloc = alloc.with_faults(plan);
    }
    let mut traffic = Workload::new(WorkloadCfg::uniform(batch), seed ^ 0x57AEA3);
    (0..4)
        .map(|_| alloc.ingest(&traffic.next_batch()).placements)
        .collect()
}

/// Service axis: the replay facade (bounded queue + worker thread) must
/// be transparent — sampled `(policy, n, batch, faults, queue depth,
/// pipeline shape, snapshot interruption)` configurations place exactly
/// like direct ingestion, Serial and Pool backends alike.
#[test]
fn service_axis_is_bit_identical() {
    let mut master = SplitMix64::new(0x005E_1273_ACE5);
    for case in 0..10u64 {
        let n = 64 + master.below(192);
        let seed = master.next_u64();
        let policy = [
            PolicyKind::OneChoice,
            PolicyKind::BatchedTwoChoice,
            PolicyKind::Threshold,
        ][master.below(3) as usize];
        let faults = (master.below(2) == 1)
            .then(|| FaultPlan::new(master.next_u64()).with_shard_failures(4, 0.3));
        let batch = (n as u64) * (1 + master.below(8) as u64);
        let shards = [1usize, 4][master.below(2) as usize];
        let parallel = master.below(2) == 1;
        // Queue capacity is the pipeline depth; 1 forces full backpressure
        // on every submit, larger values let batches pile up in flight.
        let queue = 1 + master.below(8) as usize;
        let checkpoint_every = 1 + master.below(4) as u64;
        let snapshot_at = (master.below(2) == 1).then(|| 1 + master.below(3) as u64);

        let direct = stream_placements(n, seed, policy, faults, batch, shards, parallel);

        let build = |resume: Option<StreamAllocator>| {
            let mut alloc = match resume {
                Some(a) => a,
                None => StreamAllocator::new(n, seed, policy).with_shards(shards),
            };
            if parallel {
                alloc = alloc.parallel();
            }
            if let Some(plan) = faults {
                alloc = alloc.with_faults(plan);
            }
            alloc
        };
        let mut cfg = ServiceConfig::default()
            .with_queue_capacity(queue)
            .with_checkpoint_every(checkpoint_every)
            .with_placements();
        if let Some(k) = snapshot_at {
            cfg = cfg.with_snapshot_at(k);
        }
        let mut traffic = Workload::new(WorkloadCfg::uniform(batch), seed ^ 0x57AEA3);
        let (_, report) = replay(build(None), &mut traffic, 4, cfg);
        assert_eq!(
            direct, report.placements,
            "case {case}: {policy:?} n={n} queue={queue} service path diverges"
        );

        // When a snapshot was taken mid-replay, restoring it and replaying
        // the tail must produce the same remaining placements.
        if let Some((at, bytes)) = report.snapshot {
            let restored = StreamAllocator::restore(&bytes).expect("snapshot restores");
            let mut traffic = Workload::new(WorkloadCfg::uniform(batch), seed ^ 0x57AEA3);
            for _ in 0..at {
                traffic.next_batch();
            }
            let cfg = ServiceConfig::default()
                .with_queue_capacity(queue)
                .with_placements();
            let (_, tail) = replay(build(Some(restored)), &mut traffic, 4 - at, cfg);
            assert_eq!(
                &direct[at as usize..],
                &tail.placements[..],
                "case {case}: resumed tail diverges after snapshot at {at}"
            );
        }
    }
}
