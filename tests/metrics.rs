//! Integration: the observability layer's invariants.
//!
//! The metrics callbacks must (a) agree with the engine's own accounting
//! — per-round `requests == Σ degrees` and `committed + wasted ≤ granted`
//! are re-derivable from the delivered [`RoundRecord`]s, (b) report
//! monotone phase timings (`total ≥ Σ phases`), (c) be executor-agnostic
//! (sequential and parallel runs deliver identical counter streams), and
//! (d) leave the simulation outcome bit-identical whether a sink is
//! attached or not (the disabled path is zero-cost, not
//! differently-randomized).

use std::sync::{Arc, Mutex};

use pba::core::metrics::{RoundTiming, RunMeta, RunSummary};
use pba::core::RoundRecord;
use pba::prelude::*;

/// Records every callback verbatim for post-hoc inspection.
#[derive(Default)]
struct Recorder {
    rounds: Mutex<Vec<(u64, RoundRecord, RoundTiming)>>,
    runs: Mutex<Vec<(u64, RunSummary)>>,
    pools: Mutex<Vec<u64>>,
}

impl MetricsSink for Recorder {
    fn on_round(&self, meta: &RunMeta, record: &RoundRecord, timing: &RoundTiming) {
        self.rounds
            .lock()
            .unwrap()
            .push((meta.seed, *record, *timing));
    }

    fn on_run(&self, meta: &RunMeta, summary: &RunSummary) {
        self.runs.lock().unwrap().push((meta.seed, *summary));
    }

    fn on_pool(&self, meta: &RunMeta, _stats: &pba::par::PoolStats) {
        self.pools.lock().unwrap().push(meta.seed);
    }
}

fn observed_run(config: RunConfig) -> (RunOutcome, Arc<Recorder>) {
    let spec = ProblemSpec::new(1 << 14, 1 << 7).unwrap();
    let rec = Arc::new(Recorder::default());
    let out = Simulator::new(spec, config.with_metrics(rec.clone()))
        .run(ParallelTwoChoice::new(spec, 2))
        .unwrap();
    (out, rec)
}

/// Per-round counter invariants, re-checked from the sink's viewpoint:
/// degree-2 protocol sends exactly `2 · active` requests, and commits
/// plus wasted grants never exceed what bins granted.
#[test]
fn round_records_satisfy_counter_invariants() {
    let (out, rec) = observed_run(RunConfig::seeded(11));
    let rounds = rec.rounds.lock().unwrap();
    assert_eq!(rounds.len(), out.rounds as usize);
    for (_, r, _) in rounds.iter() {
        assert_eq!(r.requests, 2 * r.active_before, "round {}", r.round);
        assert!(
            r.committed + r.wasted_grants <= r.granted,
            "round {}: committed {} + wasted {} > granted {}",
            r.round,
            r.committed,
            r.wasted_grants,
            r.granted
        );
        assert_eq!(r.messages.requests, r.requests, "round {}", r.round);
        assert_eq!(r.messages.responses, r.requests, "round {}", r.round);
    }
    let committed: u64 = rounds.iter().map(|(_, r, _)| r.committed).sum();
    assert_eq!(committed, out.placed);
}

/// Phase-timing monotonicity: the whole-round clock covers the sum of the
/// phase clocks, and every phase was actually lapped.
#[test]
fn phase_timings_are_monotone() {
    for config in [RunConfig::seeded(12), RunConfig::seeded(12).parallel()] {
        let (_, rec) = observed_run(config);
        let rounds = rec.rounds.lock().unwrap();
        assert!(!rounds.is_empty());
        for (_, r, t) in rounds.iter() {
            assert!(
                t.total_nanos >= t.phase_sum(),
                "round {}: total {} < phase sum {}",
                r.round,
                t.total_nanos,
                t.phase_sum()
            );
        }
        // Time is attributed to every phase somewhere in the run (any
        // all-zero column would mean a lap was skipped).
        for phase in Phase::ALL {
            assert!(
                rounds.iter().any(|(_, _, t)| t.phase(phase) > 0),
                "phase {} never timed",
                phase.name()
            );
        }
    }
}

/// The run summary matches the outcome, and the parallel executor also
/// reports pool stats.
#[test]
fn run_summary_matches_outcome() {
    let (out, rec) = observed_run(RunConfig::seeded(13).parallel());
    let runs = rec.runs.lock().unwrap();
    assert_eq!(runs.len(), 1);
    let (seed, summary) = runs[0];
    assert_eq!(seed, 13);
    assert_eq!(summary.rounds, out.rounds);
    assert_eq!(summary.placed, out.placed);
    assert_eq!(summary.unallocated, out.unallocated);
    assert!(summary.wall_nanos > 0);
    assert_eq!(rec.pools.lock().unwrap().as_slice(), &[13]);
}

/// Executor equality at the metrics level: the sequential and parallel
/// executors deliver the *same* per-round counter stream (timings differ,
/// counters must not).
#[test]
fn sequential_and_parallel_counters_agree() {
    let (seq_out, seq_rec) = observed_run(RunConfig::seeded(14).sequential());
    let (par_out, par_rec) = observed_run(RunConfig::seeded(14).parallel());
    assert_eq!(seq_out.loads, par_out.loads);
    let seq_rounds = seq_rec.rounds.lock().unwrap();
    let par_rounds = par_rec.rounds.lock().unwrap();
    assert_eq!(seq_rounds.len(), par_rounds.len());
    for ((_, s, _), (_, p, _)) in seq_rounds.iter().zip(par_rounds.iter()) {
        assert_eq!(s, p, "round {} records diverge across executors", s.round);
    }
}

/// Attaching a sink must not perturb the simulation: outcomes are
/// bit-identical with and without metrics, on both executors.
#[test]
fn sink_does_not_perturb_outcomes() {
    let spec = ProblemSpec::new(1 << 12, 1 << 12).unwrap(); // m = n, the [Ste96] regime
    for make in [RunConfig::sequential, RunConfig::parallel] {
        let plain = Simulator::new(spec, make(RunConfig::seeded(15)))
            .run(Collision::with_params(spec, 2, 4))
            .unwrap();
        let metrics = Arc::new(EngineMetrics::new());
        let observed = Simulator::new(spec, make(RunConfig::seeded(15)).with_metrics(metrics))
            .run(Collision::with_params(spec, 2, 4))
            .unwrap();
        assert_eq!(plain.loads, observed.loads);
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.messages, observed.messages);
    }
}

/// The prelude's aggregator works end-to-end over replicated runs and its
/// throughput numbers are well-formed.
#[test]
fn engine_metrics_aggregates_replications() {
    let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
    let metrics = Arc::new(EngineMetrics::new());
    for seed in 0..4u64 {
        Simulator::new(spec, RunConfig::seeded(seed).with_metrics(metrics.clone()))
            .run(ThresholdHeavy::new(spec))
            .unwrap();
    }
    let report = metrics.report();
    assert_eq!(report.runs, 4);
    assert_eq!(report.placed, 4 << 12);
    assert!(report.rounds >= 4);
    assert!(report.balls_per_sec() > 0.0);
    assert!(report.rounds_per_sec() > 0.0);
    let total: f64 = Phase::ALL.iter().map(|&p| report.phase_fraction(p)).sum();
    assert!((total - 1.0).abs() < 1e-9, "phase fractions sum to {total}");
}
