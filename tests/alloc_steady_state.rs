//! Steady-state allocation discipline, enforced by a counting global
//! allocator.
//!
//! The engine's contract after the unified-executor refactor: once the
//! per-lane scratch arenas and claim table are warm (round 0, plus one
//! round of slack for capacity growth in `loads_before`/`next_active`),
//! a parallel round performs **zero** heap allocations — gather, scan,
//! grant and resolve all run in reused storage, and the pool's job slot
//! dispatch is allocation-free. The streaming allocator is softer: a
//! batch builds its placement and pair vectors fresh, but the count is
//! small and bounded, and the resident map stops growing under steady
//! churn.
//!
//! Everything lives in one `#[test]` so the counter is never polluted by
//! a concurrently running sibling test in the same binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pba::core::{RoundRecord, RoundTiming, RunMeta};
use pba::prelude::*;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every acquisition.
struct CountingAlloc;

// SAFETY: all four methods forward verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter side effect touches no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout come from a prior `alloc` through this same
        // forwarding wrapper.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a prior `alloc` through this same
        // forwarding wrapper.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Records the global allocation counter at the end of every round into
/// pre-reserved storage (so the recording itself never allocates).
struct AllocSnapshots {
    snaps: Mutex<Vec<u64>>,
}

impl AllocSnapshots {
    fn new() -> Self {
        Self {
            snaps: Mutex::new(Vec::with_capacity(64)),
        }
    }
}

impl MetricsSink for AllocSnapshots {
    fn on_round(&self, _meta: &RunMeta, _record: &RoundRecord, _timing: &RoundTiming) {
        let mut snaps = self.snaps.lock().unwrap();
        assert!(snaps.len() < snaps.capacity(), "snapshot storage too small");
        snaps.push(ALLOCS.load(Ordering::Relaxed));
    }
}

#[test]
fn parallel_rounds_and_stream_batches_stay_allocation_free() {
    engine_rounds_allocate_nothing_after_warmup();
    stream_batches_allocate_a_bounded_amount();
    latency_histogram_record_path_allocates_nothing();
}

/// Engine half: a multi-round collision run on a 5-lane executor, with
/// the chunk geometry lowered so an 8192-ball instance genuinely fans
/// out. Rounds 0 and 1 may allocate (scratch arenas, capacity growth);
/// every later round must allocate exactly nothing.
fn engine_rounds_allocate_nothing_after_warmup() {
    let spec = ProblemSpec::new(1 << 13, 1 << 13).unwrap();
    let sink = Arc::new(AllocSnapshots::new());
    let cfg = RunConfig::seeded(7)
        .with_executor(ExecutorKind::ParallelWith(4))
        .with_tuning(Tuning::fixed(512, 1024))
        .with_trace(false)
        .with_metrics(sink.clone());
    let out = Simulator::new(spec, cfg).run(Collision::new(spec)).unwrap();
    assert_eq!(out.load_stats().total(), 1 << 13);

    let snaps = sink.snaps.lock().unwrap();
    assert!(
        snaps.len() >= 4,
        "need several rounds to observe a steady state, got {}",
        snaps.len()
    );
    for r in 2..snaps.len() {
        assert_eq!(
            snaps[r],
            snaps[r - 1],
            "round {r} allocated {} time(s); steady-state rounds must not \
             touch the heap",
            snaps[r] - snaps[r - 1]
        );
    }
}

/// Stream half: steady churn (every batch's arrivals depart in the next
/// batch) through the parallel snapshot path. Each batch builds a few
/// bounded vectors, so the per-batch count must be small and flat — no
/// per-arrival allocations, no unbounded resident-map growth.
fn stream_batches_allocate_a_bounded_amount() {
    const B: u64 = 16 * 1024; // ≥ the allocator's 8 Ki parallel cutoff
    const BATCHES: u64 = 8;

    let mut alloc = StreamAllocator::new(512, 11, PolicyKind::BatchedTwoChoice)
        .with_shards(4)
        .parallel();

    // Pre-build every batch so test-side construction never counts.
    let batches: Vec<Batch> = (0..BATCHES)
        .map(|t| {
            let mut b = Batch::unit_arrivals(t * B, B);
            if t > 0 {
                b.departures = ((t - 1) * B..t * B).collect();
            }
            b
        })
        .collect();

    let mut per_batch = Vec::with_capacity(BATCHES as usize);
    for batch in &batches {
        let before = ALLOCS.load(Ordering::Relaxed);
        let out = alloc.ingest(batch);
        assert_eq!(out.placements.len(), B as usize);
        per_batch.push(ALLOCS.load(Ordering::Relaxed) - before);
    }
    assert_eq!(alloc.resident(), B, "steady churn keeps residency flat");

    // Batches 0–1 warm the resident map and the global pool; after that
    // each batch may build its handful of output vectors but nothing
    // proportional to the arrival count.
    for (t, &count) in per_batch.iter().enumerate().skip(2) {
        assert!(
            count <= 64,
            "batch {t} allocated {count} times; expected a small bounded \
             number (placement/pair/touch vectors only)"
        );
    }
}

/// Histogram half: the service records one latency per placed ball, so
/// the record path sits on the hot loop and must never touch the heap —
/// the histogram is a fixed `[u64; 64]` with scalar side state. Quantile
/// reads and merges are allocation-free too.
fn latency_histogram_record_path_allocates_nothing() {
    let mut hist = LatencyHistogram::new();
    let mut other = LatencyHistogram::new();
    other.record(123);

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        hist.record(i.wrapping_mul(0x9E37_79B9) % (1 << 30));
    }
    hist.record_n(42, 1_000_000);
    hist.merge(&other);
    let q = hist.p50() + hist.p99() + hist.p999() + hist.max();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(q > 0, "quantiles over recorded data are positive");
    assert_eq!(
        after - before,
        0,
        "latency histogram record/merge/quantile path must not allocate"
    );
}
