//! The [`Tuning`] API contract: auto plans are never degenerate, and
//! the tuning mode is a pure performance knob (bit-identical
//! allocations across auto / fixed / legacy on every executor).

use pba::core::exec::{
    ChunkPlan, AUTO_INGEST_MIN_CHUNK, AUTO_INGEST_PAR_CUTOFF, AUTO_MIN_CHUNK_FLOOR,
    AUTO_PAR_CUTOFF, DEFAULT_MIN_CHUNK, DEFAULT_PAR_CUTOFF,
};
use pba::prelude::*;

/// Every auto plan must be usable as-is: a positive chunk floor and a
/// positive cutoff, for any (work, lanes) combination including the
/// degenerate corners (zero work, zero lanes, lanes ≫ work, huge work).
#[test]
fn auto_plans_are_never_degenerate() {
    let works = [0u64, 1, 7, 1 << 10, 1 << 16, 1 << 24, u64::MAX >> 8];
    let lanes = [0usize, 1, 2, 3, 4, 8, 64, 1024];
    for &work in &works {
        for &l in &lanes {
            for (label, plan) in [
                ("round", Tuning::Auto.plan(work, l)),
                ("ingest", Tuning::Auto.plan_ingest(work, l)),
            ] {
                assert!(
                    plan.min_chunk >= 1,
                    "{label} plan(work={work}, lanes={l}) has zero min_chunk"
                );
                assert!(
                    plan.par_cutoff >= 1,
                    "{label} plan(work={work}, lanes={l}) has zero par_cutoff"
                );
            }
        }
    }
}

/// The auto tables respect their documented floors and cutoffs: chunks
/// never shrink below the floor (so fan-out overhead stays amortized),
/// and the cutoff is the shipped constant regardless of lane count.
#[test]
fn auto_plans_respect_floors_and_cutoffs() {
    for &l in &[1usize, 2, 4, 8] {
        for &work in &[1u64 << 10, 1 << 16, 1 << 20, 1 << 24] {
            let round = Tuning::Auto.plan(work, l);
            assert!(round.min_chunk >= AUTO_MIN_CHUNK_FLOOR);
            assert_eq!(round.par_cutoff, AUTO_PAR_CUTOFF);
            let ingest = Tuning::Auto.plan_ingest(work, l);
            assert!(ingest.min_chunk >= AUTO_INGEST_MIN_CHUNK);
            assert_eq!(ingest.par_cutoff, AUTO_INGEST_PAR_CUTOFF);
        }
        // Large work splits into roughly 2·lanes chunks, never fewer
        // chunks than one lane could fill at the floor.
        let plan = Tuning::Auto.plan(1 << 24, l);
        let chunks = (1u64 << 24).div_ceil(plan.min_chunk as u64);
        assert!(
            chunks as usize >= l.min(2 * l),
            "work 2^24 across {l} lanes split into only {chunks} chunk(s)"
        );
    }
    // Fixed plans are passed through verbatim.
    let plan = Tuning::fixed(123, 456).plan(1 << 20, 4);
    assert_eq!((plan.min_chunk, plan.par_cutoff), (123, 456));
    // Legacy is the historical default geometry.
    let plan = Tuning::legacy().plan(1 << 20, 4);
    assert_eq!(
        (plan.min_chunk, plan.par_cutoff),
        (DEFAULT_MIN_CHUNK, DEFAULT_PAR_CUTOFF)
    );
}

fn run_with(protocol_seed: u64, executor: ExecutorKind, tuning: Tuning) -> (Vec<u32>, u32, u32) {
    let spec = ProblemSpec::new(1 << 13, 1 << 13).unwrap();
    let cfg = RunConfig::seeded(protocol_seed)
        .with_executor(executor)
        .with_tuning(tuning)
        .with_trace(false);
    let out = Simulator::new(spec, cfg).run(Collision::new(spec)).unwrap();
    let max = out.load_stats().max();
    (out.loads.clone(), out.rounds, max)
}

/// Golden matrix: one collision run, every (executor × tuning) cell.
/// Tuning only moves work between lanes — loads, round count and max
/// load must be bit-identical across the whole matrix.
#[test]
fn tuning_matrix_is_bit_identical() {
    let executors = [ExecutorKind::Sequential, ExecutorKind::ParallelWith(4)];
    let tunings = [
        Tuning::Auto,
        Tuning::legacy(),
        Tuning::fixed(64, 1),
        Tuning::fixed(1 << 20, 1 << 30),
        Tuning::Fixed(ChunkPlan {
            min_chunk: 257,
            par_cutoff: 513,
        }),
    ];
    let golden = run_with(404, ExecutorKind::Sequential, Tuning::Auto);
    for &executor in &executors {
        for &tuning in &tunings {
            let got = run_with(404, executor, tuning);
            assert_eq!(
                got, golden,
                "(executor {executor:?}, tuning {tuning:?}) diverged from golden"
            );
        }
    }
}

/// A fixed tuning is honoured verbatim by a real run: the same
/// allocation as any other tuning (pure performance knob), with the
/// pinned geometry surfaced by the plan it resolves.
#[test]
fn fixed_tuning_runs_match_auto() {
    let spec = ProblemSpec::new(1 << 12, 1 << 10).unwrap();
    let run = |cfg: RunConfig| {
        Simulator::new(spec, cfg)
            .run(SingleChoice::new(spec))
            .unwrap()
            .loads
    };
    let fixed = run(RunConfig::seeded(9)
        .with_executor(ExecutorKind::ParallelWith(3))
        .with_tuning(Tuning::fixed(128, 256))
        .with_trace(false));
    let auto = run(RunConfig::seeded(9)
        .with_executor(ExecutorKind::ParallelWith(3))
        .with_tuning(Tuning::Auto)
        .with_trace(false));
    assert_eq!(fixed, auto);
    let plan = Tuning::fixed(128, 256).plan(1 << 12, 3);
    assert_eq!((plan.min_chunk, plan.par_cutoff), (128, 256));
}

/// Streaming ingest: the allocator's tuning mode must not change a
/// single placement, only the fan-out geometry used to compute them.
#[test]
fn stream_placements_are_tuning_invariant() {
    let run = |tuning: Tuning| {
        let mut alloc = StreamAllocator::new(512, 77, PolicyKind::BatchedTwoChoice)
            .with_shards(4)
            .with_tuning(tuning)
            .parallel();
        let mut traffic = Workload::new(WorkloadCfg::uniform(16 * 1024), 78);
        let mut placements = Vec::new();
        for _ in 0..3 {
            placements.extend(alloc.ingest(&traffic.next_batch()).placements);
        }
        placements
    };
    let auto = run(Tuning::Auto);
    let fixed = run(Tuning::fixed(64, 1));
    let legacy = run(Tuning::legacy());
    assert_eq!(auto, fixed);
    assert_eq!(auto, legacy);
}
