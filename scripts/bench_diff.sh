#!/usr/bin/env bash
# bench_diff.sh — throughput delta between two `pba-run bench` JSON files.
#
#   usage: scripts/bench_diff.sh OLD.json NEW.json
#
# Matches engine entries on (protocol, executor) and stream entries on
# (policy, ingest), printing old/new balls-per-second and the relative
# delta. Relies only on POSIX tools: the bench JSON is the compact
# hand-rolled format written by the runner, so a sed split plus awk field
# scraping is enough — no jq in the container.
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 OLD.json NEW.json" >&2
  exit 2
fi
old=$1
new=$2
[ -f "$old" ] || { echo "no such file: $old" >&2; exit 2; }
[ -f "$new" ] || { echo "no such file: $new" >&2; exit 2; }

# Emit "key<TAB>balls_per_sec" rows: one per engine entry
# (protocol/executor) and one per stream entry (stream:policy/ingest).
rows() {
  sed 's/},{/}\n{/g' "$1" | awk '
    function field(s, k,   m) {
      m = match(s, "\"" k "\":\"[^\"]*\"")
      if (m == 0) return ""
      return substr(s, RSTART + length(k) + 4, RLENGTH - length(k) - 5)
    }
    function num(s, k,   m) {
      m = match(s, "\"" k "\":[-0-9.eE+]+")
      if (m == 0) return "-"
      return substr(s, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
    }
    {
      proto = field($0, "protocol"); ex = field($0, "executor")
      pol = field($0, "policy"); ing = field($0, "ingest")
      bps = num($0, "balls_per_sec")
      if (proto != "" && ex != "")
        printf "%s/%s\t%s\n", proto, ex, bps
      else if (pol != "" && ing != "")
        printf "stream:%s/%s\t%s\n", pol, ing, bps
    }
  '
}

tmp_old=$(mktemp)
tmp_new=$(mktemp)
trap 'rm -f "$tmp_old" "$tmp_new"' EXIT
rows "$old" >"$tmp_old"
rows "$new" >"$tmp_new"

printf '%-44s %14s %14s %10s\n' "entry (balls/s)" "old" "new" "delta"
awk -F'\t' '
  NR == FNR { ob[$1] = $2; next }
  {
    key = $1; nb = $2
    if (!(key in ob)) {
      printf "%-44s %14s %14.0f %10s\n", key, "-", nb, "new"
      next
    }
    seen[key] = 1
    if (ob[key] + 0 > 0)
      printf "%-44s %14.0f %14.0f %+9.1f%%\n", key, ob[key], nb, 100 * (nb - ob[key]) / ob[key]
    else
      printf "%-44s %14.0f %14.0f %10s\n", key, ob[key], nb, "-"
  }
  END {
    for (k in ob)
      if (!(k in seen))
        printf "%-44s %14.0f %14s %10s\n", k, ob[k], "-", "gone"
  }
' "$tmp_old" "$tmp_new"
