#!/usr/bin/env bash
# bench_diff.sh — throughput delta between two `pba-run bench` JSON files.
#
#   usage: scripts/bench_diff.sh OLD.json NEW.json
#          scripts/bench_diff.sh --tier TIER [--gate PCT]
#
# Matches engine entries on (protocol, executor) and stream entries on
# (policy, ingest), printing old/new balls-per-second and the relative
# delta. Cluster entries (keyed on mode/wire/shards/n) get a second,
# never-gated table of wire bytes per wave, so codec work shows its
# byte-volume delta without throughput noise tripping CI. Relies only
# on POSIX tools: the bench JSON is the compact hand-rolled format
# written by the runner, so a sed split plus awk field scraping is
# enough — no jq in the container.
#
# In `--tier` mode the script runs a fresh `pba-run bench --tier TIER`
# into a temp file and diffs it against the committed BENCH_TIER.json
# baseline. With `--gate PCT` it additionally exits 1 if any matched
# entry regressed by more than PCT percent — the CI throughput gate
# (check.sh runs the small tier; medium+ stay manual, they take minutes).
set -eu

gate=""
if [ "${1:-}" = "--tier" ]; then
  [ $# -ge 2 ] || { echo "--tier needs a value" >&2; exit 2; }
  tier=$2
  shift 2
  if [ "${1:-}" = "--gate" ]; then
    [ $# -ge 2 ] || { echo "--gate needs a value" >&2; exit 2; }
    gate=$2
    shift 2
  fi
  [ $# -eq 0 ] || { echo "unexpected arguments after --tier: $*" >&2; exit 2; }
  old="BENCH_${tier}.json"
  [ -f "$old" ] || { echo "no committed baseline $old" >&2; exit 2; }
  new=$(mktemp --suffix .json)
  fresh=$new
  echo "==> cargo run --release -q -p pba-runner --bin pba-run -- bench --tier $tier --out $new" >&2
  cargo run --release -q -p pba-runner --bin pba-run -- bench --tier "$tier" --out "$new" >/dev/null
elif [ $# -eq 2 ]; then
  old=$1
  new=$2
else
  echo "usage: $0 OLD.json NEW.json | $0 --tier TIER [--gate PCT]" >&2
  exit 2
fi
[ -f "$old" ] || { echo "no such file: $old" >&2; exit 2; }
[ -f "$new" ] || { echo "no such file: $new" >&2; exit 2; }

# Emit "key<TAB>balls_per_sec" rows: one per engine entry
# (protocol/executor) and one per stream entry (stream:policy/ingest).
rows() {
  sed 's/},{/}\n{/g' "$1" | awk '
    function field(s, k,   m) {
      m = match(s, "\"" k "\":\"[^\"]*\"")
      if (m == 0) return ""
      return substr(s, RSTART + length(k) + 4, RLENGTH - length(k) - 5)
    }
    function num(s, k,   m) {
      m = match(s, "\"" k "\":[-0-9.eE+]+")
      if (m == 0) return "-"
      return substr(s, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
    }
    {
      proto = field($0, "protocol"); ex = field($0, "executor")
      pol = field($0, "policy"); ing = field($0, "ingest")
      bps = num($0, "balls_per_sec")
      if (proto != "" && ex != "")
        printf "%s/%s\t%s\n", proto, ex, bps
      else if (pol != "" && ing != "")
        printf "stream:%s/%s\t%s\n", pol, ing, bps
    }
  '
}

# Emit "key<TAB>wire_bytes_per_wave" rows for cluster entries, keyed on
# (mode, wire, shards, n) so binary and JSON codecs diff independently.
wire_rows() {
  sed 's/},{/}\n{/g' "$1" | awk '
    function field(s, k,   m) {
      m = match(s, "\"" k "\":\"[^\"]*\"")
      if (m == 0) return ""
      return substr(s, RSTART + length(k) + 4, RLENGTH - length(k) - 5)
    }
    function num(s, k,   m) {
      m = match(s, "\"" k "\":[-0-9.eE+]+")
      if (m == 0) return ""
      return substr(s, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
    }
    {
      mode = field($0, "mode"); wire = field($0, "wire")
      bpw = num($0, "wire_bytes_per_wave")
      if (mode != "" && wire != "" && bpw != "")
        printf "cluster:%s/%s/s%s/n%s\t%s\n", \
          mode, wire, num($0, "shards"), num($0, "n"), bpw
    }
  '
}

tmp_old=$(mktemp)
tmp_new=$(mktemp)
trap 'rm -f "$tmp_old" "$tmp_new" ${fresh:+"$fresh"}' EXIT
rows "$old" >"$tmp_old"
rows "$new" >"$tmp_new"

printf '%-44s %14s %14s %10s\n' "entry (balls/s)" "old" "new" "delta"
awk -F'\t' -v gate="${gate:-}" '
  NR == FNR { ob[$1] = $2; next }
  {
    key = $1; nb = $2
    if (!(key in ob)) {
      printf "%-44s %14s %14.0f %10s\n", key, "-", nb, "new"
      next
    }
    seen[key] = 1
    if (ob[key] + 0 > 0) {
      delta = 100 * (nb - ob[key]) / ob[key]
      printf "%-44s %14.0f %14.0f %+9.1f%%\n", key, ob[key], nb, delta
      if (gate != "" && delta < -(gate + 0)) {
        printf "REGRESSION: %s dropped %.1f%% (gate %s%%)\n", key, -delta, gate
        bad = 1
      }
    } else
      printf "%-44s %14.0f %14.0f %10s\n", key, ob[key], nb, "-"
  }
  END {
    for (k in ob)
      if (!(k in seen))
        printf "%-44s %14.0f %14s %10s\n", k, ob[k], "-", "gone"
    exit bad
  }
' "$tmp_old" "$tmp_new"

# Byte-volume table: informational only (wire bytes are deterministic,
# so deltas here mean the codec or the conversation changed, not noise —
# but they are not a throughput regression, hence never gated).
wire_rows "$old" >"$tmp_old"
wire_rows "$new" >"$tmp_new"
if [ -s "$tmp_old" ] || [ -s "$tmp_new" ]; then
  echo
  printf '%-44s %14s %14s %10s\n' "entry (wire bytes/wave)" "old" "new" "delta"
  # FILENAME (not NR == FNR): either side may be empty when the
  # baseline predates the wire keys.
  awk -F'\t' '
    FILENAME == ARGV[1] { ob[$1] = $2; next }
    {
      key = $1; nb = $2
      if (!(key in ob)) {
        printf "%-44s %14s %14.0f %10s\n", key, "-", nb, "new"
        next
      }
      seen[key] = 1
      if (ob[key] + 0 > 0)
        printf "%-44s %14.0f %14.0f %+9.1f%%\n", key, ob[key], nb, \
          100 * (nb - ob[key]) / ob[key]
      else
        printf "%-44s %14.0f %14.0f %10s\n", key, ob[key], nb, "-"
    }
    END {
      for (k in ob)
        if (!(k in seen))
          printf "%-44s %14.0f %14s %10s\n", k, ob[k], "-", "gone"
    }
  ' "$tmp_old" "$tmp_new"
fi
