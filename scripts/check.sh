#!/usr/bin/env bash
# Full local gate: every build surface the workspace supports must stay
# green — formatting, clippy lints (as errors), the default
# zero-dependency build, the test suite, the no-default-features build,
# and the serde-feature build (which compiles the cfg_attr derive sites
# against the vendored no-op serde stub).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
# The two unsafe-hygiene lints are also workspace-level denials (see the
# root Cargo.toml [workspace.lints]); repeating them here keeps the gate
# explicit even if a crate opts out of the shared lint table.
run cargo clippy --workspace --all-targets -- -D warnings \
    -D unsafe_op_in_unsafe_fn -D clippy::undocumented-unsafe-blocks
run cargo build --release
run cargo test -q --workspace
run cargo test -q --test chaos --test golden_loads
# Differential fuzzer: fixed-seed corpus + explorer, serial vs pool
# bit-identity with the in-engine invariant checker armed. The corpus
# replay covers the (k,d)-grid and retry-cap axes of the protocol
# families alongside the legacy registry axis.
run cargo test -q --test fuzz_differential
# Statistical conformance oracles at CI scale: exits nonzero if any
# paper claim flips to REFUTED (see EXPERIMENTS.md "Oracle" column).
run cargo run --release -q -p pba-runner --bin pba-run -- verify --scale ci
# The two protocol-family oracles once more through the claim-subset
# path (distinct argument-parsing surface from the run-everything call
# above; their negative controls live in verify_cli.rs).
run cargo run --release -q -p pba-runner --bin pba-run -- \
    verify e24-kd-load e25-retries --scale ci
# Throughput gate: fresh small-tier bench vs the committed baseline.
# The 60% allowance is deliberately loose — shared single-core runners
# are noisy — so only order-of-magnitude regressions trip it. Medium+
# tiers stay manual (scripts/bench_diff.sh --tier large).
run scripts/bench_diff.sh --tier small --gate 60
# Cluster smoke gate: 2- and 4-shard runs over real worker processes
# must be bit-identical to the single-process engine on a pinned seed,
# and a kill-a-shard chaos run must survive with the dead shard
# reported. The test suite asserts the same thing from inside cargo;
# this exercises the shipping binary spawning itself as `shard-worker`.
PBA=target/release/pba-run
outcome() { "$@" | grep -E '^(rounds|placed|max load|messages):'; }
echo "==> cluster smoke: transport x codec bit-identity matrix (seed 11)"
want=$(outcome "$PBA" protocol collision --m 65536 --n 4096 --seed 11)
for shards in 2 4; do
    for cell in "" "--wire json" "--socket" "--socket --wire json"; do
        # shellcheck disable=SC2086  # $cell is a flag list, splitting wanted
        got=$(outcome "$PBA" cluster protocol collision \
            --m 65536 --n 4096 --seed 11 --shards "$shards" $cell)
        if [ "$got" != "$want" ]; then
            echo "cluster --shards $shards ${cell:-(pipe/binary)} diverged from the single-process run:" >&2
            diff <(echo "$want") <(echo "$got") >&2 || true
            exit 1
        fi
    done
done
echo "==> cluster smoke: kill-a-shard chaos"
# Capture to a file instead of piping into grep -q: quitting grep closes
# the pipe while pba-run is still printing, and the EPIPE panic (exit
# 101) made this gate fail at random under pipefail.
kill_smoke=$(mktemp /tmp/pba_kill_smoke.XXXXXX)
"$PBA" cluster stream --n 256 --batch n --batches 6 --shards 4 \
    --kill 1@2 --seed 11 >"$kill_smoke"
grep -q 'shard 1 killed before batch 2' "$kill_smoke"
rm -f "$kill_smoke"
# Service smoke gate: a replay interrupted by a snapshot and finished
# from the restored state must land on exactly the final allocator
# state of the uninterrupted replay (the pinned guarantee of
# tests/service.rs, exercised here through the shipping binary and the
# on-disk snapshot file), and the JSONL trace must carry one "service"
# event per checkpoint window.
echo "==> serve smoke: snapshot/restore bit-identity (seed 11)"
snap=$(mktemp /tmp/pba_serve_snap.XXXXXX)
serve_trace=$(mktemp /tmp/pba_serve_trace.XXXXXX)
want=$("$PBA" serve --replay --n 256 --batch 2n --batches 8 --workload zipf \
    --churn 0.4 --checkpoint-every 2 --seed 11 | grep '^resident:')
"$PBA" serve --replay --n 256 --batch 2n --batches 8 --workload zipf \
    --churn 0.4 --checkpoint-every 2 --seed 11 \
    --snapshot-at 4 --snapshot "$snap" --trace "$serve_trace" >/dev/null
got=$("$PBA" serve --replay --restore "$snap" --batch 2n --batches 4 \
    --workload zipf --churn 0.4 --checkpoint-every 2 | grep '^resident:')
if [ "$got" != "$want" ]; then
    echo "restored serve replay diverged from the uninterrupted run:" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    exit 1
fi
services=$(grep -c '"event":"service"' "$serve_trace")
if [ "$services" -ne 4 ]; then
    echo "expected 4 service trace events (8 batches / checkpoint 2), got $services" >&2
    exit 1
fi
rm -f "$snap" "$serve_trace"
# Socket ingestion smoke: real traffic through `serve --listen` over a
# unix socket must land on exactly the local replay's resident line.
echo "==> serve smoke: socket listen/send bit-identity (seed 11)"
sock=$(mktemp -u /tmp/pba_serve_sock.XXXXXX)
want=$("$PBA" serve --replay --n 256 --batch n --batches 5 --seed 11 \
    | grep '^resident:')
"$PBA" serve --listen "$sock" --n 256 --seed 11 >/tmp/pba_serve_listen.$$ &
listen_pid=$!
for _ in $(seq 1 250); do
    [ -S "$sock" ] && break
    sleep 0.02
done
"$PBA" serve --send "$sock" --n 256 --batch n --batches 5 --seed 11 >/dev/null
wait "$listen_pid"
got=$(grep '^resident:' /tmp/pba_serve_listen.$$)
rm -f /tmp/pba_serve_listen.$$
if [ "$got" != "$want" ]; then
    echo "socket ingestion diverged from the local replay:" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    exit 1
fi
run cargo build --no-default-features
run cargo build --workspace --features serde

echo "==> all checks passed"
