//! Quickstart: allocate a million balls into a thousand bins with the
//! heavily loaded threshold protocol and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pba::prelude::*;

fn main() {
    // 2^20 balls into 2^10 bins: average load 1024.
    let spec = ProblemSpec::new(1 << 20, 1 << 10).expect("valid spec");

    // The paper's A_heavy: rising thresholds m/n − (m̃/n)^{2/3}, then an
    // adaptive light phase. Deterministic given the seed.
    let outcome = Simulator::new(spec, RunConfig::seeded(42))
        .run(ThresholdHeavy::new(spec))
        .expect("simulation succeeds");

    let stats = outcome.load_stats();
    println!("spec:       {spec}");
    println!("protocol:   {}", outcome.protocol);
    println!("rounds:     {}", outcome.rounds);
    println!(
        "max load:   {} (optimum {}, gap {})",
        stats.max(),
        spec.ceil_avg(),
        outcome.gap()
    );
    println!("load stats: {stats}");
    println!(
        "messages:   {} total, {:.2} sent per ball",
        outcome.messages.total(),
        outcome.messages.sent_by_balls() as f64 / spec.balls() as f64
    );

    // Compare with the naive baseline: same spec, one round of random
    // placement.
    let naive = Simulator::new(spec, RunConfig::seeded(42))
        .run(SingleChoice::new(spec))
        .expect("simulation succeeds");
    println!();
    println!(
        "single-choice baseline: gap {} — {}x worse than A_heavy in {} round",
        naive.gap(),
        naive.gap() / outcome.gap().max(1),
        naive.rounds
    );

    assert!(outcome.is_complete());
    assert!(outcome.gap() <= 2, "A_heavy guarantees m/n + O(1)");
}
