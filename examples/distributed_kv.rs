//! Scenario: placing key ranges onto storage shards.
//!
//! A distributed KV store splits its keyspace into 200k tablets and must
//! place them on 256 shards. Placement happens once; afterwards every
//! lookup needs the tablet → shard mapping. We track the full assignment
//! (`RunConfig::with_assignment`), verify it, and serve lookups from it —
//! demonstrating the `Allocation` API end to end.
//!
//! Two-choice-style placement keeps the largest shard within O(1) of the
//! mean, so capacity planning can provision shards at `mean + ε` instead
//! of `mean + √mean·ln n`.
//!
//! ```text
//! cargo run --release --example distributed_kv
//! ```

use pba::core::rng::{ball_stream, Rand64};
use pba::prelude::*;

fn main() {
    let shards = 256u32;
    let tablets = 200_000u64;
    let spec = ProblemSpec::new(tablets, shards).expect("valid spec");

    let config = RunConfig::seeded(2024).with_assignment(true);
    let outcome = Simulator::new(spec, config)
        .run(ThresholdHeavy::new(spec))
        .expect("placement succeeds");

    // Full structural verification: every tablet placed exactly once,
    // shard loads consistent with the assignment.
    let allocation = outcome.allocation();
    let defects = allocation.verify();
    assert!(defects.is_empty(), "placement defects: {defects:?}");

    let stats = allocation.load_stats();
    println!(
        "placed {tablets} tablets on {shards} shards in {} rounds",
        outcome.rounds
    );
    println!("shard loads: {stats}");
    println!(
        "capacity headroom needed: {} tablets/shard (vs ≈ {:.0} for random placement)",
        outcome.gap(),
        pba::analysis::predict::single_choice_gap(tablets, shards)
    );

    // Serve a workload of lookups from the assignment.
    let mut rng = ball_stream(99, 0, 0);
    let mut shard_hits = vec![0u64; shards as usize];
    let lookups = 1_000_000u64;
    for _ in 0..lookups {
        let tablet = rng.below_u64(tablets);
        let shard = allocation.bin_of(tablet).expect("assignment tracked");
        shard_hits[shard as usize] += 1;
    }
    let hottest = shard_hits.iter().copied().max().unwrap();
    let mean = lookups as f64 / shards as f64;
    println!(
        "served {lookups} uniform lookups: hottest shard {hottest} hits ({:.2}x mean)",
        hottest as f64 / mean
    );

    // Balanced placement ⇒ balanced uniform-lookup traffic (within
    // sampling noise).
    assert!(
        (hottest as f64) < mean * 1.25,
        "lookup traffic should be near-balanced"
    );
}
