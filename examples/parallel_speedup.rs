//! Engine scalability: the same deterministic simulation, one thread vs
//! the data-parallel executor.
//!
//! Both executors produce bit-identical results (same loads, same round
//! count); the parallel one splits the gather / count / grant / resolve
//! passes across the pool. Expect useful speedups once rounds move
//! millions of balls.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use std::time::Instant;

use pba::prelude::*;

fn time_run(spec: ProblemSpec, exec: ExecutorKind) -> (RunOutcome, f64) {
    let cfg = RunConfig::seeded(123).with_executor(exec).with_trace(false);
    let started = Instant::now();
    let out = Simulator::new(spec, cfg)
        .run(ThresholdHeavy::new(spec))
        .unwrap();
    (out, started.elapsed().as_secs_f64())
}

fn main() {
    let spec = ProblemSpec::new(1 << 24, 1 << 12).expect("valid spec"); // 16M balls
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("workload: {spec}, protocol threshold-heavy");
    println!("machine:  {cores} hardware thread(s) — speedups require > 1\n");

    let (seq, t_seq) = time_run(spec, ExecutorKind::Sequential);
    println!(
        "sequential:       {t_seq:>7.3}s  ({} rounds, gap {})",
        seq.rounds,
        seq.gap()
    );

    for lanes in [2usize, 4, 8] {
        let (par, t_par) = time_run(spec, ExecutorKind::ParallelWith(lanes));
        assert_eq!(par.loads, seq.loads, "executors must agree bit-for-bit");
        assert_eq!(par.rounds, seq.rounds);
        println!(
            "parallel {lanes:>2} lanes: {t_par:>7.3}s  (speedup {:.2}x, identical result)",
            t_seq / t_par
        );
    }

    println!("\nthe parallel executor reproduces the sequential result exactly:");
    println!("gather uses counter-based per-ball RNG streams, and acceptance is");
    println!("resolved by deterministic arrival ranks (two-pass parallel counting).");
}
