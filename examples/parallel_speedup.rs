//! Engine scalability: the same deterministic simulation, one thread vs
//! the data-parallel executor — measured by the engine's own
//! observability layer rather than external stopwatches.
//!
//! Both executors produce bit-identical results (same loads, same round
//! count); the parallel one splits the gather / count / grant / resolve
//! passes across the pool. An [`EngineMetrics`] sink attached via
//! `RunConfig::with_metrics` reports where each round's wall clock went
//! and how busy the pool lanes were. Expect useful speedups once rounds
//! move millions of balls.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use std::sync::Arc;

use pba::prelude::*;

fn time_run(spec: ProblemSpec, cfg: RunConfig) -> (RunOutcome, MetricsReport) {
    let metrics = Arc::new(EngineMetrics::new());
    let out = Simulator::new(spec, cfg.with_trace(false).with_metrics(metrics.clone()))
        .run(ThresholdHeavy::new(spec))
        .unwrap();
    (out, metrics.report())
}

fn phase_split(report: &MetricsReport) -> String {
    Phase::ALL
        .iter()
        .map(|&p| format!("{} {:.0}%", p.name(), 100.0 * report.phase_fraction(p)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let spec = ProblemSpec::new(1 << 24, 1 << 12).expect("valid spec"); // 16M balls
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("workload: {spec}, protocol threshold-heavy");
    println!("machine:  {cores} hardware thread(s) — speedups require > 1\n");

    let (seq, seq_report) = time_run(spec, RunConfig::seeded(123).sequential());
    let t_seq = seq_report.run_nanos as f64 / 1e9;
    println!(
        "sequential:       {t_seq:>7.3}s  ({} rounds, gap {}, {:.1}M balls/s)",
        seq.rounds,
        seq.gap(),
        seq_report.balls_per_sec() / 1e6,
    );
    println!("  phases: {}", phase_split(&seq_report));

    for lanes in [2usize, 4, 8] {
        let (par, report) = time_run(spec, RunConfig::seeded(123).parallel_with(lanes));
        assert_eq!(par.loads, seq.loads, "executors must agree bit-for-bit");
        assert_eq!(par.rounds, seq.rounds);
        let t_par = report.run_nanos as f64 / 1e9;
        println!(
            "parallel {lanes:>2} lanes: {t_par:>7.3}s  (speedup {:.2}x, identical result)",
            t_seq / t_par
        );
        println!("  phases: {}", phase_split(&report));
        if let Some(pool) = &report.pool {
            let busy = pool.total_busy_nanos() as f64 / 1e9;
            println!(
                "  pool:   {} jobs, {} tasks, lanes busy {busy:.3}s total \
                 ({:.0}% of {lanes} lanes x wall)",
                pool.jobs,
                pool.tasks,
                100.0 * busy / (t_par * lanes as f64),
            );
        }
    }

    println!("\nthe parallel executor reproduces the sequential result exactly:");
    println!("gather uses counter-based per-ball RNG streams, and acceptance is");
    println!("resolved by deterministic arrival ranks (two-pass parallel counting).");
}
