//! The communication-rounds vs load-quality trade-off, across the
//! protocol families — the conceptual map of the two papers in one
//! table.
//!
//! For `m = n` (the classic setting) we sweep the protocols from zero
//! coordination to `log log n` rounds and print where each lands;
//! for `m = 1024·n` (heavily loaded) we do the same. The shape to see:
//! each extra round of coordination buys a large drop in the gap, until
//! the `m/n + O(1)` floor.
//!
//! ```text
//! cargo run --release --example round_tradeoff
//! ```

use pba::core::mathutil::log_log2;
use pba::prelude::*;

fn row(label: &str, out: &RunOutcome) {
    println!(
        "{:<28} {:>6} {:>8} {:>14.2}",
        label,
        out.rounds,
        out.gap(),
        out.messages.sent_by_balls() as f64 / out.spec.balls() as f64
    );
}

fn main() {
    let n = 1u32 << 14;

    println!(
        "=== balanced case: m = n = {n} (log2log2 n = {:.1}) ===",
        log_log2(n as f64)
    );
    println!(
        "{:<28} {:>6} {:>8} {:>14}",
        "protocol", "rounds", "gap", "ball msgs/ball"
    );
    let spec = ProblemSpec::new(n as u64, n).unwrap();
    let sim = |seed| Simulator::new(spec, RunConfig::seeded(seed));

    row(
        "single-choice (0 rounds*)",
        &sim(1).run(SingleChoice::new(spec)).unwrap(),
    );
    for r in [1, 2, 4] {
        let out = sim(1).run(AdlerGreedy::new(spec, 2, r)).unwrap();
        row(&format!("adler-greedy r={r}"), &out);
    }
    row(
        "collision c=3 d=2",
        &sim(1).run(Collision::with_params(spec, 2, 3)).unwrap(),
    );
    row(
        "collision c=2 d=2",
        &sim(1).run(Collision::new(spec)).unwrap(),
    );
    row("a-light", &sim(1).run(ALight::new(spec, 2)).unwrap());
    row("asymmetric", &sim(1).run(Asymmetric::new(spec)).unwrap());

    println!();
    let ratio = 1u64 << 10;
    let spec_h = ProblemSpec::new(ratio * n as u64, n).unwrap();
    println!("=== heavily loaded: m/n = {ratio}, n = {n} ===");
    println!(
        "{:<28} {:>6} {:>8} {:>14}",
        "protocol", "rounds", "gap", "ball msgs/ball"
    );
    let sim_h = |seed| Simulator::new(spec_h, RunConfig::seeded(seed));

    row(
        "single-choice",
        &sim_h(1).run(SingleChoice::new(spec_h)).unwrap(),
    );
    row(
        "stemann-heavy (O(m/n))",
        &sim_h(1).run(StemannHeavy::new(spec_h)).unwrap(),
    );
    row(
        "fixed-threshold slack 2",
        &sim_h(1).run(FixedThreshold::new(spec_h, 2)).unwrap(),
    );
    row(
        "threshold-heavy (A_heavy)",
        &sim_h(1).run(ThresholdHeavy::new(spec_h)).unwrap(),
    );
    row(
        "asymmetric",
        &sim_h(1).run(Asymmetric::new(spec_h)).unwrap(),
    );

    println!();
    println!("*single-choice has no coordination rounds; the engine bills the send+commit");
    println!(" exchange as one round. fixed-threshold shows the Ω(log n)-round trap the");
    println!(" paper's undershooting thresholds avoid at identical final load.");
}
