//! Scenario: dispatching a burst of requests to a server fleet.
//!
//! A front-end must spread 500k incoming requests over 512 servers with
//! minimal coordination. Each protocol corresponds to a dispatch
//! architecture:
//!
//! * `single-choice` — stateless random routing (no coordination);
//! * `seq two-choice` — a single sequential dispatcher querying two
//!   server queue lengths per request (perfect information, no
//!   parallelism);
//! * `batched-two-choice` — a fleet of parallel dispatchers that refresh
//!   queue lengths once per batch;
//! * `threshold-heavy` / `asymmetric` — the paper's round-synchronous
//!   protocols, where *requests themselves* negotiate with servers in a
//!   few synchronous rounds.
//!
//! The table prints the worst server backlog (max load) plus the rounds
//! of coordination and message volume each architecture pays.
//!
//! ```text
//! cargo run --release --example load_balancer
//! ```

use pba::analysis::predict::single_choice_gap;
use pba::core::LoadStats;
use pba::prelude::*;
use pba::protocols::seq::GreedyD;

struct Row {
    architecture: &'static str,
    max_backlog: u32,
    gap: u32,
    rounds: String,
    messages: String,
}

fn main() {
    let servers = 512u32;
    let requests = 500_000u64;
    let spec = ProblemSpec::new(requests, servers).expect("valid spec");
    let seed = 7;
    let mut rows: Vec<Row> = Vec::new();

    let run = |p: &str| -> RunOutcome {
        pba::protocols::run_by_name(p, spec, RunConfig::seeded(seed))
            .expect("known protocol")
            .expect("run succeeds")
    };

    for name in [
        "single-choice",
        "batched-two-choice",
        "threshold-heavy",
        "asymmetric",
    ] {
        let out = run(name);
        rows.push(Row {
            architecture: name,
            max_backlog: out.max_load(),
            gap: out.gap(),
            rounds: out.rounds.to_string(),
            messages: format!(
                "{:.2}/req",
                out.messages.sent_by_balls() as f64 / requests as f64
            ),
        });
    }

    // Sequential two-choice: a different model (central dispatcher), so
    // run it directly.
    let loads = GreedyD::two_choice(spec).run(seed);
    let stats = LoadStats::from_loads(&loads);
    rows.push(Row {
        architecture: "seq two-choice (central)",
        max_backlog: stats.max(),
        gap: stats.gap(),
        rounds: "n/a".into(),
        messages: "2/req".into(),
    });

    println!(
        "dispatching {requests} requests over {servers} servers (avg {}):\n",
        spec.floor_avg()
    );
    println!(
        "{:<26} {:>11} {:>5} {:>7} {:>10}",
        "architecture", "max backlog", "gap", "rounds", "messages"
    );
    for r in &rows {
        println!(
            "{:<26} {:>11} {:>5} {:>7} {:>10}",
            r.architecture, r.max_backlog, r.gap, r.rounds, r.messages
        );
    }

    println!(
        "\ntheory: random routing pays ≈ √(2·(m/n)·ln n) ≈ {:.0} extra backlog; \
         the threshold protocol pays O(1).",
        single_choice_gap(requests, servers)
    );

    // The whole point of the paper, as an assertion:
    let naive_gap = rows[0].gap;
    let heavy_gap = rows
        .iter()
        .find(|r| r.architecture == "threshold-heavy")
        .unwrap()
        .gap;
    assert!(
        heavy_gap * 10 < naive_gap,
        "coordination must beat random routing decisively"
    );
}
