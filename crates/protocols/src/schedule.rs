//! The heavy-case undershoot threshold schedule, factored out of
//! [`ThresholdHeavy`](crate::ThresholdHeavy) so other consumers (the
//! `pba-stream` threshold placement policy) can drive the same recurrence.
//!
//! The heavily loaded paper sets the cumulative round-`i` threshold below
//! the running average on purpose:
//!
//! ```text
//! T_i = avg − (m̃_i/n)^γ,     m̃_{i+1}/n = (m̃_i/n)^γ      (paper: γ = 2/3)
//! ```
//!
//! The undershoot keeps every bin saturated w.h.p. (Claim 1), so the
//! unallocated mass `m̃` contracts doubly exponentially and falls below
//! `switch_ratio · n` in `O(log log(m/n))` steps, at which point the
//! caller switches to a light finishing phase.

use pba_core::mathutil::f64_to_u64_floor;

/// The rising-threshold recurrence of the heavily loaded paper.
///
/// One instance tracks the unallocated-mass estimate `m̃` across steps
/// (rounds in the one-shot protocol, batches in the streaming policy).
/// Per step the caller asks for [`threshold`](Self::threshold) against the
/// current average load and then calls [`advance`](Self::advance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UndershootSchedule {
    bins: u32,
    gamma: f64,
    switch_ratio: f64,
    m_tilde: f64,
}

impl UndershootSchedule {
    /// Paper parameters: `γ = 2/3`, light switch at `m̃ ≤ 2n`.
    pub fn new(bins: u32, initial_mass: f64) -> Self {
        Self::with_gamma(bins, initial_mass, 2.0 / 3.0)
    }

    /// Ablation constructor with undershoot exponent `γ ∈ (0, 1)`.
    pub fn with_gamma(bins: u32, initial_mass: f64, gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "gamma must be in (0,1), got {gamma}"
        );
        assert!(bins > 0, "schedule needs at least one bin");
        Self {
            bins,
            gamma,
            switch_ratio: 2.0,
            m_tilde: initial_mass,
        }
    }

    /// The undershoot exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Current estimate ratio `m̃ / n`.
    pub fn ratio(&self) -> f64 {
        self.m_tilde / self.bins as f64
    }

    /// True once `m̃ ≤ switch_ratio · n`: the recurrence has contracted to
    /// the light regime and the caller should stop undershooting.
    pub fn exhausted(&self) -> bool {
        self.ratio() <= self.switch_ratio
    }

    /// The cumulative threshold `⌊avg − (m̃/n)^γ⌋` for the current step.
    ///
    /// `avg` is the relevant average load: `m/n` in the one-shot protocol,
    /// the projected post-batch average in the streaming policy.
    pub fn threshold(&self, avg: f64) -> u64 {
        f64_to_u64_floor(avg - self.ratio().powf(self.gamma))
    }

    /// Apply one step of the recurrence: `m̃ ← n · (m̃/n)^γ`.
    pub fn advance(&mut self) {
        let n = self.bins as f64;
        self.m_tilde = n * self.ratio().powf(self.gamma);
    }

    /// Reset the unallocated-mass estimate (streaming sessions restart the
    /// contraction when a burst raises the resident mass again).
    pub fn reset_mass(&mut self, mass: f64) {
        self.m_tilde = mass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracts_doubly_exponentially() {
        let n = 1u32 << 10;
        let mut s = UndershootSchedule::new(n, (n as f64) * 1024.0);
        let mut steps = 0;
        while !s.exhausted() {
            s.advance();
            steps += 1;
            assert!(steps < 64, "schedule failed to contract");
        }
        // log log 1024 ≈ 3.3; the recurrence needs O(log log ratio) steps.
        assert!(steps <= 16, "took {steps} steps");
    }

    #[test]
    fn threshold_undershoots_average() {
        let n = 1u32 << 8;
        let s = UndershootSchedule::new(n, (n as f64) * 64.0);
        let avg = 64.0;
        let t = s.threshold(avg);
        assert!(t < avg as u64, "threshold {t} must undershoot avg {avg}");
    }

    #[test]
    fn matches_inline_recurrence() {
        // Bit-identical to the arithmetic previously inlined in
        // ThresholdHeavy: ratio → powf → floor, then m̃ ← n·ratio^γ.
        let n = 1u32 << 6;
        let m = (n as u64) << 8;
        let gamma = 2.0 / 3.0;
        let mut s = UndershootSchedule::with_gamma(n, m as f64, gamma);
        let mut m_tilde = m as f64;
        let avg = m as f64 / n as f64;
        for _ in 0..8 {
            let ratio = m_tilde / n as f64;
            let expect = f64_to_u64_floor(avg - ratio.powf(gamma));
            assert_eq!(s.threshold(avg), expect);
            m_tilde = n as f64 * ratio.powf(gamma);
            s.advance();
            assert_eq!(s.ratio(), m_tilde / n as f64);
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_one() {
        let _ = UndershootSchedule::with_gamma(8, 64.0, 1.0);
    }
}
