//! The heavy-case undershoot threshold schedule, factored out of
//! [`ThresholdHeavy`](crate::ThresholdHeavy) so other consumers (the
//! `pba-stream` threshold placement policy) can drive the same recurrence.
//!
//! The heavily loaded paper sets the cumulative round-`i` threshold below
//! the running average on purpose:
//!
//! ```text
//! T_i = avg − (m̃_i/n)^γ,     m̃_{i+1}/n = (m̃_i/n)^γ      (paper: γ = 2/3)
//! ```
//!
//! The undershoot keeps every bin saturated w.h.p. (Claim 1), so the
//! unallocated mass `m̃` contracts doubly exponentially and falls below
//! `switch_ratio · n` in `O(log log(m/n))` steps, at which point the
//! caller switches to a light finishing phase.

use pba_core::mathutil::f64_to_u64_floor;

/// The rising-threshold recurrence of the heavily loaded paper.
///
/// One instance tracks the unallocated-mass estimate `m̃` across steps
/// (rounds in the one-shot protocol, batches in the streaming policy).
/// Per step the caller asks for [`threshold`](Self::threshold) against the
/// current average load and then calls [`advance`](Self::advance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UndershootSchedule {
    bins: u32,
    gamma: f64,
    switch_ratio: f64,
    m_tilde: f64,
}

impl UndershootSchedule {
    /// Paper parameters: `γ = 2/3`, light switch at `m̃ ≤ 2n`.
    pub fn new(bins: u32, initial_mass: f64) -> Self {
        Self::with_gamma(bins, initial_mass, 2.0 / 3.0)
    }

    /// Ablation constructor with undershoot exponent `γ ∈ (0, 1)`.
    pub fn with_gamma(bins: u32, initial_mass: f64, gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "gamma must be in (0,1), got {gamma}"
        );
        assert!(bins > 0, "schedule needs at least one bin");
        Self {
            bins,
            gamma,
            switch_ratio: 2.0,
            m_tilde: initial_mass,
        }
    }

    /// The undershoot exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of bins the schedule contracts over.
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// The current unallocated-mass estimate `m̃`, exactly as stored.
    ///
    /// State snapshots persist this instead of [`ratio`](Self::ratio):
    /// `ratio() * n` does not round-trip in f64 for arbitrary `n`, and a
    /// restored schedule must continue the recurrence *bit-identically*.
    pub fn mass(&self) -> f64 {
        self.m_tilde
    }

    /// Current estimate ratio `m̃ / n`.
    pub fn ratio(&self) -> f64 {
        self.m_tilde / self.bins as f64
    }

    /// True once `m̃ ≤ switch_ratio · n`: the recurrence has contracted to
    /// the light regime and the caller should stop undershooting.
    pub fn exhausted(&self) -> bool {
        self.ratio() <= self.switch_ratio
    }

    /// The cumulative threshold `⌊avg − (m̃/n)^γ⌋` for the current step.
    ///
    /// `avg` is the relevant average load: `m/n` in the one-shot protocol,
    /// the projected post-batch average in the streaming policy.
    pub fn threshold(&self, avg: f64) -> u64 {
        f64_to_u64_floor(avg - self.ratio().powf(self.gamma))
    }

    /// Apply one step of the recurrence: `m̃ ← n · (m̃/n)^γ`.
    pub fn advance(&mut self) {
        let n = self.bins as f64;
        self.m_tilde = n * self.ratio().powf(self.gamma);
    }

    /// Reset the unallocated-mass estimate (streaming sessions restart the
    /// contraction when a burst raises the resident mass again).
    pub fn reset_mass(&mut self, mass: f64) {
        self.m_tilde = mass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracts_doubly_exponentially() {
        let n = 1u32 << 10;
        let mut s = UndershootSchedule::new(n, (n as f64) * 1024.0);
        let mut steps = 0;
        while !s.exhausted() {
            s.advance();
            steps += 1;
            assert!(steps < 64, "schedule failed to contract");
        }
        // log log 1024 ≈ 3.3; the recurrence needs O(log log ratio) steps.
        assert!(steps <= 16, "took {steps} steps");
    }

    #[test]
    fn threshold_undershoots_average() {
        let n = 1u32 << 8;
        let s = UndershootSchedule::new(n, (n as f64) * 64.0);
        let avg = 64.0;
        let t = s.threshold(avg);
        assert!(t < avg as u64, "threshold {t} must undershoot avg {avg}");
    }

    #[test]
    fn matches_inline_recurrence() {
        // Bit-identical to the arithmetic previously inlined in
        // ThresholdHeavy: ratio → powf → floor, then m̃ ← n·ratio^γ.
        let n = 1u32 << 6;
        let m = (n as u64) << 8;
        let gamma = 2.0 / 3.0;
        let mut s = UndershootSchedule::with_gamma(n, m as f64, gamma);
        let mut m_tilde = m as f64;
        let avg = m as f64 / n as f64;
        for _ in 0..8 {
            let ratio = m_tilde / n as f64;
            let expect = f64_to_u64_floor(avg - ratio.powf(gamma));
            assert_eq!(s.threshold(avg), expect);
            m_tilde = n as f64 * ratio.powf(gamma);
            s.advance();
            assert_eq!(s.ratio(), m_tilde / n as f64);
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_one() {
        let _ = UndershootSchedule::with_gamma(8, 64.0, 1.0);
    }

    /// `(bins, mass, gamma)` is the schedule's complete state: a copy
    /// reconstructed from the accessors continues bit-identically — the
    /// contract the streaming snapshot codec relies on. `n = 100` is
    /// deliberately not a power of two, where a `ratio()`-based
    /// round-trip would drift.
    #[test]
    fn accessor_roundtrip_is_bit_identical() {
        let mut a = UndershootSchedule::with_gamma(100, 7777.7, 0.61);
        a.advance();
        a.advance();
        let mut b = UndershootSchedule::with_gamma(a.bins(), a.mass(), a.gamma());
        assert_eq!(a, b);
        for _ in 0..6 {
            a.advance();
            b.advance();
            assert_eq!(a.mass().to_bits(), b.mass().to_bits());
            assert_eq!(a.threshold(777.7), b.threshold(777.7));
        }
    }

    // Property-style cases below use the workspace's hand-rolled seeded
    // generator (same style as `tests/properties.rs`): a fixed master
    // seed per property, so failures name a replayable case.

    use pba_core::rng::{Rand64, SplitMix64};

    const CASES: u64 = 64;

    fn case_rng(tag: u64, case: u64) -> SplitMix64 {
        SplitMix64::new(0x9e37_79b9_7f4a_7c15 ^ (tag << 32) ^ case)
    }

    /// A random heavy instance: `n ∈ [1, 4096]`, `m/n ∈ [4, 4096)`,
    /// `γ ∈ (0.2, 0.95)`.
    fn heavy_case(rng: &mut SplitMix64) -> (u32, f64, f64) {
        let n = 1 + rng.below(4096);
        let ratio = 4.0 + rng.unit_f64() * 4092.0;
        let gamma = 0.2 + rng.unit_f64() * 0.75;
        (n, ratio, gamma)
    }

    /// Thresholds rise monotonically along the contraction: each
    /// `advance` shrinks the undershoot term `(m̃/n)^γ`, so the cumulative
    /// threshold against a fixed average never falls — bins are never
    /// asked to give back capacity they already granted.
    #[test]
    fn property_thresholds_are_monotone_under_advance() {
        for case in 0..CASES {
            let mut rng = case_rng(11, case);
            let (n, ratio, gamma) = heavy_case(&mut rng);
            let mut s = UndershootSchedule::with_gamma(n, n as f64 * ratio, gamma);
            let mut prev = s.threshold(ratio);
            let mut steps = 0u32;
            while !s.exhausted() {
                s.advance();
                let t = s.threshold(ratio);
                assert!(
                    t >= prev,
                    "case {case} (n={n} ratio={ratio} gamma={gamma}): \
                     threshold fell {prev} → {t} at step {steps}"
                );
                prev = t;
                steps += 1;
                assert!(steps < 512, "case {case}: no contraction");
            }
        }
    }

    /// Conservation: the cumulative threshold never promises more than
    /// the instance holds (`n · T ≤ m`, i.e. `T ≤ avg`), and while the
    /// heavy phase is live the undershoot is strict (`T < avg`), at every
    /// step of the contraction.
    #[test]
    fn property_thresholds_conserve_total_mass() {
        for case in 0..CASES {
            let mut rng = case_rng(12, case);
            let (n, ratio, gamma) = heavy_case(&mut rng);
            let mut s = UndershootSchedule::with_gamma(n, n as f64 * ratio, gamma);
            loop {
                let t = s.threshold(ratio);
                assert!(
                    (t as f64) <= ratio,
                    "case {case} (n={n} ratio={ratio} gamma={gamma}): \
                     threshold {t} overshoots the average"
                );
                assert!(
                    (t as f64) < ratio || ratio == ratio.floor(),
                    "case {case}: undershoot vanished before exhaustion"
                );
                if s.exhausted() {
                    break;
                }
                s.advance();
            }
        }
    }

    /// Exhaustion is absorbing: once the estimate contracts into the
    /// light regime it never climbs back out under further `advance`
    /// calls (callers may keep stepping the schedule harmlessly).
    #[test]
    fn property_exhaustion_is_absorbing() {
        for case in 0..CASES {
            let mut rng = case_rng(13, case);
            let (n, ratio, gamma) = heavy_case(&mut rng);
            let mut s = UndershootSchedule::with_gamma(n, n as f64 * ratio, gamma);
            while !s.exhausted() {
                s.advance();
            }
            for step in 0..8 {
                s.advance();
                assert!(
                    s.exhausted(),
                    "case {case} (n={n} ratio={ratio} gamma={gamma}): \
                     un-exhausted after {step} extra steps (ratio {})",
                    s.ratio()
                );
            }
        }
    }
}
