//! Per-ball persistent choice state for non-adaptive protocols.
//!
//! Non-adaptive protocols (Stemann's collision protocol, ACMR98 GREEDY)
//! fix each ball's `d` random bins once and communicate only with those
//! bins for the rest of the run. The engine stores one `BallState` per
//! ball; this module provides a compact fixed-capacity representation.

use pba_core::rng::{Rand64, SplitMix64};

/// Maximum supported non-adaptive degree.
pub const MAX_DEGREE: usize = 8;

/// A ball's fixed set of bin choices (capacity [`MAX_DEGREE`]).
///
/// Starts uninitialized; [`FixedChoices::ensure`] draws the choices on
/// first use from the ball's round-0 stream, making them identical no
/// matter which round or executor first touches the ball.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedChoices {
    bins: [u32; MAX_DEGREE],
    len: u8,
    init: bool,
}

impl Default for FixedChoices {
    fn default() -> Self {
        Self {
            bins: [0; MAX_DEGREE],
            len: 0,
            init: false,
        }
    }
}

impl FixedChoices {
    /// Draw `d` choices uniformly (independently, with replacement *across
    /// retries*, but distinct within the set when `n ≥ d`) if not already
    /// drawn. Distinctness matches the standard presentation where a
    /// ball's `d` bins are distinct; for `n < d` duplicates are allowed.
    pub fn ensure(&mut self, d: usize, n: u32, rng: &mut SplitMix64) -> &[u32] {
        assert!(
            d <= MAX_DEGREE,
            "degree {d} exceeds MAX_DEGREE {MAX_DEGREE}"
        );
        assert!(d >= 1);
        if !self.init {
            let distinct_possible = (n as usize) >= d;
            let mut k = 0;
            let mut guard = 0;
            while k < d {
                let candidate = rng.below(n);
                let duplicate = self.bins[..k].contains(&candidate);
                guard += 1;
                if duplicate && distinct_possible && guard < 1000 {
                    continue;
                }
                self.bins[k] = candidate;
                k += 1;
            }
            self.len = d as u8;
            self.init = true;
        }
        &self.bins[..self.len as usize]
    }

    /// The drawn choices, if initialized.
    pub fn get(&self) -> Option<&[u32]> {
        self.init.then(|| &self.bins[..self.len as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::rng::ball_stream;

    #[test]
    fn draws_once_and_is_stable() {
        let mut c = FixedChoices::default();
        let mut rng1 = ball_stream(1, 0, 42);
        let first: Vec<u32> = c.ensure(3, 100, &mut rng1).to_vec();
        // Second call with a different rng must not redraw.
        let mut rng2 = ball_stream(9, 7, 7);
        let second: Vec<u32> = c.ensure(3, 100, &mut rng2).to_vec();
        assert_eq!(first, second);
        assert_eq!(c.get().unwrap(), &first[..]);
    }

    #[test]
    fn choices_are_distinct_when_possible() {
        for ball in 0..200u64 {
            let mut c = FixedChoices::default();
            let mut rng = ball_stream(3, 0, ball);
            let ch = c.ensure(4, 16, &mut rng).to_vec();
            let mut sorted = ch.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {ch:?}");
            assert!(ch.iter().all(|&b| b < 16));
        }
    }

    #[test]
    fn tiny_n_allows_duplicates() {
        let mut c = FixedChoices::default();
        let mut rng = ball_stream(1, 0, 0);
        let ch = c.ensure(4, 2, &mut rng);
        assert_eq!(ch.len(), 4);
        assert!(ch.iter().all(|&b| b < 2));
    }

    #[test]
    fn uninitialized_get_is_none() {
        let c = FixedChoices::default();
        assert!(c.get().is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DEGREE")]
    fn oversized_degree_panics() {
        let mut c = FixedChoices::default();
        let mut rng = ball_stream(1, 0, 0);
        c.ensure(9, 100, &mut rng);
    }
}
