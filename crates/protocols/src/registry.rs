//! Name-based protocol dispatch for the CLI and harness.

use pba_core::{ProblemSpec, Result, RunConfig, RunOutcome, Simulator};

use crate::{
    ALight, AdlerGreedy, Asymmetric, BatchedTwoChoice, Collision, FixedThreshold,
    ParallelTwoChoice, SingleChoice, StemannHeavy, ThresholdHeavy, TrivialRoundRobin,
};

/// All parallel protocol names accepted by [`run_by_name`].
pub fn protocol_names() -> &'static [&'static str] {
    &[
        "single-choice",
        "fixed-threshold",
        "parallel-two-choice",
        "threshold-heavy",
        "a-light",
        "collision",
        "stemann-heavy",
        "adler-greedy",
        "asymmetric",
        "trivial-round-robin",
        "batched-two-choice",
    ]
}

/// Run the named parallel protocol with default parameters.
///
/// Returns `None` for unknown names (callers print
/// [`protocol_names`]).
pub fn run_by_name(name: &str, spec: ProblemSpec, config: RunConfig) -> Option<Result<RunOutcome>> {
    let sim = Simulator::new(spec, config);
    Some(match name {
        "single-choice" => sim.run(SingleChoice::new(spec)),
        "fixed-threshold" => sim.run(FixedThreshold::new(spec, 2)),
        "parallel-two-choice" => sim.run(ParallelTwoChoice::new(spec, 2)),
        "threshold-heavy" => sim.run(ThresholdHeavy::new(spec)),
        "a-light" => sim.run(ALight::new(spec, 2)),
        "collision" => sim.run(Collision::with_params(
            spec,
            2,
            // Arrivals scale with d·m/n, so the collision bound must sit
            // above that for round one to make progress; 2⌈m/n⌉+4 keeps
            // the structural load cap at O(m/n).
            2 * spec.ceil_avg().saturating_add(2).min(u32::MAX / 2),
        )),
        "stemann-heavy" => sim.run(StemannHeavy::new(spec)),
        "adler-greedy" => sim.run(AdlerGreedy::new(spec, 2, 4)),
        "asymmetric" => sim.run(Asymmetric::new(spec)),
        "trivial-round-robin" => sim.run(TrivialRoundRobin::new(spec)),
        "batched-two-choice" => sim.run(BatchedTwoChoice::new(spec, (spec.bins() as u64).max(1))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_protocol_runs() {
        let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
        for &name in protocol_names() {
            let out = run_by_name(name, spec, RunConfig::seeded(1))
                .unwrap_or_else(|| panic!("{name} not dispatched"))
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(out.is_complete(), "{name} left {} balls", out.unallocated);
            assert_eq!(out.protocol, name, "name mismatch for {name}");
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        let spec = ProblemSpec::new(16, 4).unwrap();
        assert!(run_by_name("nope", spec, RunConfig::seeded(0)).is_none());
    }
}
