//! Name-based protocol dispatch for the CLI and harness.

use pba_core::{ProblemSpec, Result, RoundProtocol, RunConfig, RunOutcome, Simulator};

use crate::{
    ALight, AdlerGreedy, Asymmetric, BatchedTwoChoice, Collision, EstimatedAverage, FixedThreshold,
    KdChoice, ParallelTwoChoice, SingleChoice, StemannHeavy, ThresholdHeavy, TrivialRoundRobin,
};

/// All parallel protocol names accepted by [`run_by_name`].
pub fn protocol_names() -> &'static [&'static str] {
    &[
        "single-choice",
        "fixed-threshold",
        "parallel-two-choice",
        "threshold-heavy",
        "a-light",
        "collision",
        "stemann-heavy",
        "adler-greedy",
        "asymmetric",
        "trivial-round-robin",
        "batched-two-choice",
        "kd-choice",
        "kd-choice-36",
        "estimated-average",
    ]
}

/// Generic-method callback for name-based protocol construction.
///
/// [`visit_protocol`] looks a protocol up by registry name, constructs it
/// with the registry's default parameters, and hands the concrete value to
/// the visitor's generic [`visit`](ProtocolVisitor::visit) method. This
/// lets every consumer — the simulator front-end here, the cluster
/// orchestrator and its shard workers — build protocols from one
/// parameter source without a `Box<dyn RoundProtocol>` indirection (the
/// engine drives protocols by value through monomorphized kernels).
pub trait ProtocolVisitor {
    /// What the visit produces (a run outcome, a worker loop result, ...).
    type Output;

    /// Receive the concretely-typed protocol the registry built.
    fn visit<P: RoundProtocol + 'static>(self, protocol: P) -> Self::Output;
}

/// Construct the named protocol with registry-default parameters and pass
/// it to `visitor`.
///
/// Returns `None` for unknown names (callers print [`protocol_names`]).
/// This is the single source of truth for per-protocol default
/// parameters; [`run_by_name`] and the cluster orchestrator/worker both
/// dispatch through it so distributed runs construct bit-identical
/// protocol state.
pub fn visit_protocol<V: ProtocolVisitor>(
    name: &str,
    spec: ProblemSpec,
    visitor: V,
) -> Option<V::Output> {
    Some(match name {
        "single-choice" => visitor.visit(SingleChoice::new(spec)),
        "fixed-threshold" => visitor.visit(FixedThreshold::new(spec, 2)),
        "parallel-two-choice" => visitor.visit(ParallelTwoChoice::new(spec, 2)),
        "threshold-heavy" => visitor.visit(ThresholdHeavy::new(spec)),
        "a-light" => visitor.visit(ALight::new(spec, 2)),
        "collision" => visitor.visit(Collision::with_params(
            spec,
            2,
            // Arrivals scale with d·m/n, so the collision bound must sit
            // above that for round one to make progress; 2⌈m/n⌉+4 keeps
            // the structural load cap at O(m/n).
            2 * spec.ceil_avg().saturating_add(2).min(u32::MAX / 2),
        )),
        "stemann-heavy" => visitor.visit(StemannHeavy::new(spec)),
        "adler-greedy" => visitor.visit(AdlerGreedy::new(spec, 2, 4)),
        "asymmetric" => visitor.visit(Asymmetric::new(spec)),
        "trivial-round-robin" => visitor.visit(TrivialRoundRobin::new(spec)),
        "batched-two-choice" => {
            visitor.visit(BatchedTwoChoice::new(spec, (spec.bins() as u64).max(1)))
        }
        "kd-choice" => visitor.visit(KdChoice::with_params(spec, 2, 4)),
        "kd-choice-36" => visitor.visit(KdChoice::with_params(spec, 3, 6)),
        "estimated-average" => visitor.visit(EstimatedAverage::new(spec)),
        _ => return None,
    })
}

struct RunVisitor {
    sim: Simulator,
}

impl ProtocolVisitor for RunVisitor {
    type Output = Result<RunOutcome>;

    fn visit<P: RoundProtocol + 'static>(self, protocol: P) -> Self::Output {
        self.sim.run(protocol)
    }
}

/// Run the named parallel protocol with default parameters.
///
/// Returns `None` for unknown names (callers print
/// [`protocol_names`]).
pub fn run_by_name(name: &str, spec: ProblemSpec, config: RunConfig) -> Option<Result<RunOutcome>> {
    let sim = Simulator::new(spec, config);
    visit_protocol(name, spec, RunVisitor { sim })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_protocol_runs() {
        let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
        for &name in protocol_names() {
            let out = run_by_name(name, spec, RunConfig::seeded(1))
                .unwrap_or_else(|| panic!("{name} not dispatched"))
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(out.is_complete(), "{name} left {} balls", out.unallocated);
            assert_eq!(out.protocol, name, "name mismatch for {name}");
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        let spec = ProblemSpec::new(16, 4).unwrap();
        assert!(run_by_name("nope", spec, RunConfig::seeded(0)).is_none());
    }
}
