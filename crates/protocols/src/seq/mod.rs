//! Sequential (one ball at a time) baselines.
//!
//! These are the comparators the parallel papers position against: the
//! single-choice allocation, `d`-choice GREEDY of Azar et al. (whose
//! heavily loaded gap `m/n + O(log log n)` is the Berenbrink et al. result
//! the heavily loaded paper improves to `m/n + O(1)` in parallel),
//! Vöcking's Always-Go-Left, and the `(1+β)`-choice process.
//!
//! Sequential processes need no engine: each returns a load vector
//! directly (and optionally a per-ball assignment).

mod always_go_left;
mod greedy;
mod memory;
mod one_plus_beta;

pub use always_go_left::AlwaysGoLeft;
pub use greedy::GreedyD;
pub use memory::WithMemory;
pub use one_plus_beta::OnePlusBeta;

use pba_core::rng::{ball_stream, Rand64};
use pba_core::{Allocation, ProblemSpec};

/// Sequential single-choice: each ball joins a uniformly random bin.
///
/// Identical in distribution to the parallel
/// [`crate::SingleChoice`]; provided so sequential experiments avoid
/// engine overhead.
pub fn single_choice_loads(spec: ProblemSpec, seed: u64) -> Vec<u32> {
    let mut loads = vec![0u32; spec.bins() as usize];
    for ball in 0..spec.balls() {
        let mut rng = ball_stream(seed, 0, ball);
        loads[rng.below(spec.bins()) as usize] += 1;
    }
    loads
}

/// Wrap a sequential load vector as an [`Allocation`] (no assignment).
pub fn loads_to_allocation(spec: ProblemSpec, loads: Vec<u32>) -> Allocation {
    Allocation::new(spec, loads, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_choice_places_all_balls() {
        let spec = ProblemSpec::new(10_000, 64).unwrap();
        let loads = single_choice_loads(spec, 1);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 10_000);
        let alloc = loads_to_allocation(spec, loads);
        assert!(alloc.is_well_formed());
    }

    #[test]
    fn single_choice_is_seeded() {
        let spec = ProblemSpec::new(5_000, 32).unwrap();
        assert_eq!(single_choice_loads(spec, 9), single_choice_loads(spec, 9));
        assert_ne!(single_choice_loads(spec, 9), single_choice_loads(spec, 10));
    }
}
