//! Vöcking's Always-Go-Left process (\[Vöc03\]).
//!
//! The bins are split into `d` groups of `n/d`; each ball samples one
//! uniform bin from each group and joins the least loaded, breaking ties
//! toward the *leftmost* group. The asymmetry improves the balanced-case
//! gap from `ln ln n / ln d` to `ln ln n / (d·ln Φ_d)` — the paper's
//! "asymmetry helps" message, which the asymmetric superbin algorithm
//! echoes in the parallel setting.

use pba_core::rng::{ball_stream, Rand64};
use pba_core::ProblemSpec;

/// Configuration for Always-Go-Left with `d` groups.
#[derive(Debug, Clone, Copy)]
pub struct AlwaysGoLeft {
    spec: ProblemSpec,
    d: u32,
}

impl AlwaysGoLeft {
    /// Create with `d ≥ 2` groups; requires `n ≥ d`.
    pub fn new(spec: ProblemSpec, d: u32) -> Self {
        assert!(d >= 2, "Always-Go-Left needs d ≥ 2");
        assert!(spec.bins() >= d, "need at least d bins");
        Self { spec, d }
    }

    /// Run the process; returns final loads.
    pub fn run(&self, seed: u64) -> Vec<u32> {
        let n = self.spec.bins();
        let d = self.d;
        let group = n / d; // groups 0..d-1 have `group` bins; remainder joins the last group
        let mut loads = vec![0u32; n as usize];
        for ball in 0..self.spec.balls() {
            let mut rng = ball_stream(seed, 0, ball);
            let mut best: Option<u32> = None;
            for g in 0..d {
                let lo = g * group;
                let hi = if g == d - 1 { n } else { lo + group };
                let candidate = lo + rng.below(hi - lo);
                // Strict inequality = ties go to the earlier (leftmost) group.
                match best {
                    None => best = Some(candidate),
                    Some(b) if loads[candidate as usize] < loads[b as usize] => {
                        best = Some(candidate)
                    }
                    _ => {}
                }
            }
            loads[best.unwrap() as usize] += 1;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::LoadStats;

    #[test]
    fn places_all_balls() {
        let spec = ProblemSpec::new(20_000, 100).unwrap();
        let loads = AlwaysGoLeft::new(spec, 2).run(1);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 20_000);
    }

    #[test]
    fn comparable_or_better_than_greedy_two_choice() {
        let spec = ProblemSpec::new(1 << 16, 1 << 10).unwrap();
        let agl = LoadStats::from_loads(&AlwaysGoLeft::new(spec, 2).run(3)).gap();
        let greedy = LoadStats::from_loads(&crate::seq::GreedyD::new(spec, 2).run(3)).gap();
        // Theory says asymptotically better; at this scale allow a tie +1.
        assert!(agl <= greedy + 1, "agl={agl} greedy={greedy}");
    }

    #[test]
    fn uneven_group_sizes_handled() {
        // n = 10, d = 3 → groups of sizes 3, 3, 4.
        let spec = ProblemSpec::new(1000, 10).unwrap();
        let loads = AlwaysGoLeft::new(spec, 3).run(7);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 1000);
        // Every bin reachable: all groups were sampled.
        assert!(loads.iter().all(|&l| l > 0));
    }

    #[test]
    #[should_panic(expected = "d ≥ 2")]
    fn d1_rejected() {
        let spec = ProblemSpec::new(10, 4).unwrap();
        let _ = AlwaysGoLeft::new(spec, 1);
    }
}
