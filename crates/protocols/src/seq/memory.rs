//! Load balancing with memory (\[MPS02\], \[SP02\]).
//!
//! Each arriving ball samples **one** fresh uniform bin but also
//! remembers the least-loaded bin left over from the previous step; it
//! joins the lesser-loaded of the two and remembers the loser. Shah &
//! Prabhakar / Mitzenmacher, Prabhakar & Shah showed a memory slot is
//! asymptotically *better* than an extra fresh choice — included here as
//! the "memory beats randomness" comparator from the related-work
//! section.

use pba_core::rng::{ball_stream, Rand64};
use pba_core::ProblemSpec;

/// The 1-sample + 1-memory process.
#[derive(Debug, Clone, Copy)]
pub struct WithMemory {
    spec: ProblemSpec,
}

impl WithMemory {
    /// Create for `spec`.
    pub fn new(spec: ProblemSpec) -> Self {
        Self { spec }
    }

    /// Run the process; returns final loads.
    pub fn run(&self, seed: u64) -> Vec<u32> {
        let n = self.spec.bins();
        let mut loads = vec![0u32; n as usize];
        let mut remembered: Option<u32> = None;
        for ball in 0..self.spec.balls() {
            let mut rng = ball_stream(seed, 0, ball);
            let fresh = rng.below(n);
            let (target, loser) = match remembered {
                Some(mem) if loads[mem as usize] < loads[fresh as usize] => (mem, fresh),
                Some(mem) => (fresh, mem),
                None => (fresh, fresh),
            };
            loads[target as usize] += 1;
            // Remember the less useful bin of the pair — after the
            // placement, whichever of the two now has the smaller load.
            remembered = Some(if loads[target as usize] <= loads[loser as usize] {
                target
            } else {
                loser
            });
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::LoadStats;

    #[test]
    fn places_all_balls() {
        let spec = ProblemSpec::new(20_000, 128).unwrap();
        let loads = WithMemory::new(spec).run(1);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 20_000);
    }

    #[test]
    fn memory_beats_single_choice() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 7, n).unwrap();
        let mem = LoadStats::from_loads(&WithMemory::new(spec).run(5)).gap();
        let single = LoadStats::from_loads(&crate::seq::single_choice_loads(spec, 5)).gap();
        assert!(mem < single, "memory {mem} vs single {single}");
    }

    #[test]
    fn memory_competitive_with_two_choice() {
        // [MPS02]: memory is asymptotically at least as good; at finite
        // size allow a small constant slack.
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 7, n).unwrap();
        let mem = LoadStats::from_loads(&WithMemory::new(spec).run(7)).gap();
        let two = LoadStats::from_loads(&crate::seq::GreedyD::two_choice(spec).run(7)).gap();
        assert!(mem <= two + 3, "memory {mem} vs two-choice {two}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ProblemSpec::new(5000, 50).unwrap();
        assert_eq!(WithMemory::new(spec).run(3), WithMemory::new(spec).run(3));
        assert_ne!(WithMemory::new(spec).run(3), WithMemory::new(spec).run(4));
    }
}
