//! Sequential `d`-choice GREEDY (\[ABKU99\]).
//!
//! Balls arrive one at a time; each samples `d` uniform bins and joins the
//! least loaded (ties broken by the first sampled). For `m = n` the gap is
//! `ln ln n / ln d + O(1)`; for `m ≫ n` Berenbrink et al. \[BCSV06\] showed
//! the gap stays `O(log log n)`, *independent of m* — the benchmark the
//! parallel heavily loaded algorithm is measured against (E2).

use pba_core::rng::{ball_stream, Rand64};
use pba_core::ProblemSpec;

/// Configuration for sequential GREEDY\[d\].
#[derive(Debug, Clone, Copy)]
pub struct GreedyD {
    spec: ProblemSpec,
    d: u32,
}

impl GreedyD {
    /// GREEDY with `d ≥ 1` choices.
    pub fn new(spec: ProblemSpec, d: u32) -> Self {
        assert!(d >= 1, "d must be at least 1");
        Self { spec, d }
    }

    /// The classical two-choice process.
    pub fn two_choice(spec: ProblemSpec) -> Self {
        Self::new(spec, 2)
    }

    /// Number of choices.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Run the process; returns final loads.
    pub fn run(&self, seed: u64) -> Vec<u32> {
        let n = self.spec.bins();
        let mut loads = vec![0u32; n as usize];
        for ball in 0..self.spec.balls() {
            let mut rng = ball_stream(seed, 0, ball);
            let mut best = rng.below(n);
            for _ in 1..self.d {
                let candidate = rng.below(n);
                if loads[candidate as usize] < loads[best as usize] {
                    best = candidate;
                }
            }
            loads[best as usize] += 1;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_analysis::predict::two_choice_gap;
    use pba_core::LoadStats;

    #[test]
    fn places_all_balls() {
        let spec = ProblemSpec::new(50_000, 256).unwrap();
        let loads = GreedyD::two_choice(spec).run(3);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 50_000);
    }

    #[test]
    fn d1_equals_single_choice_distribution() {
        // GREEDY[1] with the same seed must equal single_choice_loads.
        let spec = ProblemSpec::new(10_000, 64).unwrap();
        let a = GreedyD::new(spec, 1).run(5);
        let b = crate::seq::single_choice_loads(spec, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn two_choice_beats_one_choice() {
        let spec = ProblemSpec::new(1 << 18, 1 << 10).unwrap(); // m/n = 256
        let one = LoadStats::from_loads(&GreedyD::new(spec, 1).run(7)).gap();
        let two = LoadStats::from_loads(&GreedyD::new(spec, 2).run(7)).gap();
        // One-choice gap scale ≈ √(2·256·ln 1024) ≈ 60; two-choice ≈ 3.
        assert!(two < one / 3, "one={one} two={two}");
    }

    #[test]
    fn heavy_gap_is_doubly_logarithmic_scale() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 9, n).unwrap(); // m/n = 512
        let gap = LoadStats::from_loads(&GreedyD::two_choice(spec).run(11)).gap();
        // [BCSV06]: gap ≈ log₂ log₂ n + O(1) ≈ 3.3 + O(1).
        let predicted = two_choice_gap(n);
        assert!(
            (gap as f64) <= predicted + 5.0,
            "gap {gap} far above predicted scale {predicted}"
        );
    }

    #[test]
    fn more_choices_no_worse() {
        let spec = ProblemSpec::new(1 << 16, 1 << 8).unwrap();
        let g2 = LoadStats::from_loads(&GreedyD::new(spec, 2).run(13)).gap();
        let g4 = LoadStats::from_loads(&GreedyD::new(spec, 4).run(13)).gap();
        assert!(g4 <= g2 + 1, "g2={g2} g4={g4}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_choices_rejected() {
        let spec = ProblemSpec::new(10, 2).unwrap();
        let _ = GreedyD::new(spec, 0);
    }
}
