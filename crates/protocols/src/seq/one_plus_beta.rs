//! The `(1+β)`-choice process.
//!
//! Each ball flips a β-coin: with probability `β` it uses two choices
//! (GREEDY\[2\]); otherwise one. Peres, Talwar, and Wieder showed the gap is
//! `Θ(log n / β)` — interpolating between the single-choice `√` regime and
//! the two-choice double-log regime. Included as an ablation of "how much
//! second choice is enough".

use pba_core::rng::{ball_stream, Rand64};
use pba_core::ProblemSpec;

/// Configuration for the `(1+β)`-choice process.
#[derive(Debug, Clone, Copy)]
pub struct OnePlusBeta {
    spec: ProblemSpec,
    beta: f64,
}

impl OnePlusBeta {
    /// Create with `β ∈ [0, 1]`.
    pub fn new(spec: ProblemSpec, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        Self { spec, beta }
    }

    /// The mixing parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Run the process; returns final loads.
    pub fn run(&self, seed: u64) -> Vec<u32> {
        let n = self.spec.bins();
        let mut loads = vec![0u32; n as usize];
        for ball in 0..self.spec.balls() {
            let mut rng = ball_stream(seed, 0, ball);
            let two = rng.bernoulli(self.beta);
            let mut best = rng.below(n);
            if two {
                let candidate = rng.below(n);
                if loads[candidate as usize] < loads[best as usize] {
                    best = candidate;
                }
            }
            loads[best as usize] += 1;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::LoadStats;

    #[test]
    fn places_all_balls() {
        let spec = ProblemSpec::new(30_000, 128).unwrap();
        let loads = OnePlusBeta::new(spec, 0.5).run(2);
        assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 30_000);
    }

    #[test]
    fn beta_zero_is_single_choice() {
        let spec = ProblemSpec::new(10_000, 64).unwrap();
        // β = 0 never consumes the second draw... but the coin flip offsets
        // the stream relative to single_choice_loads, so compare statistics
        // rather than exact vectors: total mass and seed-determinism.
        let a = OnePlusBeta::new(spec, 0.0).run(5);
        let b = OnePlusBeta::new(spec, 0.0).run(5);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|&l| l as u64).sum::<u64>(), 10_000);
    }

    #[test]
    fn gap_interpolates_between_regimes() {
        let spec = ProblemSpec::new(1 << 18, 1 << 10).unwrap(); // m/n = 256
        let g0 = LoadStats::from_loads(&OnePlusBeta::new(spec, 0.0).run(9)).gap();
        let g05 = LoadStats::from_loads(&OnePlusBeta::new(spec, 0.5).run(9)).gap();
        let g1 = LoadStats::from_loads(&OnePlusBeta::new(spec, 1.0).run(9)).gap();
        assert!(g05 < g0, "β=0.5 ({g05}) should beat β=0 ({g0})");
        assert!(g1 <= g05, "β=1 ({g1}) should not lose to β=0.5 ({g05})");
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        let spec = ProblemSpec::new(10, 2).unwrap();
        let _ = OnePlusBeta::new(spec, 1.5);
    }
}
