//! Protocol combinators.
//!
//! The heavily loaded algorithm is structurally *two protocols run in
//! sequence on the same bins* (threshold phase, then light phase).
//! [`Sequenced`] generalizes that composition: run `A` until it declares
//! itself finished, then hand the remaining balls to `B` — loads carry
//! over automatically because bins are engine state, not protocol state.
//!
//! This lets users compose e.g. `StemannHeavy` (bulk placement, O(m/n)
//! cap) with `ALight` (O(1)-gap finishing), or prepend a single
//! symmetric round to the asymmetric protocol as Theorem 3's
//! message-reduction variant does.

use pba_core::protocol::{
    BallContext, BinGrant, ChoiceSink, CommitOption, Flow, RoundContext, RoundProtocol,
};
use pba_core::rng::SplitMix64;
use pba_core::trace::RoundRecord;
use pba_core::ProblemSpec;

/// When the first phase of a [`Sequenced`] composition should yield.
pub trait PhaseLimit: Send + Sync {
    /// True when the first protocol should stop after this round.
    fn phase_done(&self, ctx: &RoundContext, record: &RoundRecord) -> bool;
}

/// Yield after a fixed number of rounds.
#[derive(Debug, Clone, Copy)]
pub struct AfterRounds(pub u32);

impl PhaseLimit for AfterRounds {
    fn phase_done(&self, ctx: &RoundContext, _record: &RoundRecord) -> bool {
        ctx.round + 1 >= self.0
    }
}

/// Yield once at most `threshold · n` balls remain unallocated.
#[derive(Debug, Clone, Copy)]
pub struct WhenRemainingPerBin(pub f64);

impl PhaseLimit for WhenRemainingPerBin {
    fn phase_done(&self, ctx: &RoundContext, record: &RoundRecord) -> bool {
        let remaining = ctx.active - record.committed;
        (remaining as f64) <= self.0 * ctx.spec.bins() as f64
    }
}

/// Run `A` until `limit` fires, then `B` on whatever remains.
///
/// Ball state is the pair of both phases' states; rounds are globally
/// numbered (phase `B` sees the true round index in its context and can
/// compute its phase-local age from [`Sequenced::second_phase_start`]
/// being stored before its first round — protocols in this workspace use
/// only per-round degree schedules, which the adapter offsets for them
/// is *not* attempted; compose protocols that tolerate a nonzero
/// starting round, which all of ours do except round-age-sensitive ones
/// like `ALight`'s doubling — for those, prefer their built-in phase
/// handling).
pub struct Sequenced<A: RoundProtocol, B: RoundProtocol, L: PhaseLimit> {
    first: A,
    second: B,
    limit: L,
    in_second: bool,
    second_start: u32,
}

impl<A: RoundProtocol, B: RoundProtocol, L: PhaseLimit> Sequenced<A, B, L> {
    /// Compose `first` then `second`, switching when `limit` fires.
    pub fn new(first: A, second: B, limit: L) -> Self {
        Self {
            first,
            second,
            limit,
            in_second: false,
            second_start: 0,
        }
    }

    /// The round at which the second phase began (0 until it does).
    pub fn second_phase_start(&self) -> u32 {
        self.second_start
    }

    /// Whether the composition is currently in its second phase.
    pub fn in_second_phase(&self) -> bool {
        self.in_second
    }
}

impl<A, B, L> RoundProtocol for Sequenced<A, B, L>
where
    A: RoundProtocol,
    B: RoundProtocol,
    L: PhaseLimit,
{
    type BallState = (A::BallState, B::BallState);

    // Conservative: pay the snapshot cost if either phase needs it.
    const NEEDS_COMMIT_CHOICE: bool = A::NEEDS_COMMIT_CHOICE || B::NEEDS_COMMIT_CHOICE;

    // Conservative: relax the validator's capacity check if either phase
    // redirects commits.
    const MAY_REDIRECT: bool = A::MAY_REDIRECT || B::MAY_REDIRECT;

    fn name(&self) -> &'static str {
        "sequenced"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        self.first
            .round_budget(spec)
            .saturating_add(self.second.round_budget(spec))
    }

    fn begin_round(&mut self, ctx: &RoundContext) {
        if self.in_second {
            self.second.begin_round(ctx);
        } else {
            self.first.begin_round(ctx);
        }
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        ball: BallContext,
        state: &mut Self::BallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        if self.in_second {
            self.second.ball_choices(ctx, ball, &mut state.1, rng, out);
        } else {
            self.first.ball_choices(ctx, ball, &mut state.0, rng, out);
        }
    }

    fn bin_grant(&self, ctx: &RoundContext, bin: u32, load: u32, arrivals: u32) -> BinGrant {
        if self.in_second {
            self.second.bin_grant(ctx, bin, load, arrivals)
        } else {
            self.first.bin_grant(ctx, bin, load, arrivals)
        }
    }

    fn redirect(&self, ctx: &RoundContext, bin: u32, slot: u32) -> u32 {
        if self.in_second {
            self.second.redirect(ctx, bin, slot)
        } else {
            self.first.redirect(ctx, bin, slot)
        }
    }

    fn pick_commit(
        &self,
        ctx: &RoundContext,
        ball: BallContext,
        options: &[CommitOption],
    ) -> usize {
        if self.in_second {
            self.second.pick_commit(ctx, ball, options)
        } else {
            self.first.pick_commit(ctx, ball, options)
        }
    }

    fn after_round(&mut self, ctx: &RoundContext, record: &RoundRecord) -> Flow {
        if self.in_second {
            return self.second.after_round(ctx, record);
        }
        let flow = self.first.after_round(ctx, record);
        if self.limit.phase_done(ctx, record) {
            self.in_second = true;
            self.second_start = ctx.round + 1;
            return Flow::Continue; // hand off instead of whatever A said
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedThreshold, SingleChoice, StemannHeavy};
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn stemann_then_fixed_finisher_gets_tight_gap() {
        // Phase 1: all-or-nothing bulk placement with a *tight* cumulative
        // cap (β = 1 ⇒ cap ≈ m/n + 2) — fast for the bulk, but its
        // reject-everything rule stalls on the tail. Phase 2: a fixed
        // tight threshold drains the stragglers with partial acceptance.
        // The composition gets the tight gap neither phase alone delivers
        // comfortably (note: composition can never *undo* phase-1
        // overshoot, which is why phase 1 must already be capped).
        let n = 1u32 << 9;
        let spec = ProblemSpec::new((n as u64) << 7, n).unwrap();
        let composed = Sequenced::new(
            StemannHeavy::with_factors(spec, 1.0, 1.0),
            FixedThreshold::new(spec, 2),
            WhenRemainingPerBin(4.0),
        );
        let out = Simulator::new(spec, RunConfig::seeded(1))
            .run(composed)
            .unwrap();
        assert!(out.is_complete());
        assert!(out.gap() <= 2, "gap {}", out.gap());
        // And far tighter than the default StemannHeavy's O(m/n) slack.
        let pure = Simulator::new(spec, RunConfig::seeded(1))
            .run(StemannHeavy::new(spec))
            .unwrap();
        assert!(out.gap() <= pure.gap());
    }

    #[test]
    fn after_rounds_switches_exactly() {
        let n = 1u32 << 8;
        let spec = ProblemSpec::new((n as u64) * 8, n).unwrap();
        let composed = Sequenced::new(
            SingleChoice::new(spec),
            FixedThreshold::new(spec, 1),
            AfterRounds(1),
        );
        // SingleChoice accepts everything in round 0 → done in one round;
        // the handoff never runs B but must not break anything.
        let out = Simulator::new(spec, RunConfig::seeded(2))
            .run(composed)
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn handoff_preserves_loads() {
        // A places some balls with a low cap; B must see those loads (its
        // thresholds bind against them), so the final max respects B's cap.
        let n = 1u32 << 8;
        let spec = ProblemSpec::new((n as u64) * 16, n).unwrap();
        let composed = Sequenced::new(
            FixedThreshold::new(spec, 3),
            FixedThreshold::new(spec, 1),
            AfterRounds(2),
        );
        let out = Simulator::new(spec, RunConfig::seeded(3))
            .run(composed)
            .unwrap();
        assert!(out.is_complete());
        // Phase A cap is 19; phase B cap is 17. Loads placed in phase A up
        // to 19 stay; B adds nothing beyond 17 — the final max is ≤ A's cap.
        assert!(out.max_load() <= 19);
    }

    #[test]
    fn remaining_per_bin_limit_fires() {
        let n = 1u32 << 8;
        let spec = ProblemSpec::new((n as u64) * 64, n).unwrap();
        let mut composed = Sequenced::new(
            StemannHeavy::new(spec),
            FixedThreshold::new(spec, 2),
            WhenRemainingPerBin(8.0),
        );
        // Drive manually through the simulator; afterwards the protocol
        // must have ended in its second phase.
        let sim = Simulator::new(spec, RunConfig::seeded(4));
        // Need access to the protocol after the run: run a clone-style
        // manual loop instead.
        let out = sim.run_mut(&mut composed).unwrap();
        assert!(out.is_complete());
        assert!(composed.in_second_phase());
        assert!(composed.second_phase_start() >= 1);
    }
}
