//! # `pba-protocols` — balls-into-bins allocation protocols
//!
//! Every protocol from the two "Parallel Balanced Allocations" papers and
//! the baselines they compare against, implemented on the `pba-core`
//! engine:
//!
//! ## Parallel, symmetric
//!
//! * [`Collision`] — Stemann's `c`-collision protocol with `d` random
//!   choices (SPAA 1996): the primary reproduced system. Bins accept a
//!   round's arrivals iff they fit under the collision bound; terminates
//!   in `≈ log log n` rounds for `m = n`, `d = 2`, `c ≥ 2`.
//! * [`StemannHeavy`] — collision-style protocol for `m ≫ n` with load
//!   `O(m/n)` (the regime Stemann's paper covers per the successor
//!   paper's footnote 2).
//! * [`ThresholdHeavy`] — the heavily loaded threshold algorithm
//!   `A_heavy` (Theorem 1): rising thresholds
//!   `T_i = m/n − (m̃_i/n)^{2/3}`, then a light finishing phase.
//! * [`ALight`] — LW16-style adaptive symmetric finisher: active balls
//!   double their request degree each round; bins accept all-or-nothing
//!   under a constant bound. Used as `A_heavy`'s phase 2 and standalone.
//! * [`AdlerGreedy`] — non-adaptive `r`-round parallel GREEDY in the
//!   ACMR98 threshold formulation (fixed `d` choices, per-round
//!   thresholds, commit to the least-loaded accepting bin).
//! * [`FixedThreshold`] — the naive fixed-capacity retry protocol from
//!   the papers' introduction (`Ω(log n)` rounds; also the object of the
//!   Theorem 2 lower bound).
//! * [`SingleChoice`] — one round of uniform placement, no rejection.
//! * [`KdChoice`] — Park's (k,d)-choice generalization
//!   (arXiv:1201.3310): each ball samples `d` bins and commits `k`
//!   replicas to the `k` least loaded, for a max load of
//!   `k·m/n + ln ln n / ln(d/k) + O(1)` w.h.p. The first k-slot-request
//!   protocol on the engine (`replicas() = k`).
//! * [`EstimatedAverage`] — probe–estimate–retry loop
//!   (arXiv:1111.0801): balls reject placements above the sample-mean
//!   load estimate and retry; a hard `⌈m/n⌉` bin cap makes completed
//!   runs perfectly balanced, with expected-constant retries per ball.
//!
//! ## Parallel, asymmetric
//!
//! * [`Asymmetric`] — the superbin protocol of Theorem 3: `O(1)` rounds,
//!   load `m/n + O(1)`, per-bin message bound `(1+o(1))m/n + O(log n)`.
//! * [`TrivialRoundRobin`] — the deterministic `n`-round sweep (balls try
//!   bins one by one), the fallback for `n < log log(m/n)`.
//!
//! ## Semi-parallel / sequential baselines
//!
//! * [`BatchedTwoChoice`] — batched multiple-choice (\[BCE+12\]).
//! * [`seq::GreedyD`] — sequential `d`-choice GREEDY (\[ABKU99\]; heavily
//!   loaded analysis \[BCSV06\]).
//! * [`seq::AlwaysGoLeft`] — Vöcking's asymmetric tie-breaking variant.
//! * [`seq::OnePlusBeta`] — the `(1+β)`-choice process.

pub mod choices;
pub mod combinators;
pub mod par;
pub mod registry;
pub mod schedule;
pub mod seq;

pub use combinators::{AfterRounds, PhaseLimit, Sequenced, WhenRemainingPerBin};
pub use par::a_light::ALight;
pub use par::adler_greedy::AdlerGreedy;
pub use par::asymmetric::Asymmetric;
pub use par::batched::BatchedTwoChoice;
pub use par::collision::Collision;
pub use par::estimated_average::EstimatedAverage;
pub use par::fixed_threshold::FixedThreshold;
pub use par::kd_choice::KdChoice;
pub use par::parallel_two_choice::ParallelTwoChoice;
pub use par::single_choice::SingleChoice;
pub use par::stemann_heavy::StemannHeavy;
pub use par::threshold_heavy::ThresholdHeavy;
pub use par::trivial::TrivialRoundRobin;
pub use registry::{protocol_names, run_by_name, visit_protocol, ProtocolVisitor};
pub use schedule::UndershootSchedule;
pub use seq::{AlwaysGoLeft, GreedyD, OnePlusBeta, WithMemory};
