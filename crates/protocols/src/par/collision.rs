//! Stemann's `c`-collision protocol (SPAA 1996) — the primary reproduced
//! system.
//!
//! Each ball fixes `d` uniformly random bins once (non-adaptive) and
//! contacts all of them every round while unallocated. A bin accepts a
//! round's arrivals **all-or-nothing**: everything, iff the resulting load
//! stays within the collision bound `c`; otherwise it rejects the entire
//! round (a "collision"). Balls accepted by at least one bin commit to one
//! and leave.
//!
//! For `m = n`, `d = 2`, `c ≥ 2`, the protocol terminates within
//! `≈ log₂ log₂ n + O(c)` rounds w.h.p. with maximal load ≤ `c` — the
//! double-log round count is what experiment E7 reproduces, along with
//! the `c`-vs-rounds and `d`-vs-rounds trade-offs.
//!
//! Two collision-bound semantics are provided:
//!
//! * [`CollisionSemantics::Cumulative`] (default): accept iff
//!   `load + arrivals ≤ c`. The final load is structurally ≤ `c`.
//! * [`CollisionSemantics::PerRound`]: accept iff `arrivals ≤ c`,
//!   regardless of load (the literal per-round reading); the load bound
//!   then holds only w.h.p. through the collapsing active set.

use crate::choices::FixedChoices;
use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, RoundContext};
use pba_core::rng::SplitMix64;
use pba_core::{ProblemSpec, RoundProtocol};

/// How the collision bound is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollisionSemantics {
    /// Accept a round's arrivals iff `load + arrivals ≤ c`.
    Cumulative,
    /// Accept a round's arrivals iff `arrivals ≤ c` (load ignored).
    PerRound,
}

/// Stemann's non-adaptive `c`-collision protocol with `d` choices.
#[derive(Debug, Clone, Copy)]
pub struct Collision {
    spec: ProblemSpec,
    d: u32,
    c: u32,
    semantics: CollisionSemantics,
}

impl Collision {
    /// The canonical instance: `d = 2`, `c = 2`, cumulative semantics.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_params(spec, 2, 2)
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Custom degree and collision bound (cumulative semantics).
    ///
    /// Total capacity `c·n` must exceed `m`, otherwise completion is
    /// impossible.
    pub fn with_params(spec: ProblemSpec, d: u32, c: u32) -> Self {
        assert!(
            (1..=crate::choices::MAX_DEGREE as u32).contains(&d),
            "d out of range"
        );
        assert!(c >= 1);
        assert!(
            (c as u64) * (spec.bins() as u64) > spec.balls(),
            "total capacity c·n = {} must exceed m = {}",
            (c as u64) * (spec.bins() as u64),
            spec.balls()
        );
        Self {
            spec,
            d,
            c,
            semantics: CollisionSemantics::Cumulative,
        }
    }

    /// Switch the collision-bound semantics.
    pub fn with_semantics(mut self, semantics: CollisionSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Number of choices per ball.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The collision bound.
    pub fn c(&self) -> u32 {
        self.c
    }
}

impl RoundProtocol for Collision {
    type BallState = FixedChoices;

    fn name(&self) -> &'static str {
        "collision"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // log log n + O(c) w.h.p.; rare stragglers retry within the cap.
        200 + 8 * (64 - spec.bins().leading_zeros()) + 8 * self.c
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        state: &mut FixedChoices,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        for &bin in state.ensure(self.d as usize, ctx.spec.bins(), rng) {
            out.push(bin);
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, arrivals: u32) -> BinGrant {
        match self.semantics {
            CollisionSemantics::Cumulative => BinGrant::all_or_nothing(self.c, load, arrivals),
            CollisionSemantics::PerRound => {
                if arrivals <= self.c {
                    BinGrant {
                        accept: arrivals,
                        want: self.c,
                    }
                } else {
                    BinGrant {
                        accept: 0,
                        want: self.c,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    fn balanced(n: u32) -> ProblemSpec {
        ProblemSpec::new(n as u64, n).unwrap()
    }

    #[test]
    fn canonical_instance_load_at_most_c() {
        let spec = balanced(1 << 14);
        let out = Simulator::new(spec, RunConfig::seeded(1))
            .run(Collision::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.max_load() <= 2, "load {}", out.max_load());
    }

    #[test]
    fn rounds_are_double_log_scale() {
        // n = 2^16: log₂ log₂ n = 4. Expect single-digit rounds, far
        // below log₂ n = 16.
        let spec = balanced(1 << 16);
        let out = Simulator::new(spec, RunConfig::seeded(3))
            .run(Collision::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.rounds <= 12, "rounds {}", out.rounds);
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        let r10 = Simulator::new(balanced(1 << 10), RunConfig::seeded(5))
            .run(Collision::new(balanced(1 << 10)))
            .unwrap()
            .rounds;
        let r18 = Simulator::new(balanced(1 << 18), RunConfig::seeded(5))
            .run(Collision::new(balanced(1 << 18)))
            .unwrap()
            .rounds;
        // 256× more bins; double-log growth means a couple extra rounds.
        assert!(r18 <= r10 + 6, "r10={r10} r18={r18}");
    }

    #[test]
    fn larger_c_fewer_rounds() {
        let spec = balanced(1 << 14);
        let r2 = Simulator::new(spec, RunConfig::seeded(7))
            .run(Collision::with_params(spec, 2, 2))
            .unwrap()
            .rounds;
        let r4 = Simulator::new(spec, RunConfig::seeded(7))
            .run(Collision::with_params(spec, 2, 4))
            .unwrap()
            .rounds;
        assert!(r4 <= r2, "c=2: {r2} rounds, c=4: {r4} rounds");
    }

    #[test]
    fn degree_one_deadlocks_where_degree_two_succeeds() {
        // d = 1 is non-adaptive with a single fixed bin: any bin whose
        // contenders exceed the collision bound rejects the same set
        // forever — the protocol deadlocks w.h.p. (≈1.9% of bins draw ≥ 4
        // contenders at m = n). The power of the second choice is the
        // whole point of [Ste96].
        let spec = balanced(1 << 12);
        let cfg = pba_core::RunConfig {
            max_rounds: Some(50),
            ..RunConfig::seeded(9)
        };
        let r1 = Simulator::new(spec, cfg).run(Collision::with_params(spec, 1, 3));
        assert!(
            matches!(r1, Err(pba_core::CoreError::RoundBudgetExhausted { .. })),
            "expected deadlock, got {r1:?}"
        );
        let r2 = Simulator::new(spec, RunConfig::seeded(9))
            .run(Collision::with_params(spec, 2, 3))
            .unwrap();
        assert!(r2.is_complete());
        assert!(r2.rounds <= 12);
    }

    #[test]
    fn per_round_semantics_completes() {
        let spec = balanced(1 << 12);
        let out = Simulator::new(spec, RunConfig::seeded(11))
            .run(Collision::new(spec).with_semantics(CollisionSemantics::PerRound))
            .unwrap();
        assert!(out.is_complete());
        // w.h.p. the load stays small even without the structural cap.
        assert!(out.max_load() <= 6, "load {}", out.max_load());
    }

    #[test]
    fn nonadaptive_choices_are_stable_across_rounds() {
        // With per-ball fixed choices, messages per round ≤ d·active and
        // every ball's two bins never change — verified indirectly: the
        // run completes with ≤ d·m·rounds messages and the request count
        // per round is exactly d·active.
        let spec = balanced(1 << 10);
        let out = Simulator::new(spec, RunConfig::seeded(13))
            .run(Collision::new(spec))
            .unwrap();
        for rec in out.trace.as_ref().unwrap().records() {
            assert_eq!(rec.requests, 2 * rec.active_before);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn infeasible_capacity_rejected() {
        let spec = ProblemSpec::new(4000, 1000).unwrap();
        let _ = Collision::with_params(spec, 2, 2); // 2·1000 < 4000
    }
}
