//! Parallel round-synchronous protocols (implementations of
//! [`pba_core::RoundProtocol`]).

pub mod a_light;
pub mod adler_greedy;
pub mod asymmetric;
pub mod batched;
pub mod collision;
pub mod estimated_average;
pub mod fixed_threshold;
pub mod kd_choice;
pub mod parallel_two_choice;
pub mod single_choice;
pub mod stemann_heavy;
pub mod threshold_heavy;
pub mod trivial;
