//! The asymmetric superbin protocol (Theorem 3 / Section 5 of the heavily
//! loaded paper): maximal load `m/n + O(1)` in `O(1)` rounds, each bin
//! receiving `(1+o(1))·m/n + O(log n)` messages.
//!
//! Bins carry globally known IDs. In round `r` the active balls spread
//! over `n_r = m_r·min(n/m_r, 1/ln n)` **superbin leaders** (every
//! `⌊n/n_r⌋`-th bin). A leader accepts up to
//!
//! ```text
//! L_r = ⌈m_r/n_r − δ_r⌉  with  δ_r = c·√((m_r/n_r)·ln n)
//! ```
//!
//! requests (or `⌈4c² ln n⌉` once `m_r/n_r ≤ 2c² ln n` — the final round)
//! and spreads the accepted balls **round-robin over its member bins** via
//! the response index — the engine's `redirect(bin, slot)` hook. Because
//! leaders receive at least `L_r` requests w.h.p., every member bin gains
//! the *same* load each non-final round, and the final round adds `O(1)`
//! per bin (each superbin then spans ≥ ln n members).
//!
//! When `m > n·ln n`, a single preliminary round of the symmetric
//! threshold algorithm (threshold `m/n − (m/n)^{2/3}`) first reduces the
//! active set to `o(m)`, which caps per-bin message counts at
//! `(1+o(1))·m/n + O(log n)`.

use pba_core::mathutil::{f64_to_u32_floor, f64_to_u64_floor};
use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Symmetric threshold pre-round (only when `m > n ln n`).
    PreRound,
    /// Superbin rounds.
    Main,
}

/// The constant-round asymmetric superbin protocol.
#[derive(Debug, Clone)]
pub struct Asymmetric {
    spec: ProblemSpec,
    /// The concentration constant `c` of `δ_r` (paper: "sufficiently
    /// large"; 1.5 keeps underload probability negligible at all tested
    /// sizes).
    c: f64,
    phase: Phase,
    pre_threshold: u64,
    // Per-round superbin geometry (recomputed in `begin_round`).
    n_r: u32,
    group: u32,
    l_r: u32,
    log_case: bool,
}

impl Asymmetric {
    /// Create with the default concentration constant.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_constant(spec, 2.5)
    }

    /// Create with an explicit concentration constant `c > 0`.
    pub fn with_constant(spec: ProblemSpec, c: f64) -> Self {
        assert!(c > 0.0);
        let ln_n = (spec.bins() as f64).max(2.0).ln();
        let needs_pre_round = spec.balls() as f64 > spec.bins() as f64 * ln_n;
        let avg = spec.average_load();
        Self {
            spec,
            c,
            phase: if needs_pre_round {
                Phase::PreRound
            } else {
                Phase::Main
            },
            pre_threshold: f64_to_u64_floor(avg - avg.powf(2.0 / 3.0)),
            n_r: 1,
            group: spec.bins(),
            l_r: 0,
            log_case: false,
        }
    }

    fn ln_n(&self) -> f64 {
        (self.spec.bins() as f64).max(2.0).ln()
    }

    /// Superbin geometry and acceptance quota for `m_r` active balls.
    ///
    /// Finite-scale reconstruction of the paper's schedule (whose
    /// `min(n/m, 1/log n)` constants only cohere asymptotically):
    ///
    /// * **Bulk rounds** (`m_r/n > 2c²·ln n`): every bin is its own
    ///   superbin (`n_r = n`) and accepts exactly
    ///   `L_r = ⌊m_r/n − δ_r⌋` requests, `δ_r = c·√((m_r/n)·ln n)`. All
    ///   bins receive ≥ `L_r` requests w.h.p., so loads stay perfectly
    ///   even; the active set shrinks by the factor `δ_r·n/m_r =
    ///   c√(ln n·n/m_r)` per round, so at most a couple of bulk rounds
    ///   occur before the ratio falls below `2c²·ln n`.
    /// * **Final round** (`m_r/n ≤ 2c²·ln n`): superbins of
    ///   `members = min(max(4, ⌈m_r/n⌉), ⌈2·ln n⌉)` bins; leaders accept
    ///   *everything* and spread it round-robin, so the round is terminal
    ///   by construction. Each member gains `≈ m_r/n ± O(√(m_r/(n·members)))`
    ///   — the leader's arrival fluctuation divided by its member count —
    ///   while leaders receive only `members·m_r/n = O(log²n)` extra
    ///   messages, keeping the per-bin total at `(1+o(1))·m/n + O(log²n)`
    ///   (the paper's `O(log n)` term needs its asymptotic regime
    ///   `m/n ≫ log³n`; the trend is verified separately).
    fn configure_round(&mut self, m_r: u64) {
        let n = self.spec.bins();
        let ln_n = self.ln_n();
        let ratio = m_r as f64 / n as f64;
        let bulk_limit = 2.0 * self.c * self.c * ln_n;
        if ratio > bulk_limit {
            let delta = self.c * (ratio * ln_n).sqrt();
            self.n_r = n;
            self.group = 1;
            self.l_r = f64_to_u32_floor(ratio - delta).max(1);
            self.log_case = false;
        } else {
            let members = (ratio.ceil().max(4.0).min((2.0 * ln_n).ceil()) as u32)
                .min(n)
                .max(1);
            self.n_r = (n / members).max(1);
            self.group = n / self.n_r;
            self.l_r = u32::MAX; // leaders accept everything
            self.log_case = true;
        }
    }

    #[inline]
    fn is_leader(&self, bin: u32) -> bool {
        bin.is_multiple_of(self.group) && bin / self.group < self.n_r
    }

    /// Number of member bins owned by the leader at `bin`.
    #[inline]
    fn members_of(&self, leader: u32) -> u32 {
        let idx = leader / self.group;
        if idx + 1 == self.n_r {
            self.spec.bins() - leader
        } else {
            self.group
        }
    }
}

impl RoundProtocol for Asymmetric {
    type BallState = NoBallState;

    // Main-phase commits are spread round-robin over member bins, so a
    // commit may land on a different bin than the granting leader.
    const MAY_REDIRECT: bool = true;

    fn name(&self) -> &'static str {
        "asymmetric"
    }

    fn round_budget(&self, _spec: &ProblemSpec) -> u32 {
        // Paper: ≤ 3 superbin rounds (+1 pre-round) w.h.p.; generous cap
        // for the improbable straggler tail.
        24
    }

    fn begin_round(&mut self, ctx: &RoundContext) {
        match self.phase {
            Phase::PreRound if ctx.round == 0 => {}
            _ => {
                self.phase = Phase::Main;
                self.configure_round(ctx.active);
            }
        }
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        match self.phase {
            Phase::PreRound => out.push(rng.below(ctx.spec.bins())),
            Phase::Main => out.push(self.group * rng.below(self.n_r)),
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, bin: u32, load: u32, arrivals: u32) -> BinGrant {
        match self.phase {
            Phase::PreRound => {
                let t = self.pre_threshold.min(u32::MAX as u64) as u32;
                BinGrant::up_to(t.saturating_sub(load))
            }
            Phase::Main => {
                if self.is_leader(bin) {
                    if self.log_case {
                        // Final round: accept all arrivals and spread them
                        // round-robin over the member bins.
                        BinGrant {
                            accept: arrivals,
                            want: arrivals,
                        }
                    } else {
                        BinGrant::up_to(self.l_r)
                    }
                } else {
                    BinGrant::reject()
                }
            }
        }
    }

    fn redirect(&self, _ctx: &RoundContext, bin: u32, slot: u32) -> u32 {
        match self.phase {
            Phase::PreRound => bin,
            Phase::Main => bin + slot % self.members_of(bin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    fn run(m: u64, n: u32, seed: u64) -> pba_core::RunOutcome {
        let spec = ProblemSpec::new(m, n).unwrap();
        Simulator::new(spec, RunConfig::seeded(seed))
            .run(Asymmetric::new(spec))
            .unwrap()
    }

    #[test]
    fn constant_rounds_heavy_regime() {
        let out = run(1 << 22, 1 << 10, 1); // m/n = 4096 > ln n
        assert!(out.is_complete());
        // ≤ 3 superbin rounds + 1 pre-round per Claim 9.
        assert!(out.rounds <= 5, "rounds {}", out.rounds);
        assert!(out.gap() <= 8, "gap {}", out.gap());
    }

    #[test]
    fn constant_rounds_light_regime() {
        // m ≤ n ln n: no pre-round; log-case quota finishes immediately.
        let out = run(1 << 12, 1 << 12, 3);
        assert!(out.is_complete());
        assert!(out.rounds <= 3, "rounds {}", out.rounds);
    }

    #[test]
    fn rounds_do_not_grow_with_m() {
        let r_small = run(1 << 16, 1 << 10, 5).rounds;
        let r_large = run(1 << 24, 1 << 10, 5).rounds;
        assert!(r_large <= r_small + 2, "small {r_small}, large {r_large}");
        assert!(r_large <= 5);
    }

    #[test]
    fn per_bin_messages_near_average() {
        // Theorem 3: bins receive (1+o(1))·m/n + O(log n) ball→bin
        // messages. Our ledger counts requests AND commit notifications
        // (≈ one per placed ball), so the baseline is 2·m/n; the bound
        // below checks the o(1)-style overhead plus the polylog term, in
        // the regime m/n ≫ log n where the theorem's asymptotics apply.
        let n = 1u32 << 10;
        let m = (n as u64) << 12; // m/n = 4096
        let out = run(m, n, 7);
        let max_recv = out.max_bin_received().unwrap() as f64;
        let avg = m as f64 / n as f64;
        let ln_n = (n as f64).ln();
        assert!(
            max_recv <= 2.8 * avg + 60.0 * ln_n,
            "max per-bin messages {max_recv} vs avg {avg}"
        );
    }

    #[test]
    fn per_bin_message_overhead_shrinks_as_ratio_grows() {
        // The (1+o(1)) claim as a shape: relative overhead over the 2·m/n
        // baseline decreases when m/n grows.
        let n = 1u32 << 10;
        let rel = |shift: u64| {
            let m = (n as u64) << shift;
            let out = run(m, n, 11);
            out.max_bin_received().unwrap() as f64 / (2.0 * m as f64 / n as f64)
        };
        let low = rel(6); // m/n = 64
        let high = rel(12); // m/n = 4096
        assert!(
            high < low,
            "overhead should shrink: low {low:.3}, high {high:.3}"
        );
    }

    #[test]
    fn round_robin_spreads_loads_evenly() {
        let out = run(1 << 20, 1 << 8, 9);
        let stats = out.load_stats();
        // All-but-final rounds add identical load to every bin w.h.p.;
        // the final round adds m_r/n ± √(m_r/(n·members)) per bin. At
        // n = 256 that residual deviation is ≈ ±2.3σ per leader, so the
        // end-to-end spread stays a small constant — compare against the
        // naive one-round spread of ≈ 2·√(2·4096·ln 256) ≈ 430.
        assert!(stats.spread() <= 25, "spread {}", stats.spread());
    }

    #[test]
    fn many_seeds_complete_fast() {
        for seed in 0..8 {
            let out = run(1 << 18, 1 << 9, seed);
            assert!(out.is_complete(), "seed {seed}");
            assert!(out.rounds <= 5, "seed {seed}: rounds {}", out.rounds);
            assert!(out.gap() <= 8, "seed {seed}: gap {}", out.gap());
        }
    }
}
