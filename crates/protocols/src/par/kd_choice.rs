//! Park's (k,d)-choice generalization (arXiv:1201.3310): each ball
//! requests `k` slots among `d` sampled bins and — once at least `k`
//! distinct bins accept — commits **k replicas at once**, one per bin.
//!
//! This is the first protocol family exercising the engine's k-slot
//! request path: [`RoundProtocol::replicas`] returns `k`, the commit
//! choice is the full set returned by [`RoundProtocol::select_commits`]
//! (the `k` least-loaded distinct accepting bins, GREEDY-style), and the
//! in-engine invariant checker enforces that every committed ball
//! contributes exactly `k` load units. Loads therefore sum to `k·m`, and
//! the balanced target is `⌈k·m/n⌉`.
//!
//! The published bound (Park, Theorem 1): the greedy k-out-of-d scheme
//! reaches max load `k·m/n + ln ln n / ln(d/k) + O(1)` w.h.p. — the
//! two-choice `ln ln n / ln 2` window with the base improved to `d/k`.
//! In the synchronous-round setting balls only see round-start loads, so
//! the window is enforced collision-style: bins cap one Park window
//! above the balanced target and overfull requests retry. The oracle
//! (`e24-kd-load`) then pins the nontrivial part — runs complete within
//! the round budget while the max stays inside the window.
//!
//! An all-or-nothing commit needs `k` distinct accepting bins in one
//! round; as bins fill, a fixed degree `d` would leave the last balls
//! hunting for slack at probability `O((d/n)^k)` per round. Active balls
//! therefore escalate their probe degree deterministically with the
//! round index (a pure function of `ctx.round`, so Serial/Pool
//! bit-identity is untouched), which collapses the tail to a handful of
//! rounds.

use pba_core::protocol::{
    BallContext, BinGrant, ChoiceSink, CommitOption, NoBallState, RoundContext,
};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// Rounds at the base degree before probe escalation kicks in.
const ESCALATE_AFTER: u32 = 12;

/// Hard cap on an escalated probe degree.
const MAX_DEGREE: u32 = 256;

/// Park's (k,d)-choice: `d` sampled bins, `k` committed replicas.
#[derive(Debug, Clone, Copy)]
pub struct KdChoice {
    spec: ProblemSpec,
    k: u32,
    d: u32,
    capacity: u32,
}

/// `⌈ln ln n / ln(d/k)⌉` — Park's additive window above `k·m/n`.
pub fn park_window(n: u32, k: u32, d: u32) -> u32 {
    let lnln = (n.max(4) as f64).ln().ln().max(0.0);
    (lnln / (d as f64 / k as f64).ln()).ceil() as u32
}

impl KdChoice {
    /// The registry's named point `k = 2, d = 4`.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_params(spec, 2, 4)
    }

    /// Custom `(k, d)` with `1 ≤ k < d ≤ 8`. `k` is clamped to the bin
    /// count (fewer distinct bins than replicas cannot exist).
    pub fn with_params(spec: ProblemSpec, k: u32, d: u32) -> Self {
        assert!(k >= 1, "k must be ≥ 1");
        assert!(d > k, "d must exceed k (the bound window is ln(d/k))");
        assert!(d <= 8, "base degree is capped at 8");
        let k = k.min(spec.bins());
        let n = spec.bins();
        let target = (k as u64 * spec.balls()).div_ceil(n as u64);
        let target = u32::try_from(target).expect("k·m/n fits in u32");
        // Structural cap one Park window (+2) above the balanced target.
        // In a synchronous round every ball sees round-*start* loads, so
        // greedy choice alone cannot keep round 0 inside the window —
        // the bound is enforced the way collision-style protocols do it:
        // bins cap at target + window and overflow retries. The
        // nontrivial part (what e24-kd-load + the budget check pin) is
        // that retries still terminate fast, and the +2 aggregate slack
        // is what absorbs crashed-bin capacity loss in chaos runs.
        let capacity = target
            .saturating_add(park_window(n, k, d.min(8)))
            .saturating_add(2);
        Self {
            spec,
            k,
            d,
            capacity,
        }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Replicas committed per ball (after clamping to the bin count).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Base probe degree.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The structural per-bin capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Probe degree for `round`: the base `d`, doubling every 4 rounds
    /// once the tail phase starts, capped at [`MAX_DEGREE`] and `n`.
    fn effective_degree(&self, round: u32, n: u32) -> u32 {
        if round < ESCALATE_AFTER {
            return self.d;
        }
        let shift = ((round - ESCALATE_AFTER) / 4 + 1).min(8);
        (self.d << shift).min(MAX_DEGREE).min(n.max(self.d))
    }
}

impl RoundProtocol for KdChoice {
    type BallState = NoBallState;

    const NEEDS_COMMIT_CHOICE: bool = true;

    fn name(&self) -> &'static str {
        match (self.k, self.d) {
            (2, 4) => "kd-choice",
            (3, 6) => "kd-choice-36",
            _ => "kd-choice-custom",
        }
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // Clean runs finish in ~15–25 rounds at any size (the +2 aggregate
        // slack keeps accepting bins plentiful through the endgame), so a
        // tight budget is safe — and it matters: an *infeasible* instance
        // (e.g. enough crashed bins that live capacity < k·m) should
        // error out quickly instead of burning escalated-degree rounds.
        64 + 4 * (64 - (spec.balls() + spec.bins() as u64).leading_zeros())
    }

    fn replicas(&self) -> u32 {
        self.k
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        let n = ctx.spec.bins();
        let deg = self.effective_degree(ctx.round, n);
        if deg <= 8 && n >= deg {
            // The paper's scheme samples d *distinct* bins; rejection
            // sampling on a stack array keeps the round allocation-free.
            let mut picked = [0u32; 8];
            for i in 0..deg as usize {
                let bin = loop {
                    let c = rng.below(n);
                    if !picked[..i].contains(&c) {
                        break c;
                    }
                };
                picked[i] = bin;
                out.push(bin);
            }
        } else {
            // Escalated tail probes draw with replacement: duplicates
            // only waste probes, and the degree dwarfs k by then.
            for _ in 0..deg {
                out.push(rng.below(n));
            }
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, _arrivals: u32) -> BinGrant {
        BinGrant::up_to(self.capacity.saturating_sub(load))
    }

    fn select_commits(
        &self,
        _ctx: &RoundContext,
        _ball: BallContext,
        options: &[CommitOption],
        picks: &mut Vec<u32>,
    ) {
        // Greedy k-out-of-d: commit the k least-loaded *distinct*
        // accepting bins (ties broken by acceptance order), all-or-
        // nothing — with fewer than k distinct accepting bins the ball
        // declines the whole round and retries.
        let k = self.k as usize;
        let mut picked_bins = [u32::MAX; 8];
        for slot in 0..k {
            let mut best: Option<(u32, usize)> = None;
            for (i, o) in options.iter().enumerate() {
                if picked_bins[..slot].contains(&o.bin) {
                    continue;
                }
                if best.is_none_or(|(load, _)| o.load_before < load) {
                    best = Some((o.load_before, i));
                }
            }
            match best {
                Some((_, i)) => {
                    picked_bins[slot] = options[i].bin;
                    picks.push(i as u32);
                }
                None => {
                    picks.clear();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_with_k_times_m_units() {
        let spec = ProblemSpec::new(1 << 14, 1 << 8).unwrap();
        let p = KdChoice::new(spec);
        let cap = p.capacity();
        let out = Simulator::new(spec, RunConfig::seeded(1).with_validation(true))
            .run(p)
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.replicas, 2);
        let total: u64 = out.loads.iter().map(|&l| l as u64).sum();
        assert_eq!(total, 2 * spec.balls(), "each ball contributes k units");
        assert!(out.max_load() <= cap);
    }

    #[test]
    fn achieved_max_sits_inside_one_park_window() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new(4 * n as u64, n).unwrap();
        let p = KdChoice::new(spec);
        let out = Simulator::new(spec, RunConfig::seeded(3)).run(p).unwrap();
        assert!(out.is_complete());
        // Balanced target 8, window ln ln n / ln 2 ≈ 3, slack +2.
        assert!(
            out.gap() <= park_window(n, 2, 4) + 2,
            "gap {} exceeds the Park window",
            out.gap()
        );
        // The cap must not make completion slow: one window of headroom
        // still finishes in far fewer rounds than the budget.
        assert!(out.rounds <= 32, "took {} rounds", out.rounds);
    }

    #[test]
    fn replica_assignment_is_primary_only_and_well_formed() {
        let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(5).with_assignment(true))
            .run(KdChoice::new(spec))
            .unwrap();
        let alloc = out.allocation();
        assert_eq!(alloc.replicas(), 2);
        assert!(alloc.is_well_formed(), "{:?}", alloc.verify());
    }

    #[test]
    fn wider_probe_set_tightens_the_window() {
        // ln(d/k) grows with d at fixed k, so the (2,6) point's window is
        // no wider than the (2,4) point's.
        assert!(park_window(1 << 20, 2, 6) <= park_window(1 << 20, 2, 4));
        assert!(park_window(1 << 20, 3, 6) <= park_window(1 << 20, 3, 4));
    }

    #[test]
    fn k_clamps_to_tiny_bin_counts() {
        let spec = ProblemSpec::new(64, 2).unwrap();
        let p = KdChoice::with_params(spec, 3, 6);
        assert_eq!(p.k(), 2, "k clamps to n");
        let out = Simulator::new(spec, RunConfig::seeded(7).with_validation(true))
            .run(p)
            .unwrap();
        assert!(out.is_complete());
    }

    #[test]
    fn named_points_report_their_registry_names() {
        let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
        assert_eq!(KdChoice::new(spec).name(), "kd-choice");
        assert_eq!(KdChoice::with_params(spec, 3, 6).name(), "kd-choice-36");
        assert_eq!(KdChoice::with_params(spec, 2, 8).name(), "kd-choice-custom");
    }

    #[test]
    #[should_panic(expected = "d must exceed k")]
    fn degenerate_degree_rejected() {
        let spec = ProblemSpec::new(16, 4).unwrap();
        let _ = KdChoice::with_params(spec, 2, 2);
    }
}
