//! Collision-style protocol for the heavily loaded case with load
//! `O(m/n)` — the regime Stemann's 1996 paper covers (per footnote 2 of
//! the heavily loaded successor: "\[Ste96\] …provides algorithms for load
//! O(m/n) only").
//!
//! Reconstruction: each unallocated ball contacts one uniform bin per
//! round. A bin accepts a round's arrivals all-or-nothing iff
//!
//! * the arrival burst is modest (`arrivals ≤ m/n + α·√(m/n) + 1`), and
//! * the cumulative load stays within the cap (`load + arrivals ≤
//!   ⌈β·m/n⌉ + 2`).
//!
//! Round one places the bulk of the balls (a uniform burst is
//! `m/n ± O(√(m/n))`, within the `α`-sigma bound for most bins), and
//! stragglers drain geometrically. The maximal load is structurally
//! `≤ ⌈β·m/n⌉ + 2 = O(m/n)` — the guarantee this protocol reproduces
//! (E8) — which the threshold algorithm of the successor paper then
//! sharpens to `m/n + O(1)`.

use pba_core::mathutil::f64_to_u32_floor;
use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// Heavily loaded collision protocol with load `O(m/n)`.
#[derive(Debug, Clone, Copy)]
pub struct StemannHeavy {
    spec: ProblemSpec,
    burst_bound: u32,
    load_cap: u32,
}

impl StemannHeavy {
    /// Default parameters `α = 1.0`, `β = 2.0`.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_factors(spec, 1.0, 2.0)
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Custom burst slack `α > 0` and load-cap factor `β ≥ 1`.
    ///
    /// The per-round burst bound scales as `m/n + α·√(m/n) + 1` — one
    /// standard-deviation unit above the mean arrival count per `α` —
    /// so the collision dynamics stay meaningful at every ratio (a bound
    /// proportional to `m/n` itself becomes vacuous as `m/n` grows).
    pub fn with_factors(spec: ProblemSpec, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta >= 1.0, "need α > 0 and β ≥ 1");
        let avg = spec.average_load();
        let burst_bound = f64_to_u32_floor(avg + alpha * avg.sqrt()) + 1;
        let load_cap = f64_to_u32_floor(beta * avg) + 2;
        Self {
            spec,
            burst_bound,
            load_cap,
        }
    }

    /// The per-round arrival bound.
    pub fn burst_bound(&self) -> u32 {
        self.burst_bound
    }

    /// The structural load cap (`O(m/n)`).
    pub fn load_cap(&self) -> u32 {
        self.load_cap
    }
}

impl RoundProtocol for StemannHeavy {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "stemann-heavy"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        100 + 8 * (64 - spec.bins().leading_zeros())
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        out.push(rng.below(ctx.spec.bins()));
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, arrivals: u32) -> BinGrant {
        let headroom = self.load_cap.saturating_sub(load);
        if arrivals <= self.burst_bound && arrivals <= headroom {
            BinGrant {
                accept: arrivals,
                want: headroom.min(self.burst_bound),
            }
        } else {
            BinGrant {
                accept: 0,
                want: headroom.min(self.burst_bound),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_with_load_big_o_of_average() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 8, n).unwrap(); // m/n = 256
        let p = StemannHeavy::new(spec);
        let cap = p.load_cap();
        let out = Simulator::new(spec, RunConfig::seeded(1)).run(p).unwrap();
        assert!(out.is_complete());
        assert!(out.max_load() <= cap);
        // O(m/n): within 2× of the average, i.e. β·(m/n).
        assert!(out.max_load() as f64 <= 2.0 * spec.average_load() + 2.0);
    }

    #[test]
    fn few_rounds_in_heavy_regime() {
        let n = 1u32 << 12;
        let spec = ProblemSpec::new((n as u64) << 6, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(3))
            .run(StemannHeavy::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.rounds <= 10, "rounds {}", out.rounds);
    }

    #[test]
    fn bulk_placed_in_round_one() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 7, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(5))
            .run(StemannHeavy::new(spec))
            .unwrap();
        let r0 = out.trace.as_ref().unwrap().records()[0];
        assert!(
            r0.committed as f64 >= 0.8 * spec.balls() as f64,
            "round 0 placed only {}",
            r0.committed
        );
    }

    #[test]
    fn load_worse_than_threshold_heavy() {
        // The successor paper's point: O(m/n) ≫ m/n + O(1).
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 8, n).unwrap();
        let stemann = Simulator::new(spec, RunConfig::seeded(7))
            .run(StemannHeavy::new(spec))
            .unwrap();
        let heavy = Simulator::new(spec, RunConfig::seeded(7))
            .run(crate::ThresholdHeavy::new(spec))
            .unwrap();
        assert!(
            stemann.gap() > heavy.gap(),
            "stemann gap {} vs threshold-heavy gap {}",
            stemann.gap(),
            heavy.gap()
        );
    }

    #[test]
    #[should_panic(expected = "α")]
    fn invalid_factors_rejected() {
        let spec = ProblemSpec::new(1000, 10).unwrap();
        let _ = StemannHeavy::with_factors(spec, 0.0, 2.0);
    }

    #[test]
    fn burst_bound_scales_with_sqrt() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 10, n).unwrap(); // avg 1024
        let p = StemannHeavy::new(spec);
        // avg + √avg + 1 = 1024 + 32 + 1
        assert_eq!(p.burst_bound(), 1057);
    }
}
