//! `A_light` — adaptive symmetric finisher in the style of Lenzen &
//! Wattenhofer \[LW16\].
//!
//! For `O(n)` balls into `n` bins. In round `r`, every active ball
//! contacts `min(2^r, degree_cap)` uniformly random bins; a bin accepts a
//! round's arrivals **all-or-nothing** iff its load stays within the cap
//! `⌈m/n⌉ + extra`. The doubling request degree is the LW16 mechanism for
//! beating the `Θ(log n)` coupon-collector tail of constant-degree retry:
//! the active-ball count collapses super-exponentially, giving
//! `log* n + O(1)`-flavoured round counts with `O(1)` expected messages
//! per ball.
//!
//! Used standalone (E7 companion) and as phase 2 of
//! [`crate::ThresholdHeavy`].

use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// The adaptive doubling-degree collision finisher.
#[derive(Debug, Clone, Copy)]
pub struct ALight {
    spec: ProblemSpec,
    cap: u32,
    degree_cap: u32,
}

impl ALight {
    /// Per-bin capacity `⌈m/n⌉ + extra`, degree cap 8.
    ///
    /// `extra ≥ 1`; total capacity must exceed `m` for completion.
    pub fn new(spec: ProblemSpec, extra: u32) -> Self {
        assert!(extra >= 1, "extra must be ≥ 1");
        let cap = spec.ceil_avg().saturating_add(extra);
        Self {
            spec,
            cap,
            degree_cap: 8,
        }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The all-or-nothing capacity.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Override the doubling degree cap (`≥ 1`).
    pub fn with_degree_cap(mut self, cap: u32) -> Self {
        assert!(cap >= 1);
        self.degree_cap = cap;
        self
    }
}

/// Doubling request degree, throttled so the *expected arrivals per bin*
/// stay within the average remaining headroom.
///
/// All-or-nothing acceptance stalls when arrivals systematically exceed
/// headroom: with total capacity `cap·n` and `placed = m − active` balls
/// already stored, the average headroom is `(cap·n − placed)/n`, and the
/// expected per-bin arrivals are `degree·active/n`. Keeping
/// `degree ≤ headroom·n/active` preserves the light-case doubling
/// behaviour (`active ≪ n` ⇒ large degree allowed) while staying
/// productive when `A_light` is (ab)used on a heavily loaded instance.
pub(crate) fn throttled_degree(age: u32, degree_cap: u32, ctx: &RoundContext, cap: u32) -> u32 {
    let doubling = 1u32.checked_shl(age).unwrap_or(degree_cap).min(degree_cap);
    let slack = (cap as u64 * ctx.spec.bins() as u64).saturating_sub(ctx.placed);
    let headroom_limit = slack
        .checked_div(ctx.active)
        .map_or(doubling as u64, |h| h.max(1));
    doubling.min(headroom_limit.min(u32::MAX as u64) as u32)
}

impl RoundProtocol for ALight {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "a-light"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        100 + 4 * (64 - spec.bins().leading_zeros())
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        let n = ctx.spec.bins();
        let degree = throttled_degree(ctx.round, self.degree_cap, ctx, self.cap);
        for _ in 0..degree {
            out.push(rng.below(n));
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, arrivals: u32) -> BinGrant {
        BinGrant::all_or_nothing(self.cap, load, arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn balanced_case_fast_and_tight() {
        let n = 1u32 << 14;
        let spec = ProblemSpec::new(n as u64, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(1))
            .run(ALight::new(spec, 2))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.max_load() <= 3); // cap = 1 + 2
                                      // log* n territory: a handful of rounds, not log n ≈ 14.
        assert!(out.rounds <= 9, "rounds {}", out.rounds);
    }

    #[test]
    fn two_n_balls_complete() {
        let n = 1u32 << 12;
        let spec = ProblemSpec::new(2 * n as u64, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(3))
            .run(ALight::new(spec, 2))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.gap() <= 2);
    }

    #[test]
    fn load_cap_is_never_exceeded() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new(3 * n as u64, n).unwrap();
        let p = ALight::new(spec, 1);
        let cap = p.cap();
        let out = Simulator::new(spec, RunConfig::seeded(5)).run(p).unwrap();
        assert!(out.max_load() <= cap);
    }

    #[test]
    fn expected_messages_per_ball_are_constant_scale() {
        let n = 1u32 << 14;
        let spec = ProblemSpec::new(n as u64, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(7))
            .run(ALight::new(spec, 2))
            .unwrap();
        let per_ball = out.messages.requests as f64 / spec.balls() as f64;
        // Doubling degrees but super-exponentially collapsing active set:
        // the series stays O(1) per ball.
        assert!(per_ball < 8.0, "per-ball requests {per_ball}");
    }

    #[test]
    fn rounds_shrink_versus_constant_degree_retry() {
        // Same capacity, degree pinned to 1 (no doubling): the
        // coupon-collector tail shows up. Doubling must beat it.
        let n = 1u32 << 12;
        let spec = ProblemSpec::new(n as u64, n).unwrap();
        let doubling = Simulator::new(spec, RunConfig::seeded(9))
            .run(ALight::new(spec, 1))
            .unwrap();
        let fixed = Simulator::new(spec, RunConfig::seeded(9))
            .run(ALight::new(spec, 1).with_degree_cap(1))
            .unwrap();
        assert!(
            doubling.rounds < fixed.rounds,
            "doubling {} vs fixed {}",
            doubling.rounds,
            fixed.rounds
        );
    }
}
