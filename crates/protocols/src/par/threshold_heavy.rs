//! `A_heavy` — the heavily loaded symmetric threshold algorithm
//! (Theorem 1 / Section 3 of the heavily loaded paper).
//!
//! **Phase 1 (threshold).** In round `i`, every unallocated ball contacts
//! one uniform bin; every bin accepts up to `T_i − load` balls where the
//! *cumulative* threshold is deliberately undershot:
//!
//! ```text
//! T_i = m/n − (m̃_i/n)^{2/3},     m̃_{i+1} = m̃_i^{2/3} · n^{1/3}
//! ```
//!
//! The undershoot keeps all bins equally loaded (w.h.p. every bin receives
//! more requests than it may accept — Claim 1), so the unallocated count
//! follows the recurrence and drops below `2n` in `O(log log(m/n))`
//! rounds (Claims 2–4).
//!
//! **Phase 2 (light).** The remaining `O(n)` balls are finished with the
//! LW16-style adaptive symmetric scheme of [`crate::ALight`]: active balls
//! double their request degree each round and bins accept all-or-nothing
//! under the cap `⌈m/n⌉ + light_extra` — each bin takes only `O(1)` balls
//! beyond its phase-1 threshold, so the final load is `m/n + O(1)`.
//!
//! The undershoot exponent `γ = 2/3` is exposed for the E13 ablation.

use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, Flow, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::trace::RoundRecord;
use pba_core::{ProblemSpec, RoundProtocol};

use crate::schedule::UndershootSchedule;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Threshold,
    Light,
}

/// The heavily loaded threshold algorithm `A_heavy`.
#[derive(Debug, Clone)]
pub struct ThresholdHeavy {
    spec: ProblemSpec,
    /// The undershoot recurrence (paper: `γ = 2/3`).
    schedule: UndershootSchedule,
    /// Extra per-bin capacity in the light phase (the `O(1)`).
    light_extra: u32,
    /// Cap on the light phase's doubling request degree.
    degree_cap: u32,
    // --- round state ---
    phase: Phase,
    /// Cumulative threshold `T_i` for the current round (floored).
    threshold: u64,
    light_start: u32,
}

impl ThresholdHeavy {
    /// The paper's parameters: `γ = 2/3`, switch at `m̃ ≤ 2n`, light-phase
    /// extra capacity 2, degree cap 8.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_gamma(spec, 2.0 / 3.0)
    }

    /// Ablation constructor: undershoot `T_i = m/n − (m̃_i/n)^γ` with
    /// `γ ∈ (0, 1)` and update `m̃_{i+1}/n = (m̃_i/n)^γ`.
    pub fn with_gamma(spec: ProblemSpec, gamma: f64) -> Self {
        let schedule = UndershootSchedule::with_gamma(spec.bins(), spec.balls() as f64, gamma);
        let phase = if schedule.exhausted() {
            Phase::Light
        } else {
            Phase::Threshold
        };
        Self {
            spec,
            schedule,
            light_extra: 2,
            degree_cap: 8,
            phase,
            threshold: 0,
            light_start: 0,
        }
    }

    /// Override the light phase's extra capacity (gap bound).
    pub fn with_light_extra(mut self, extra: u32) -> Self {
        assert!(extra >= 1);
        self.light_extra = extra;
        self
    }

    /// The light-phase all-or-nothing cap `⌈m/n⌉ + light_extra`.
    fn light_cap(&self) -> u32 {
        self.spec.ceil_avg().saturating_add(self.light_extra)
    }

    /// The round at which the light phase began (meaningful after the
    /// run; used by experiments to split phase statistics).
    pub fn light_phase_start(&self) -> u32 {
        self.light_start
    }

    /// The undershoot exponent.
    pub fn gamma(&self) -> f64 {
        self.schedule.gamma()
    }
}

impl RoundProtocol for ThresholdHeavy {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "threshold-heavy"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // O(log log(m/n)) + O(log* n) w.h.p.; the cap is vastly larger.
        let ratio = spec.average_load().max(2.0);
        200 + 10 * (ratio.log2().max(1.0).log2().max(1.0) as u32)
            + 4 * (64 - spec.bins().leading_zeros())
    }

    fn begin_round(&mut self, ctx: &RoundContext) {
        match self.phase {
            Phase::Threshold => {
                if self.schedule.exhausted() {
                    self.phase = Phase::Light;
                    self.light_start = ctx.round;
                } else {
                    self.threshold = self.schedule.threshold(self.spec.average_load());
                }
            }
            Phase::Light => {}
        }
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        let n = ctx.spec.bins();
        match self.phase {
            Phase::Threshold => out.push(rng.below(n)),
            Phase::Light => {
                let age = ctx.round - self.light_start;
                let degree = crate::par::a_light::throttled_degree(
                    age,
                    self.degree_cap,
                    ctx,
                    self.light_cap(),
                );
                for _ in 0..degree {
                    out.push(rng.below(n));
                }
            }
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, arrivals: u32) -> BinGrant {
        match self.phase {
            Phase::Threshold => {
                let t = self.threshold.min(u32::MAX as u64) as u32;
                BinGrant::up_to(t.saturating_sub(load))
            }
            Phase::Light => {
                // `want = accept`: the all-or-nothing headroom is not a
                // threshold demand, so light-phase rounds do not count as
                // "underloaded" in the Claims 1-2 statistics.
                let g = BinGrant::all_or_nothing(self.light_cap(), load, arrivals);
                BinGrant {
                    accept: g.accept,
                    want: g.accept,
                }
            }
        }
    }

    fn after_round(&mut self, _ctx: &RoundContext, _record: &RoundRecord) -> Flow {
        if self.phase == Phase::Threshold {
            self.schedule.advance();
        }
        Flow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_analysis::predict::predicted_rounds_total;
    use pba_core::{RunConfig, Simulator};

    fn run(m: u64, n: u32, seed: u64) -> pba_core::RunOutcome {
        let spec = ProblemSpec::new(m, n).unwrap();
        Simulator::new(spec, RunConfig::seeded(seed))
            .run(ThresholdHeavy::new(spec))
            .unwrap()
    }

    #[test]
    fn heavy_case_constant_gap() {
        let out = run(1 << 20, 1 << 10, 1); // m/n = 1024
        assert!(out.is_complete());
        assert!(out.gap() <= 2, "gap {} exceeds light_extra", out.gap());
    }

    #[test]
    fn gap_bound_is_structural() {
        // The light-phase cap makes gap ≤ light_extra a hard invariant,
        // not a probabilistic one.
        for seed in 0..5 {
            let out = run(1 << 18, 1 << 8, seed);
            assert!(out.is_complete());
            assert!(out.gap() <= 2);
        }
    }

    #[test]
    fn rounds_scale_like_log_log_ratio() {
        let n = 1u32 << 10;
        let small = run((n as u64) << 4, n, 3).rounds; // m/n = 16
        let large = run((n as u64) << 10, n, 3).rounds; // m/n = 1024
                                                        // log log grows from 2 to ~3.3: rounds grow, but far from the
                                                        // 64-fold growth of m/n itself.
        assert!(large >= small, "small={small} large={large}");
        assert!(large <= small + 12, "small={small} large={large}");
        let predicted = predicted_rounds_total((n as u64) << 10, n);
        assert!(
            large <= 3 * predicted + 10,
            "rounds {large} vs predicted {predicted}"
        );
    }

    #[test]
    fn messages_bounded_by_geometric_series() {
        // Theorem 6: total ball-sent messages ≤ 2m-ish (requests decay
        // geometrically). Allow 4m for the light phase's doubling.
        let out = run(1 << 20, 1 << 10, 7);
        assert!(
            out.messages.requests <= 4 * (1 << 20),
            "requests {} too large",
            out.messages.requests
        );
    }

    #[test]
    fn no_underloaded_bins_in_early_rounds() {
        // Claim 2: while m̃_i ≥ n·polylog(n), every bin fills its
        // threshold. At this size only round 0 sits safely inside the
        // polylog regime (round 1 has m̃/n ≈ 645, where the per-bin
        // underload probability e^{-(m̃/n)^{1/3}/2} ≈ 1.3% is no longer
        // ≪ 1/n); round 1 must still be nearly saturated.
        let out = run(1 << 22, 1 << 8, 9); // m/n = 16384
        let trace = out.trace.as_ref().unwrap();
        let first = trace.records()[0];
        assert_eq!(first.underloaded_bins, 0, "round 0 must saturate all bins");
        assert!(trace.records()[1].underloaded_bins <= (1 << 8) / 16);
    }

    #[test]
    fn light_case_still_completes() {
        // m = n: phase 1 is skipped entirely.
        let out = run(1 << 12, 1 << 12, 11);
        assert!(out.is_complete());
        assert!(out.gap() <= 3);
    }

    #[test]
    fn small_ratio_completes() {
        let out = run(3000, 1000, 13); // m/n = 3, just above switch
        assert!(out.is_complete());
        assert!(out.gap() <= 3);
    }

    #[test]
    fn ablation_gamma_variants_complete() {
        let spec = ProblemSpec::new(1 << 18, 1 << 8).unwrap();
        for gamma in [0.5, 0.75, 0.9] {
            let out = Simulator::new(spec, RunConfig::seeded(17))
                .run(ThresholdHeavy::with_gamma(spec, gamma))
                .unwrap();
            assert!(out.is_complete(), "gamma {gamma}");
            assert!(out.gap() <= 2, "gamma {gamma} gap {}", out.gap());
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_out_of_range_rejected() {
        let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
        let _ = ThresholdHeavy::with_gamma(spec, 1.0);
    }
}
