//! The naive fixed-threshold retry protocol — the introduction's
//! motivating negative example and the object of the Theorem 2 lower
//! bound.
//!
//! Every bin accepts up to `T = ⌈m/n⌉ + slack` balls *in total*, never
//! adjusting. Each unallocated ball retries a fresh uniform bin each
//! round. The final load is trivially ≤ `T`, but:
//!
//! * after one round a constant fraction of bins is full, so unallocated
//!   balls keep hitting full bins — `Ω(log n)` rounds (E11);
//! * the per-phase rejection count matches Theorem 7's
//!   `Ω(√(M·n)/t)` (E5).

use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// Fixed total capacity `⌈m/n⌉ + slack` per bin, uniform retry.
#[derive(Debug, Clone, Copy)]
pub struct FixedThreshold {
    spec: ProblemSpec,
    capacity: u32,
}

impl FixedThreshold {
    /// Capacity `⌈m/n⌉ + slack` per bin. `slack ≥ 1` is required for
    /// guaranteed completion when `n ∤ m` is false… more precisely, total
    /// capacity must strictly exceed `m` for the retry tail to drain, so
    /// we require `n·(⌈m/n⌉ + slack) > m`, which any `slack ≥ 1` gives.
    pub fn new(spec: ProblemSpec, slack: u32) -> Self {
        let capacity = spec.ceil_avg().saturating_add(slack);
        assert!(
            (capacity as u64) * (spec.bins() as u64) > spec.balls(),
            "total capacity must exceed m"
        );
        Self { spec, capacity }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The per-bin capacity `T`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl RoundProtocol for FixedThreshold {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "fixed-threshold"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // Ω(log n) expected; the tail is geometric with constant rate once
        // O(n) balls remain. 300·log₂(n+m) is astronomically safe.
        300 * (64 - (spec.balls() + spec.bins() as u64).leading_zeros())
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        out.push(rng.below(ctx.spec.bins()));
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, _arrivals: u32) -> BinGrant {
        BinGrant::up_to(self.capacity.saturating_sub(load))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_with_capped_load() {
        let spec = ProblemSpec::new(50_000, 128).unwrap();
        let p = FixedThreshold::new(spec, 2);
        let cap = p.capacity();
        let out = Simulator::new(spec, RunConfig::seeded(1)).run(p).unwrap();
        assert!(out.is_complete());
        assert!(out.max_load() <= cap);
        assert!(out.gap() <= 2);
    }

    #[test]
    fn needs_many_rounds_compared_to_log_scale() {
        // The motivating observation: with tight capacity, rounds ≈ Ω(log n).
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) * 64, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(5))
            .run(FixedThreshold::new(spec, 1))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.rounds >= 5, "expected ≥5 rounds, got {}", out.rounds);
    }

    #[test]
    fn remaining_sequence_is_monotone_decreasing() {
        let spec = ProblemSpec::new(100_000, 256).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(2))
            .run(FixedThreshold::new(spec, 1))
            .unwrap();
        let seq = out.trace.unwrap().remaining_sequence();
        // Non-increasing (ties possible in the straggler tail, where a
        // round may place nobody), strictly positive progress overall.
        assert!(seq.windows(2).all(|w| w[1] <= w[0]), "{seq:?}");
        assert_eq!(*seq.last().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_slack_exact_division_rejected() {
        // m = n·⌈m/n⌉ exactly: capacity == m, no strict excess.
        let spec = ProblemSpec::new(1024, 32).unwrap();
        let _ = FixedThreshold::new(spec, 0);
    }
}
