//! Estimated-average retry loop (after Dutta et al.,
//! arXiv:1111.0801): each ball probes a few bins, treats the
//! sample mean of their loads as an estimate of the global average, and
//! *rejects its own placement* when the candidate bin sits above that
//! estimate — retrying in the next round. Bins additionally hard-cap at
//! `⌈m/n⌉`, so a completed run is **perfectly balanced** by construction:
//! `max load = ⌈m/n⌉` exactly (for `m ≥ n`), with the paper's claim being
//! that each ball pays only *expected-constant* retries to get there.
//!
//! Determinism: the protocol keeps no per-ball state. The active set only
//! shrinks, so every ball active in round `r` has retried exactly `r`
//! times — the retry counter *is* `ctx.round`, and the accept/decline
//! rule is a pure function of `(round, options)`. Serial and Pool
//! backends are therefore bit-identical at every lane count, and the
//! retry cap needs no side table.
//!
//! Two measures keep the retry loop from colliding with the coupon-
//! collector endgame (the hard `⌈m/n⌉` cap leaves zero aggregate slack,
//! so the last balls must *find* the few underfull bins):
//! * the sample-mean gate trivially accepts single-option balls
//!   (`load ≤ mean` of a 1-sample is always true), so a biased-low
//!   estimate can never deadlock a ball that found headroom;
//! * past [`EstimatedAverage::retry_cap`] rounds the ball goes
//!   *desperate* — it commits to its least-loaded accepting probe
//!   unconditionally — and the probe degree escalates with the round
//!   index, so locating the final underfull bins takes `O(log n)` rounds
//!   instead of a coupon-collector `Ω(n)`.

use pba_core::protocol::{
    BallContext, BinGrant, ChoiceSink, CommitOption, NoBallState, RoundContext,
};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// Hard cap on an escalated probe degree.
const MAX_DEGREE: u32 = 512;

/// Probe–estimate–retry protocol with a perfect-balance hard cap.
#[derive(Debug, Clone, Copy)]
pub struct EstimatedAverage {
    spec: ProblemSpec,
    probes: u32,
    retry_cap: u32,
    threshold: u32,
}

impl EstimatedAverage {
    /// Registry defaults: 3 probes per round, desperation after 8 retries.
    pub fn new(spec: ProblemSpec) -> Self {
        Self::with_params(spec, 3, 8)
    }

    /// Custom probe count (`1..=8`) and retry cap (`1..=64`).
    pub fn with_params(spec: ProblemSpec, probes: u32, retry_cap: u32) -> Self {
        assert!((1..=8).contains(&probes), "probes must be in 1..=8");
        assert!((1..=64).contains(&retry_cap), "retry_cap must be in 1..=64");
        Self {
            spec,
            probes,
            retry_cap,
            threshold: spec.ceil_avg(),
        }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Probes drawn per round before escalation.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// Rounds of estimate-gated retries before desperation mode.
    pub fn retry_cap(&self) -> u32 {
        self.retry_cap
    }

    /// The structural per-bin cap `⌈m/n⌉`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Probe degree for `round`: the base count while the estimate gate
    /// is live, doubling every 2 rounds in desperation mode (capped at
    /// [`MAX_DEGREE`] and `n`) to beat the endgame coupon collector.
    fn effective_degree(&self, round: u32, n: u32) -> u32 {
        if round < self.retry_cap {
            return self.probes;
        }
        let shift = ((round - self.retry_cap) / 2 + 1).min(9);
        (self.probes << shift)
            .min(MAX_DEGREE)
            .min(n.max(self.probes))
    }
}

impl RoundProtocol for EstimatedAverage {
    type BallState = NoBallState;

    const NEEDS_COMMIT_CHOICE: bool = true;

    fn name(&self) -> &'static str {
        "estimated-average"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // The zero-slack endgame is a coupon collector tamed by degree
        // escalation: clearing the last balls takes ≈ 0.8·n/MAX_DEGREE
        // rounds at m = n, hence the n-proportional term. Keeping the
        // budget within a small multiple of that matters: an infeasible
        // instance (crashed bins shrinking live capacity below m) should
        // error out fast instead of looping at full probe degree.
        256 + 32 * (64 - (spec.balls() + spec.bins() as u64).leading_zeros()) + spec.bins() / 128
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        let n = ctx.spec.bins();
        for _ in 0..self.effective_degree(ctx.round, n) {
            out.push(rng.below(n));
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, _arrivals: u32) -> BinGrant {
        // Never exceed the balanced target: completion ⇒ perfect balance.
        BinGrant::up_to(self.threshold.saturating_sub(load))
    }

    fn select_commits(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        options: &[CommitOption],
        picks: &mut Vec<u32>,
    ) {
        if ctx.round >= self.retry_cap {
            // Desperation: the estimate gate is off; take the least-
            // loaded accepting probe so the run always terminates.
            let best = options
                .iter()
                .enumerate()
                .min_by_key(|(i, o)| (o.load_before, *i))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            picks.push(best);
            return;
        }
        // The first accepted probe is the placement candidate; the whole
        // sample estimates the average. Integer form of
        // `candidate ≤ mean(sample)`: cand · |sample| ≤ Σ sample.
        let candidate = options[0];
        let sum: u64 = options.iter().map(|o| o.load_before as u64).sum();
        if candidate.load_before as u64 * options.len() as u64 <= sum {
            picks.push(0);
        }
        // else: decline the round entirely — the retry the paper counts.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completion_means_perfect_balance() {
        let spec = ProblemSpec::new(1 << 14, 1 << 10).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(1).with_validation(true))
            .run(EstimatedAverage::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(
            out.max_load(),
            spec.ceil_avg(),
            "hard cap makes the balanced target exact"
        );
        assert_eq!(out.gap(), 0);
    }

    #[test]
    fn mean_retries_stay_constant_ish() {
        // Σ_r active(r) / m − 1 = retries per ball; the paper's claim is
        // that it is O(1). Allow generous slack — the point is that it
        // does not scale with n (the oracle pins the flatness claim).
        for n_log in [8u32, 10, 12] {
            let n = 1u32 << n_log;
            let spec = ProblemSpec::new(4 * n as u64, n).unwrap();
            let out = Simulator::new(spec, RunConfig::seeded(2).with_trace(true))
                .run(EstimatedAverage::new(spec))
                .unwrap();
            let trace = out.trace.as_ref().expect("trace requested");
            let probed: u64 = trace.records().iter().map(|r| r.active_before).sum();
            let retries = probed as f64 / spec.balls() as f64 - 1.0;
            assert!(
                retries < 4.0,
                "n = 2^{n_log}: mean retries {retries:.2} not constant-like"
            );
        }
    }

    #[test]
    fn m_equals_n_endgame_terminates_quickly() {
        // Hardest case: threshold 1, last balls must find empty bins.
        let spec = ProblemSpec::new(1 << 12, 1 << 12).unwrap();
        let p = EstimatedAverage::new(spec);
        let out = Simulator::new(spec, RunConfig::seeded(3).with_validation(true))
            .run(p)
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.max_load(), 1, "perfect balance at m = n");
        assert!(
            out.rounds <= p.retry_cap() + 40,
            "degree escalation should finish the tail fast, took {}",
            out.rounds
        );
    }

    #[test]
    fn single_option_always_commits() {
        let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
        let p = EstimatedAverage::new(spec);
        let ctx = RoundContext {
            spec,
            round: 0,
            active: 1,
            placed: 0,
            seed: 0,
        };
        let options = [CommitOption {
            bin: 3,
            slot: 0,
            load_before: 31,
        }];
        let mut picks = Vec::new();
        p.select_commits(&ctx, BallContext { ball: 0 }, &options, &mut picks);
        assert_eq!(picks, vec![0], "1-sample mean equals the candidate");
    }

    #[test]
    fn overfull_candidate_declines_until_desperation() {
        let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
        let p = EstimatedAverage::with_params(spec, 3, 4);
        let options = [
            CommitOption {
                bin: 0,
                slot: 0,
                load_before: 9,
            },
            CommitOption {
                bin: 1,
                slot: 0,
                load_before: 2,
            },
            CommitOption {
                bin: 2,
                slot: 0,
                load_before: 1,
            },
        ];
        let mut picks = Vec::new();
        let gated = RoundContext {
            spec,
            round: 0,
            active: 1,
            placed: 0,
            seed: 0,
        };
        p.select_commits(&gated, BallContext { ball: 0 }, &options, &mut picks);
        assert!(picks.is_empty(), "candidate above sample mean is rejected");
        let desperate = RoundContext {
            spec,
            round: 4,
            active: 1,
            placed: 0,
            seed: 0,
        };
        p.select_commits(&desperate, BallContext { ball: 0 }, &options, &mut picks);
        assert_eq!(picks, vec![2], "desperation takes the least-loaded probe");
    }

    #[test]
    #[should_panic(expected = "probes must be in 1..=8")]
    fn zero_probes_rejected() {
        let spec = ProblemSpec::new(16, 4).unwrap();
        let _ = EstimatedAverage::with_params(spec, 0, 8);
    }
}
