//! Batched multiple-choice allocation (\[BCE+12\], "Multiple-choice
//! balanced allocation in (almost) parallel").
//!
//! Balls arrive in batches of size `B`. Within a batch every ball samples
//! two bins and commits to the one that was less loaded *at the start of
//! the batch* — all decisions in a batch use the same stale load vector,
//! which is exactly what a batch of parallel two-choice players can
//! observe. Larger batches mean staler information and a (slightly)
//! larger gap; \[BCE+12\] show the gap stays `O(log n)`-free, i.e.
//! comparable to sequential two-choice, for `B = O(n)`.
//!
//! Each batch is one engine round: bins accept every request and attach
//! their round-start load ([`CommitOption::load_before`]); the ball picks
//! the smaller.
//!
//! [`CommitOption::load_before`]: pba_core::CommitOption

use crate::choices::FixedChoices;
use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, CommitOption, RoundContext};
use pba_core::rng::SplitMix64;
use pba_core::{ProblemSpec, RoundProtocol};

/// Two-choice allocation in batches of `B` balls.
#[derive(Debug, Clone, Copy)]
pub struct BatchedTwoChoice {
    spec: ProblemSpec,
    batch: u64,
}

impl BatchedTwoChoice {
    /// Batch size `B ≥ 1`.
    pub fn new(spec: ProblemSpec, batch: u64) -> Self {
        assert!(batch >= 1);
        Self { spec, batch }
    }

    /// The batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Number of batches (= rounds).
    pub fn batches(&self) -> u64 {
        self.spec.balls().div_ceil(self.batch)
    }
}

impl RoundProtocol for BatchedTwoChoice {
    type BallState = FixedChoices;

    const NEEDS_COMMIT_CHOICE: bool = true;

    fn name(&self) -> &'static str {
        "batched-two-choice"
    }

    fn round_budget(&self, _spec: &ProblemSpec) -> u32 {
        (self.batches() + 1).min(u32::MAX as u64) as u32
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        ball: BallContext,
        state: &mut FixedChoices,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        // Only the current batch participates; everyone else stays silent
        // and remains active.
        let batch_index = ball.ball as u64 / self.batch;
        if batch_index == ctx.round as u64 {
            for &bin in state.ensure(2, ctx.spec.bins(), rng) {
                out.push(bin);
            }
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, _load: u32, arrivals: u32) -> BinGrant {
        BinGrant {
            accept: arrivals,
            want: arrivals,
        }
    }

    fn pick_commit(
        &self,
        _ctx: &RoundContext,
        _ball: BallContext,
        options: &[CommitOption],
    ) -> usize {
        // Stale-information two-choice: compare loads from the batch
        // start, ignore within-batch arrivals (slots).
        options
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.load_before)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{LoadStats, RunConfig, Simulator};

    #[test]
    fn completes_in_m_over_b_rounds() {
        let spec = ProblemSpec::new(1 << 14, 1 << 8).unwrap();
        let p = BatchedTwoChoice::new(spec, 1 << 10);
        let batches = p.batches();
        let out = Simulator::new(spec, RunConfig::seeded(1)).run(p).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.rounds as u64, batches);
    }

    #[test]
    fn batch_of_one_matches_sequential_two_choice_quality() {
        let n = 1u32 << 8;
        let spec = ProblemSpec::new((n as u64) * 64, n).unwrap();
        let batched = Simulator::new(spec, RunConfig::seeded(3))
            .run(BatchedTwoChoice::new(spec, 1))
            .unwrap();
        let seq_gap = LoadStats::from_loads(&crate::seq::GreedyD::two_choice(spec).run(3)).gap();
        // B = 1 IS sequential two-choice (fresh loads every ball).
        assert!(
            batched.gap() <= seq_gap + 2,
            "batched {} vs seq {seq_gap}",
            batched.gap()
        );
    }

    #[test]
    fn larger_batches_do_not_collapse_quality() {
        // [BCE+12]: gap stays small for B = O(n).
        let n = 1u32 << 9;
        let spec = ProblemSpec::new((n as u64) * 32, n).unwrap();
        let g_n = Simulator::new(spec, RunConfig::seeded(5))
            .run(BatchedTwoChoice::new(spec, n as u64))
            .unwrap()
            .gap();
        let single = Simulator::new(spec, RunConfig::seeded(5))
            .run(crate::SingleChoice::new(spec))
            .unwrap()
            .gap();
        assert!(g_n < single, "batched(B=n) {g_n} vs single-choice {single}");
        assert!(g_n <= 12, "gap {g_n}");
    }

    #[test]
    fn staleness_monotonicity_roughly_holds() {
        let n = 1u32 << 9;
        let spec = ProblemSpec::new((n as u64) * 16, n).unwrap();
        let small = Simulator::new(spec, RunConfig::seeded(7))
            .run(BatchedTwoChoice::new(spec, (n / 4) as u64))
            .unwrap()
            .gap();
        let huge = Simulator::new(spec, RunConfig::seeded(7))
            .run(BatchedTwoChoice::new(spec, spec.balls()))
            .unwrap()
            .gap();
        // One giant batch = fully stale (all zeros) = random-ish placement
        // among pairs; must be no better than mildly stale batches.
        assert!(huge >= small, "huge {huge} vs small {small}");
    }
}
