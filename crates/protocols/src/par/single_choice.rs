//! One-shot uniform placement — the naive baseline both papers start from.
//!
//! Every ball contacts one uniformly random bin; bins accept everything.
//! One round, `m` messages, and a maximal load of
//! `m/n + Θ(√((m/n)·log n))` for `m ≥ n log n` (Chernoff), or
//! `Θ(log n / log log n)` at `m = n`. Experiment E1 reproduces both
//! regimes.

use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// The single-choice protocol (degree 1, no rejection, one round).
#[derive(Debug, Clone, Copy)]
pub struct SingleChoice {
    spec: ProblemSpec,
}

impl SingleChoice {
    /// Create for `spec`.
    pub fn new(spec: ProblemSpec) -> Self {
        Self { spec }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }
}

impl RoundProtocol for SingleChoice {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "single-choice"
    }

    fn round_budget(&self, _spec: &ProblemSpec) -> u32 {
        2 // terminates after round 0; budget 2 guards regressions
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        out.push(rng.below(ctx.spec.bins()));
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, _load: u32, arrivals: u32) -> BinGrant {
        // Accept everything; "want" equals arrivals so no bin ever counts
        // as underloaded (there is no threshold to miss).
        BinGrant {
            accept: arrivals,
            want: arrivals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_analysis::predict::single_choice_gap;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_in_one_round() {
        let spec = ProblemSpec::new(100_000, 256).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(1))
            .run(SingleChoice::new(spec))
            .unwrap();
        assert_eq!(out.rounds, 1);
        assert!(out.is_complete());
        assert_eq!(out.messages.requests, 100_000);
        assert_eq!(out.messages.commits, 100_000);
    }

    #[test]
    fn gap_matches_chernoff_scale_heavy_regime() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 8, n).unwrap(); // m/n = 256
        let out = Simulator::new(spec, RunConfig::seeded(7))
            .run(SingleChoice::new(spec))
            .unwrap();
        let gap = out.gap() as f64;
        let predicted = single_choice_gap(spec.balls(), n); // ≈ √(2·256·ln1024) ≈ 60
        assert!(gap > predicted * 0.4, "gap {gap} vs predicted {predicted}");
        assert!(gap < predicted * 2.0, "gap {gap} vs predicted {predicted}");
    }

    #[test]
    fn no_underloaded_bins_by_definition() {
        let spec = ProblemSpec::new(10_000, 64).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(3))
            .run(SingleChoice::new(spec))
            .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.records()[0].underloaded_bins, 0);
    }
}
