//! Non-adaptive `r`-round parallel GREEDY in the threshold formulation of
//! Adler, Chakrabarti, Mitzenmacher & Rasmussen (\[ACMR98\]).
//!
//! Each ball fixes `d` uniform bins and communicates only with them. In
//! round `i < r−1` a bin accepts requests only while its load stays below
//! the round threshold `τ_i` (a rising schedule); in the final round bins
//! accept everything and each ball commits to the accepting bin where it
//! would sit *lowest* (bins attach their height to accept messages — the
//! engine's [`CommitOption::load_before`] + slot).
//!
//! ACMR98 show such symmetric non-adaptive algorithms achieve max load
//! `Θ((log n/log log n)^{1/r})`-flavoured trade-offs in `r` rounds and no
//! better; experiment E9 reproduces the decreasing-load-in-`r` shape.
//!
//! [`CommitOption::load_before`]: pba_core::CommitOption

use crate::choices::FixedChoices;
use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, CommitOption, Flow, RoundContext};
use pba_core::rng::SplitMix64;
use pba_core::trace::RoundRecord;
use pba_core::{ProblemSpec, RoundProtocol};

/// r-round non-adaptive parallel GREEDY with `d` choices.
#[derive(Debug, Clone)]
pub struct AdlerGreedy {
    spec: ProblemSpec,
    d: u32,
    rounds: u32,
    thresholds: Vec<u32>,
}

impl AdlerGreedy {
    /// `d` choices, `r ≥ 1` rounds, automatic threshold schedule
    /// `τ_i = base_i + ⌈s^{i+1}⌉` with `s = (ln n/ln ln n)^{1/r}` (the
    /// ACMR98 load scale) and `base_i` the progressive fill `⌈m(i+1)/(nr)⌉`.
    pub fn new(spec: ProblemSpec, d: u32, rounds: u32) -> Self {
        assert!((1..=crate::choices::MAX_DEGREE as u32).contains(&d));
        assert!(rounds >= 1);
        let n = spec.bins() as f64;
        let ln_n = n.max(16.0).ln();
        let s = (ln_n / ln_n.ln()).powf(1.0 / rounds as f64);
        let thresholds = (0..rounds)
            .map(|i| {
                let base = (spec.balls() * (i as u64 + 1))
                    .div_ceil(spec.bins() as u64 * rounds as u64) as u32;
                base + s.powi(i as i32 + 1).ceil() as u32
            })
            .collect();
        Self {
            spec,
            d,
            rounds,
            thresholds,
        }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// Explicit threshold schedule (length = rounds; the last entry is
    /// ignored because the final round accepts everything).
    pub fn with_thresholds(spec: ProblemSpec, d: u32, thresholds: Vec<u32>) -> Self {
        assert!(!thresholds.is_empty());
        assert!((1..=crate::choices::MAX_DEGREE as u32).contains(&d));
        let rounds = thresholds.len() as u32;
        Self {
            spec,
            d,
            rounds,
            thresholds,
        }
    }

    /// The round count `r`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The threshold schedule.
    pub fn thresholds(&self) -> &[u32] {
        &self.thresholds
    }

    fn is_final_round(&self, round: u32) -> bool {
        round + 1 >= self.rounds
    }
}

impl RoundProtocol for AdlerGreedy {
    type BallState = FixedChoices;

    const NEEDS_COMMIT_CHOICE: bool = true;

    fn name(&self) -> &'static str {
        "adler-greedy"
    }

    fn round_budget(&self, _spec: &ProblemSpec) -> u32 {
        self.rounds + 1
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        state: &mut FixedChoices,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        for &bin in state.ensure(self.d as usize, ctx.spec.bins(), rng) {
            out.push(bin);
        }
    }

    fn bin_grant(&self, ctx: &RoundContext, _bin: u32, load: u32, arrivals: u32) -> BinGrant {
        if self.is_final_round(ctx.round) {
            // GREEDY commit round: accept everything; balls pick the
            // lowest landing height themselves.
            BinGrant {
                accept: arrivals,
                want: arrivals,
            }
        } else {
            let tau = self.thresholds[ctx.round as usize];
            BinGrant::up_to(tau.saturating_sub(load))
        }
    }

    fn pick_commit(
        &self,
        _ctx: &RoundContext,
        _ball: BallContext,
        options: &[CommitOption],
    ) -> usize {
        // Land as low as possible: height = load at round start + number
        // of accepted requests ahead of us at that bin.
        options
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.load_before + o.slot)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn after_round(&mut self, ctx: &RoundContext, _record: &RoundRecord) -> Flow {
        if self.is_final_round(ctx.round) {
            Flow::Stop // all balls committed (final round accepts all)
        } else {
            Flow::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{LoadStats, RunConfig, Simulator};

    fn balanced(n: u32) -> ProblemSpec {
        ProblemSpec::new(n as u64, n).unwrap()
    }

    fn gap_for(r: u32, seed: u64) -> u32 {
        let spec = balanced(1 << 14);
        let out = Simulator::new(spec, RunConfig::seeded(seed))
            .run(AdlerGreedy::new(spec, 2, r))
            .unwrap();
        assert!(
            out.is_complete(),
            "r={r} left {} unallocated",
            out.unallocated
        );
        // The run may finish early when the threshold rounds already place
        // everyone; it never exceeds r.
        assert!(out.rounds <= r, "r={r} but ran {} rounds", out.rounds);
        LoadStats::from_loads(&out.loads).gap()
    }

    #[test]
    fn completes_within_r_rounds() {
        for r in [1, 2, 3, 5] {
            let _ = gap_for(r, 1);
        }
    }

    #[test]
    fn one_round_is_greedy_parallel_baseline() {
        // r = 1: pure parallel GREEDY — everything lands at once, load is
        // the max over bins of (stale-info d-choice pileup), well above
        // the multi-round result but far below single-choice.
        let spec = balanced(1 << 14);
        let g1 = gap_for(1, 3);
        let single = Simulator::new(spec, RunConfig::seeded(3))
            .run(crate::SingleChoice::new(spec))
            .unwrap()
            .gap();
        assert!(
            g1 <= single,
            "1-round greedy {g1} vs single choice {single}"
        );
    }

    #[test]
    fn more_rounds_lower_load() {
        let g1 = gap_for(1, 5);
        let g3 = gap_for(3, 5);
        let g5 = gap_for(5, 5);
        assert!(g3 <= g1, "g1={g1} g3={g3}");
        assert!(g5 <= g3 + 1, "g3={g3} g5={g5}");
    }

    #[test]
    fn explicit_thresholds_respected_in_nonfinal_rounds() {
        let spec = balanced(1 << 12);
        let p = AdlerGreedy::with_thresholds(spec, 2, vec![1, 2, 1000]);
        let out = Simulator::new(spec, RunConfig::seeded(7)).run(p).unwrap();
        let recs = out.trace.as_ref().unwrap().records();
        // After round 0 no bin exceeds τ_0 = 1; after round 1, τ_1 = 2.
        assert!(recs[0].max_load <= 1);
        assert!(recs[1].max_load <= 2);
    }

    #[test]
    fn heavy_case_supported() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) * 16, n).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(9))
            .run(AdlerGreedy::new(spec, 2, 4))
            .unwrap();
        assert!(out.is_complete());
        // Progressive-fill bases keep the gap moderate even at m/n = 16.
        assert!(out.gap() <= 16, "gap {}", out.gap());
    }
}
