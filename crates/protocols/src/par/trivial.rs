//! The deterministic `n`-round fallback: balls try all bins one by one.
//!
//! Ball `b` contacts bin `(b + r) mod n` in round `r`; bins use the fixed
//! threshold `⌈m/n⌉` throughout. Because bins only ever fill up and every
//! ball visits every bin within `n` rounds, the allocation completes in at
//! most `n` rounds *deterministically* — the "Note on Success
//! Probability" algorithm covering `n < log log(m/n)`, where the
//! randomized bound is meaningless.

use pba_core::protocol::{BallContext, BinGrant, ChoiceSink, NoBallState, RoundContext};
use pba_core::rng::SplitMix64;
use pba_core::{ProblemSpec, RoundProtocol};

/// Deterministic round-robin sweep (no randomness at all).
#[derive(Debug, Clone, Copy)]
pub struct TrivialRoundRobin {
    spec: ProblemSpec,
}

impl TrivialRoundRobin {
    /// Create for `spec`.
    pub fn new(spec: ProblemSpec) -> Self {
        Self { spec }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }
}

impl RoundProtocol for TrivialRoundRobin {
    type BallState = NoBallState;

    fn name(&self) -> &'static str {
        "trivial-round-robin"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        // Completion within n rounds is a theorem; +1 slack for the final
        // check.
        spec.bins() + 1
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        ball: BallContext,
        _state: &mut NoBallState,
        _rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        let n = ctx.spec.bins();
        out.push((ball.ball % n + ctx.round % n) % n);
    }

    fn bin_grant(&self, ctx: &RoundContext, _bin: u32, load: u32, _arrivals: u32) -> BinGrant {
        BinGrant::up_to(ctx.spec.ceil_avg().saturating_sub(load))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_within_n_rounds_with_perfect_balance() {
        let spec = ProblemSpec::new(10_000, 32).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(0))
            .run(TrivialRoundRobin::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.rounds <= 32);
        assert_eq!(out.gap(), 0); // threshold ⌈m/n⌉ ⇒ perfectly balanced
    }

    #[test]
    fn is_seed_independent() {
        let spec = ProblemSpec::new(777, 13).unwrap();
        let a = Simulator::new(spec, RunConfig::seeded(1))
            .run(TrivialRoundRobin::new(spec))
            .unwrap();
        let b = Simulator::new(spec, RunConfig::seeded(999))
            .run(TrivialRoundRobin::new(spec))
            .unwrap();
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn worst_case_adversarial_m_close_to_capacity() {
        // m = n·⌈m/n⌉ exactly: zero slack anywhere, still completes.
        let spec = ProblemSpec::new(31 * 17, 17).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(0))
            .run(TrivialRoundRobin::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert!(out.loads.iter().all(|&l| l == 31));
    }

    #[test]
    fn single_bin_degenerate_case() {
        let spec = ProblemSpec::new(100, 1).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(0))
            .run(TrivialRoundRobin::new(spec))
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.rounds, 1);
        assert_eq!(out.loads, vec![100]);
    }
}
