//! Parallel adaptive two-choice — the natural "just parallelize
//! GREEDY\[2\]" heuristic, included as a foil for `A_heavy`.
//!
//! Every round, each unallocated ball samples `d = 2` *fresh* uniform
//! bins (adaptive, unlike \[ACMR98\]); bins accept up to the capacity
//! `⌈m/n⌉ + slack` and attach their round-start load to accept messages;
//! a multi-accepted ball commits to the lower landing height.
//!
//! This protocol reaches the same `m/n + O(1)` load as `A_heavy` (the
//! capacity is structural) but — lacking the undershooting thresholds —
//! it inherits [`crate::FixedThreshold`]'s full-bin-hammering tail, with
//! the second choice squaring the per-round rejection probability: the
//! tail is `Θ(log n)/2`-flavoured instead of `Θ(log log(m/n))`. At
//! moderate `n` the round counts are close (`log n ≈ 2·log log(m/n)`
//! there); the unambiguous cost is **twice the messages per round**, and
//! the asymptotic round separation belongs to `A_heavy`.

use pba_core::protocol::{
    BallContext, BinGrant, ChoiceSink, CommitOption, NoBallState, RoundContext,
};
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};

/// Adaptive parallel d-choice with fixed capacity.
#[derive(Debug, Clone, Copy)]
pub struct ParallelTwoChoice {
    spec: ProblemSpec,
    d: u32,
    capacity: u32,
}

impl ParallelTwoChoice {
    /// `d = 2`, capacity `⌈m/n⌉ + slack`, `slack ≥ 1`.
    pub fn new(spec: ProblemSpec, slack: u32) -> Self {
        Self::with_degree(spec, 2, slack)
    }

    /// Custom degree `1 ≤ d ≤ 8`.
    pub fn with_degree(spec: ProblemSpec, d: u32, slack: u32) -> Self {
        assert!((1..=8).contains(&d));
        assert!(slack >= 1, "slack must be ≥ 1 for guaranteed completion");
        let capacity = spec.ceil_avg().saturating_add(slack);
        Self { spec, d, capacity }
    }

    /// The problem instance this protocol was configured for.
    pub fn spec(&self) -> ProblemSpec {
        self.spec
    }

    /// The per-bin capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl RoundProtocol for ParallelTwoChoice {
    type BallState = NoBallState;

    const NEEDS_COMMIT_CHOICE: bool = true;

    fn name(&self) -> &'static str {
        "parallel-two-choice"
    }

    fn round_budget(&self, spec: &ProblemSpec) -> u32 {
        300 * (64 - (spec.balls() + spec.bins() as u64).leading_zeros())
    }

    fn ball_choices(
        &self,
        ctx: &RoundContext,
        _ball: BallContext,
        _state: &mut NoBallState,
        rng: &mut SplitMix64,
        out: &mut ChoiceSink<'_>,
    ) {
        for _ in 0..self.d {
            out.push(rng.below(ctx.spec.bins()));
        }
    }

    fn bin_grant(&self, _ctx: &RoundContext, _bin: u32, load: u32, _arrivals: u32) -> BinGrant {
        BinGrant::up_to(self.capacity.saturating_sub(load))
    }

    fn pick_commit(
        &self,
        _ctx: &RoundContext,
        _ball: BallContext,
        options: &[CommitOption],
    ) -> usize {
        options
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.load_before + o.slot)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::{RunConfig, Simulator};

    #[test]
    fn completes_with_capped_load() {
        let spec = ProblemSpec::new(1 << 16, 1 << 8).unwrap();
        let p = ParallelTwoChoice::new(spec, 2);
        let cap = p.capacity();
        let out = Simulator::new(spec, RunConfig::seeded(1)).run(p).unwrap();
        assert!(out.is_complete());
        assert!(out.max_load() <= cap);
        assert!(out.gap() <= 2);
    }

    #[test]
    fn fewer_rounds_than_degree_one_retry() {
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 6, n).unwrap();
        let two = Simulator::new(spec, RunConfig::seeded(3))
            .run(ParallelTwoChoice::new(spec, 1))
            .unwrap();
        let one = Simulator::new(spec, RunConfig::seeded(3))
            .run(crate::FixedThreshold::new(spec, 1))
            .unwrap();
        assert!(
            two.rounds <= one.rounds,
            "2-choice {} rounds vs 1-choice {} rounds",
            two.rounds,
            one.rounds
        );
    }

    #[test]
    fn pays_double_the_messages_of_threshold_heavy() {
        // The paper's point: adaptivity of the *thresholds* (not extra
        // choices) gets m/n + O(1) with degree-1 messaging. At moderate n
        // the round counts are close (log n ≈ 2·log log(m/n)), so the
        // clean separation is the message bill.
        let n = 1u32 << 10;
        let spec = ProblemSpec::new((n as u64) << 8, n).unwrap();
        let two = Simulator::new(spec, RunConfig::seeded(5))
            .run(ParallelTwoChoice::new(spec, 2))
            .unwrap();
        let heavy = Simulator::new(spec, RunConfig::seeded(5))
            .run(crate::ThresholdHeavy::new(spec))
            .unwrap();
        assert!(
            two.messages.requests as f64 >= 1.7 * heavy.messages.requests as f64,
            "2-choice {} requests vs A_heavy {}",
            two.messages.requests,
            heavy.messages.requests
        );
        // And it is never dramatically faster in rounds.
        assert!(two.rounds + 4 >= heavy.rounds);
    }

    #[test]
    fn message_cost_doubles_per_round() {
        let spec = ProblemSpec::new(1 << 14, 1 << 7).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(7))
            .run(ParallelTwoChoice::new(spec, 2))
            .unwrap();
        let r0 = out.trace.as_ref().unwrap().records()[0];
        assert_eq!(r0.requests, 2 * r0.active_before);
    }

    #[test]
    fn higher_degree_supported() {
        let spec = ProblemSpec::new(1 << 12, 1 << 6).unwrap();
        let out = Simulator::new(spec, RunConfig::seeded(9))
            .run(ParallelTwoChoice::with_degree(spec, 4, 2))
            .unwrap();
        assert!(out.is_complete());
    }
}
