//! Fixed worker pool with a scope-like, panic-propagating batch entry point.
//!
//! The pool intentionally exposes a *single* execution primitive,
//! [`ThreadPool::run_indexed`]: run a `Sync` closure once for each index in
//! `0..tasks`, distributing indices over the workers *and* the calling
//! thread, and return only when every index has completed. All higher-level
//! primitives (chunked iteration, map, reduce) are built on top of it in
//! sibling modules. Keeping the unsafe lifetime-erasure confined to this one
//! entry point makes the soundness argument short: the caller blocks until
//! the job's completion latch fires *and* every late-waking worker has left
//! the job slot, so every borrow smuggled to a worker is dead before
//! `run_indexed` returns.
//!
//! ## Allocation-free dispatch
//!
//! Dispatch reuses one long-lived job slot per pool instead of allocating a
//! job object per call: the caller publishes `(ctx, call, tasks)` under the
//! slot mutex with a bumped generation counter, wakes the workers through a
//! condvar, participates, and then retires the slot. Steady-state
//! `run_indexed` therefore performs **zero heap allocations** — a property
//! the engine's per-round allocation test (`tests/alloc_steady_state.rs`)
//! depends on. Concurrent callers are serialized by a dispatch mutex; a
//! nested `run_indexed` on the *same* pool from inside a task runs inline on
//! the calling lane (results are index-keyed, so inlining cannot change
//! them), which also rules out self-deadlock on the dispatch mutex.
//!
//! ## Utilization counters
//!
//! Every pool keeps cheap, always-on counters — jobs dispatched, task
//! indices executed — as relaxed atomics (one `fetch_add` per *chunk*, not
//! per item, for the engine's passes). Per-lane busy time additionally
//! requires two clock reads per job per lane and is therefore off by
//! default; [`ThreadPool::set_timing`] turns it on. [`ThreadPool::stats`]
//! snapshots everything as a [`PoolStats`], and
//! [`PoolStats::since`] diffs two snapshots to scope counters to one run —
//! this is what the engine reports through its `MetricsSink` (see
//! `pba-core`).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Snapshot of a pool's utilization counters.
///
/// Obtained from [`ThreadPool::stats`]; use [`PoolStats::since`] to diff
/// two snapshots and scope the counters to a region of interest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `run_indexed` invocations (including inline fast-path runs).
    pub jobs: u64,
    /// Total task indices executed (for chunked passes: chunks, not items).
    pub tasks: u64,
    /// Busy nanoseconds per lane (`lanes()` entries; workers first, the
    /// calling thread last). All zero unless [`ThreadPool::set_timing`]
    /// was enabled.
    pub busy_nanos: Vec<u64>,
}

impl PoolStats {
    /// Counters accumulated since `earlier` (a previous snapshot of the
    /// same pool). Saturates rather than panicking on mismatched inputs.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        let busy_nanos = self
            .busy_nanos
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(earlier.busy_nanos.get(i).copied().unwrap_or(0)))
            .collect();
        PoolStats {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            busy_nanos,
        }
    }

    /// Total busy nanoseconds across all lanes.
    pub fn total_busy_nanos(&self) -> u64 {
        self.busy_nanos.iter().sum()
    }
}

/// Shared counter block; workers hold an `Arc` so counters survive
/// arbitrarily interleaved jobs without locking.
struct Counters {
    timing: AtomicBool,
    jobs: AtomicU64,
    tasks: AtomicU64,
    /// One slot per lane: workers `0..threads`, the caller at `threads`.
    busy: Vec<AtomicU64>,
}

impl Counters {
    fn new(lanes: usize) -> Self {
        Self {
            timing: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            busy: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Time `f` into lane `lane`'s busy counter when timing is enabled;
    /// otherwise run it with zero clock reads.
    fn timed<R>(&self, lane: usize, f: impl FnOnce() -> R) -> R {
        if self.timing.load(Ordering::Relaxed) {
            let start = Instant::now();
            let r = f();
            self.busy[lane].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            r
        } else {
            f()
        }
    }
}

/// The pool's single, reusable job slot. All fields are guarded by
/// `Shared::slot`; publication of a new job bumps `seq` so workers can tell
/// a fresh job from one they already drained.
struct Slot {
    /// Generation counter; workers remember the last value they acted on.
    seq: u64,
    /// Type-erased pointer to the caller's closure (`&F`). Null between jobs.
    ctx: *const (),
    /// Monomorphized trampoline that invokes `*ctx` with an index.
    call: Option<unsafe fn(*const (), usize)>,
    /// Total number of task indices in the current job.
    tasks: usize,
    /// True while the current job admits new participants.
    live: bool,
    /// Workers currently inside `participate` for the current job.
    participants: usize,
    /// Set once every task index of the current job has completed.
    done: bool,
    /// Set by `Drop` to terminate the workers.
    shutdown: bool,
}

// SAFETY: `ctx` points to a closure that is `Sync` (enforced by the bounds
// on `run_indexed`), and the pointer is only dereferenced between
// publication and retirement of a job, during which the caller is blocked
// inside `run_indexed`, keeping the referent alive.
unsafe impl Send for Slot {}

/// State shared between the caller and the workers.
struct Shared {
    slot: Mutex<Slot>,
    /// Workers wait here for `slot.seq` to change.
    job_cv: Condvar,
    /// The caller waits here for `slot.done` and `slot.participants == 0`.
    done_cv: Condvar,
    /// Next task index to claim (reset per job).
    next: AtomicUsize,
    /// Task indices not yet completed (reset per job).
    remaining: AtomicUsize,
    /// Set when any task of the current job panicked.
    panicked: AtomicBool,
}

impl Shared {
    /// Claim and run indices of the current job until it is drained.
    ///
    /// Returns the number of indices this call executed. Panics inside the
    /// user closure are captured (so a worker thread never dies) and
    /// re-raised on the caller.
    fn participate(&self, ctx: *const (), call: unsafe fn(*const (), usize), tasks: usize) -> u64 {
        let mut executed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                return executed;
            }
            executed += 1;
            let result = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: see `unsafe impl Send for Slot` — the caller keeps
                // the closure alive until the job is retired, and we only
                // run between publication and retirement.
                unsafe { call(ctx, i) }
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut slot = self.slot.lock().unwrap();
                slot.done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

thread_local! {
    /// Address of the `Shared` block of the pool whose job this thread is
    /// currently executing (0 when not inside a pool task). Used to run
    /// same-pool nested `run_indexed` calls inline instead of deadlocking
    /// on the dispatch mutex.
    static ACTIVE_POOL: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard marking this thread as executing tasks of the pool at `addr`.
struct ActivePoolGuard {
    prev: usize,
}

impl ActivePoolGuard {
    fn enter(addr: usize) -> Self {
        let prev = ACTIVE_POOL.with(|c| c.replace(addr));
        Self { prev }
    }
}

impl Drop for ActivePoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        ACTIVE_POOL.with(|c| c.set(prev));
    }
}

/// A fixed pool of worker threads for bulk-synchronous array passes.
///
/// The pool is cheap to share (`&ThreadPool` is all the API needs) and
/// long-lived: workers park on a condvar between jobs and dispatch reuses a
/// single job slot, so steady-state `run_indexed` allocates nothing.
/// Dropping the pool shuts the workers down and joins them.
///
/// # Examples
///
/// ```
/// use pba_par::ThreadPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.run_indexed(100, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// assert!(pool.stats().tasks >= 100);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes concurrent `run_indexed` callers over the single job slot.
    dispatch: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    counters: Arc<Counters>,
}

impl ThreadPool {
    /// Create a pool with `threads` worker threads.
    ///
    /// `threads == 0` is allowed and yields a pool that executes everything
    /// on the calling thread (useful for tests and for forcing sequential
    /// execution through the same code path).
    pub fn new(threads: usize) -> Self {
        let counters = Arc::new(Counters::new(threads + 1));
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                seq: 0,
                ctx: std::ptr::null(),
                call: None,
                tasks: 0,
                live: false,
                participants: 0,
                done: false,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("pba-par-{idx}"))
                    .spawn(move || worker_loop(shared, counters, idx))
                    .expect("failed to spawn pba-par worker")
            })
            .collect();
        Self {
            shared,
            dispatch: Mutex::new(()),
            workers,
            threads,
            counters,
        }
    }

    /// Create a pool sized to the machine: `available_parallelism() - 1`
    /// workers (the calling thread is the final lane), overridable with the
    /// `PBA_THREADS` environment variable (total lanes, minimum 1).
    pub fn with_default_size() -> Self {
        Self::new(default_lanes().saturating_sub(1))
    }

    /// Number of execution lanes: worker threads plus the calling thread.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.threads + 1
    }

    /// Enable or disable per-lane busy-time measurement.
    ///
    /// Off by default: the task/job counters are always on (relaxed atomic
    /// adds), but busy time costs two `Instant` reads per job per lane, so
    /// it is opt-in. Returns the previous setting.
    pub fn set_timing(&self, enabled: bool) -> bool {
        self.counters.timing.swap(enabled, Ordering::Relaxed)
    }

    /// Snapshot the utilization counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            tasks: self.counters.tasks.load(Ordering::Relaxed),
            busy_nanos: self
                .counters
                .busy
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Address used as this pool's identity for nesting detection.
    fn shared_addr(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// Run `f(i)` for every `i in 0..tasks`, in parallel, returning when all
    /// have completed. The calling thread participates in the work.
    ///
    /// Indices are claimed dynamically from a shared counter, so uneven task
    /// costs are load-balanced automatically. A nested call on the same pool
    /// from inside a task runs the whole batch inline on the calling lane.
    ///
    /// # Panics
    ///
    /// If any invocation of `f` panics, the panic is re-raised here (after
    /// all other indices have finished or been claimed).
    pub fn run_indexed<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        self.counters
            .tasks
            .fetch_add(tasks as u64, Ordering::Relaxed);
        let nested = ACTIVE_POOL.with(|c| c.get()) == self.shared_addr();
        if tasks == 1 || self.threads == 0 || nested {
            self.counters.timed(self.threads, || {
                for i in 0..tasks {
                    f(i);
                }
            });
            return;
        }

        unsafe fn call_impl<F: Fn(usize) + Sync>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` was created from `&f` below and `f` outlives the
            // job (the caller blocks until the slot is retired and empty of
            // participants before returning).
            let f = unsafe { &*(ctx as *const F) };
            f(i);
        }

        // One job at a time: the slot is a single broadcast cell.
        let _dispatch = self.dispatch.lock().unwrap();
        let shared = &*self.shared;
        shared.next.store(0, Ordering::Relaxed);
        shared.remaining.store(tasks, Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        {
            let mut slot = shared.slot.lock().unwrap();
            slot.seq = slot.seq.wrapping_add(1);
            slot.ctx = &f as *const F as *const ();
            slot.call = Some(call_impl::<F>);
            slot.tasks = tasks;
            slot.live = true;
            slot.done = false;
            shared.job_cv.notify_all();
        }

        {
            let _active = ActivePoolGuard::enter(self.shared_addr());
            self.counters.timed(self.threads, || {
                shared.participate(&f as *const F as *const (), call_impl::<F>, tasks)
            });
        }

        // Retire the job: wait for the last task, stop admitting workers,
        // then wait until every participant has left so the borrow of `f`
        // is provably dead.
        {
            let mut slot = shared.slot.lock().unwrap();
            while !slot.done {
                slot = shared.done_cv.wait(slot).unwrap();
            }
            slot.live = false;
            while slot.participants > 0 {
                slot = shared.done_cv.wait(slot).unwrap();
            }
            slot.ctx = std::ptr::null();
            slot.call = None;
        }

        if shared.panicked.load(Ordering::Relaxed) {
            // Release the dispatch mutex before unwinding so a propagated
            // task panic cannot poison it and wedge the pool.
            drop(_dispatch);
            resume_unwind(Box::new("a pba-par task panicked"));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, counters: Arc<Counters>, lane: usize) {
    let mut last_seen = 0u64;
    loop {
        // Wait for a job generation we have not acted on yet.
        let (ctx, call, tasks) = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.seq != last_seen {
                    last_seen = slot.seq;
                    if slot.live {
                        slot.participants += 1;
                        break (
                            slot.ctx,
                            slot.call.expect("live slot has a call"),
                            slot.tasks,
                        );
                    }
                    // Job retired before we woke; keep waiting.
                }
                slot = shared.job_cv.wait(slot).unwrap();
            }
        };
        {
            let _active = ActivePoolGuard::enter(Arc::as_ptr(&shared) as usize);
            counters.timed(lane, || shared.participate(ctx, call, tasks));
        }
        let mut slot = shared.slot.lock().unwrap();
        slot.participants -= 1;
        if slot.participants == 0 {
            shared.done_cv.notify_all();
        }
    }
}

fn default_lanes() -> usize {
    if let Ok(value) = std::env::var("PBA_THREADS") {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            return parsed.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A process-wide default pool, created lazily on first use.
///
/// Sized by `PBA_THREADS` or `available_parallelism()`. Library code that
/// does not want to thread a pool through its API can use this.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::with_default_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn zero_tasks_is_noop() {
        let pool = ThreadPool::new(2);
        pool.run_indexed(0, |_| panic!("must not run"));
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn zero_threads_runs_inline() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.lanes(), 1);
        let count = AtomicUsize::new(0);
        pool.run_indexed(17, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 17);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for round in 0..20 {
            pool.run_indexed(100, |i| {
                total.fetch_add((round * i) as u64, Ordering::Relaxed);
            });
        }
        let expected: u64 = (0..20u64).map(|r| r * 4950).sum();
        assert_eq!(total.into_inner(), expected);
    }

    #[test]
    fn borrows_from_caller_stack_are_visible() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.run_indexed(1000, |i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 499_500);
    }

    #[test]
    fn nested_same_pool_calls_run_inline() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        pool.run_indexed(8, |_| {
            pool.run_indexed(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.into_inner(), 32);
    }

    #[test]
    fn concurrent_callers_are_serialized_not_corrupted() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run_indexed(64, |i| {
                            total.fetch_add(i as u64, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 2016);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run_indexed(5, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 5);
    }

    /// Stress: many consecutive panicking jobs — varying which lane's
    /// task blows up, multiple panics per job, panics in the final task —
    /// interleaved with healthy jobs. The pool must re-raise every time,
    /// never wedge a worker, keep running healthy jobs to completion, and
    /// keep its job/task counters consistent throughout.
    #[test]
    fn panic_stress_survives_repeated_crashing_jobs() {
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        let healthy = AtomicUsize::new(0);
        let mut jobs = 0u64;
        let mut tasks = 0u64;
        for round in 0..50usize {
            // A crashing job: the panicking index moves each round so
            // every lane gets to be the one that unwinds, including the
            // last task of the batch.
            let n = 64 + round;
            let bad = round % n;
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run_indexed(n, |i| {
                    // Several tasks may panic in the same job; all must
                    // be contained by the workers.
                    if i == bad || (round % 7 == 0 && i % 13 == 0) {
                        panic!("chaos round {round} task {i}");
                    }
                });
            }));
            assert!(result.is_err(), "round {round}: panic was swallowed");
            jobs += 1;
            tasks += n as u64;
            // A healthy job straight after must run all tasks on the
            // same, still-live workers.
            pool.run_indexed(32, |_| {
                healthy.fetch_add(1, Ordering::Relaxed);
            });
            jobs += 1;
            tasks += 32;
        }
        assert_eq!(healthy.into_inner(), 50 * 32);
        let delta = pool.stats().since(&before);
        assert_eq!(delta.jobs, jobs, "job counter drifted across panics");
        assert_eq!(delta.tasks, tasks, "task counter drifted across panics");
        assert_eq!(pool.lanes(), 5, "lane count changed (4 workers + caller)");
    }

    #[test]
    fn global_pool_works() {
        let sum = AtomicU64::new(0);
        global_pool().run_indexed(64, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 2016);
    }

    #[test]
    fn counters_track_jobs_and_tasks() {
        let pool = ThreadPool::new(2);
        let before = pool.stats();
        pool.run_indexed(37, |_| {});
        pool.run_indexed(1, |_| {}); // inline fast path counts too
        let delta = pool.stats().since(&before);
        assert_eq!(delta.jobs, 2);
        assert_eq!(delta.tasks, 38);
        // Timing disabled: no lane accumulated busy time.
        assert_eq!(delta.total_busy_nanos(), 0);
        assert_eq!(delta.busy_nanos.len(), pool.lanes());
    }

    #[test]
    fn timing_accumulates_busy_nanos() {
        let pool = ThreadPool::new(2);
        assert!(!pool.set_timing(true));
        let before = pool.stats();
        pool.run_indexed(64, |_| {
            std::hint::black_box((0..2000).sum::<u64>());
        });
        let delta = pool.stats().since(&before);
        assert!(delta.total_busy_nanos() > 0);
        assert!(pool.set_timing(false));
    }

    #[test]
    fn stats_since_is_saturating() {
        let a = PoolStats {
            jobs: 1,
            tasks: 2,
            busy_nanos: vec![5],
        };
        let b = PoolStats {
            jobs: 3,
            tasks: 7,
            busy_nanos: vec![9, 4],
        };
        let d = b.since(&a);
        assert_eq!(d.jobs, 2);
        assert_eq!(d.tasks, 5);
        assert_eq!(d.busy_nanos, vec![4, 4]);
        assert_eq!(a.since(&b).jobs, 0);
    }
}
