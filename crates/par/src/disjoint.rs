//! Disjoint per-slot mutable access to a slice from concurrent tasks.
//!
//! The engine's parallel phases hand each task a disjoint set of *item
//! indices* (balls, bins, chunk slots) and let every task write its own
//! items' slots in several parallel arrays. Rust's borrow checker cannot
//! see that the index sets are disjoint, so this module provides the one
//! audited escape hatch: [`DisjointIndexMut`] erases a `&mut [T]` into a
//! shareable handle whose `index_mut` is `unsafe` with exactly one proof
//! obligation — *no two concurrent tasks touch the same index*.
//!
//! [`DisjointClaims`] backs that obligation with a runtime check in debug
//! builds: each task claims every item index it owns once per epoch, and a
//! double claim aborts the test run. Release builds compile the claim
//! table away entirely, so the check costs nothing in benchmarks.

use std::marker::PhantomData;

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU32, Ordering};

/// A shareable view of a mutable slice that hands out `&mut` access to
/// individual slots, for use by concurrent tasks with provably disjoint
/// index sets.
///
/// The handle borrows the slice for `'a`, so the underlying storage cannot
/// be moved, resized, or otherwise aliased while tasks hold the view. All
/// aliasing discipline is concentrated in [`DisjointIndexMut::index_mut`].
pub struct DisjointIndexMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the handle is only a pointer + length over a uniquely borrowed
// slice; sending or sharing it across threads is sound because every
// dereference goes through `index_mut`, whose contract requires disjoint
// indices across concurrent users. `T: Send` is required because a task on
// another thread obtains `&mut T` (i.e. ownership-like access) to slots.
unsafe impl<T: Send> Send for DisjointIndexMut<'_, T> {}
// SAFETY: as above — `&DisjointIndexMut` only enables `index_mut`, which is
// itself `unsafe` with a disjointness contract.
unsafe impl<T: Send> Sync for DisjointIndexMut<'_, T> {}

impl<'a, T> DisjointIndexMut<'a, T> {
    /// Wrap a uniquely borrowed slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to slot `index`.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that no two concurrently running tasks call
    /// `index_mut` with the same `index` (and that the caller does not hold
    /// another reference to the same slot). In the engine this is
    /// discharged by partitioning item indices over chunks and verified in
    /// debug builds by [`DisjointClaims`]. Out-of-bounds indices are
    /// rejected in all builds.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the whole point: disjoint &mut from a shared handle
    pub unsafe fn index_mut(&self, index: usize) -> &mut T {
        assert!(index < self.len, "DisjointIndexMut: index out of bounds");
        // SAFETY: `ptr` covers `len` initialized slots of a live `&mut`
        // borrow; `index` is in bounds (checked above) and the caller
        // guarantees no concurrent access to this slot.
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Debug-build verifier for the "one task per item index" invariant behind
/// [`DisjointIndexMut`].
///
/// The owner allocates one claim table up front (so steady-state rounds
/// stay allocation-free even in debug builds), calls [`begin`] once per
/// round/epoch, and every task calls [`claim`] for each item index it is
/// about to mutate. Claiming the same index twice within an epoch panics in
/// debug builds; in release builds the whole type is a zero-sized no-op.
///
/// [`begin`]: DisjointClaims::begin
/// [`claim`]: DisjointClaims::claim
pub struct DisjointClaims {
    #[cfg(debug_assertions)]
    epoch: u32,
    #[cfg(debug_assertions)]
    slots: Vec<AtomicU32>,
}

impl DisjointClaims {
    /// Build a claim table for `len` item indices.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn new(len: usize) -> Self {
        Self {
            #[cfg(debug_assertions)]
            epoch: 0,
            #[cfg(debug_assertions)]
            slots: (0..len).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Start a new epoch; prior claims are forgotten.
    pub fn begin(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.epoch = self.epoch.wrapping_add(1);
            // Epoch 0 is the table's initial value; skip it so stale slots
            // can never collide with a live epoch after wraparound.
            if self.epoch == 0 {
                self.epoch = 1;
                for slot in &self.slots {
                    slot.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Record that the calling task owns `index` for the current epoch.
    ///
    /// Panics (debug builds only) if another claim for `index` was already
    /// made this epoch — i.e. two tasks would mutate the same slot.
    #[inline]
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn claim(&self, index: usize) {
        #[cfg(debug_assertions)]
        {
            let prev = self.slots[index].swap(self.epoch, Ordering::Relaxed);
            assert_ne!(
                prev, self.epoch,
                "DisjointIndexMut invariant violated: index {index} claimed twice in one epoch"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;
    use crate::{chunk_range, Chunking};

    #[test]
    fn disjoint_writes_land() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 10_000];
        let chunking = Chunking::new(data.len(), 128, 16);
        let view = DisjointIndexMut::new(&mut data);
        pool.run_indexed(chunking.chunks(), |ci| {
            for i in chunking.range(ci) {
                // SAFETY: chunk ranges partition 0..len disjointly.
                unsafe {
                    *view.index_mut(i) = i as u64 * 3;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_is_rejected_in_all_builds() {
        let mut data = vec![0u8; 4];
        let view = DisjointIndexMut::new(&mut data);
        // SAFETY: single-threaded access; the call must panic on bounds.
        unsafe {
            *view.index_mut(4) = 1;
        }
    }

    #[test]
    fn claims_allow_one_claim_per_epoch() {
        let mut claims = DisjointClaims::new(8);
        claims.begin();
        for i in 0..8 {
            claims.claim(i);
        }
        claims.begin();
        for i in 0..8 {
            claims.claim(i); // fresh epoch: fine again
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics_in_debug() {
        let mut claims = DisjointClaims::new(4);
        claims.begin();
        claims.claim(2);
        claims.claim(2);
    }

    #[test]
    fn chunk_ranges_partition_for_claims() {
        let claims = {
            let mut c = DisjointClaims::new(1000);
            c.begin();
            c
        };
        let chunking = Chunking::new(1000, 64, 7);
        for ci in 0..chunking.chunks() {
            for i in chunk_range(1000, chunking.chunks(), ci) {
                claims.claim(i);
            }
        }
    }
}
