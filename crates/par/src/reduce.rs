//! Parallel reductions over index ranges.

use std::sync::Mutex;

use crate::iter::for_each_chunk;
use crate::pool::ThreadPool;

/// Reduce `0..len` in parallel: each chunk is folded with `fold`, and chunk
/// results are combined with `combine`. `identity` must be a neutral
/// element for `combine`.
///
/// The reduction tree shape is unspecified, so `combine` should be
/// associative and commutative for deterministic results (all uses in this
/// workspace are sums, maxima, or element-wise vector merges, which are
/// both).
///
/// # Examples
///
/// ```
/// use pba_par::{par_reduce, ThreadPool};
///
/// let pool = ThreadPool::new(2);
/// let data: Vec<u64> = (0..100_000).collect();
/// let sum = par_reduce(
///     &pool,
///     data.len(),
///     1024,
///     || 0u64,
///     |acc, r| acc + r.map(|i| data[i]).sum::<u64>(),
///     |a, b| a + b,
/// );
/// assert_eq!(sum, 100_000 * 99_999 / 2);
/// ```
pub fn par_reduce<T, Id, Fold, Combine>(
    pool: &ThreadPool,
    len: usize,
    min_chunk: usize,
    identity: Id,
    fold: Fold,
    combine: Combine,
) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    Fold: Fn(T, std::ops::Range<usize>) -> T + Sync,
    Combine: Fn(T, T) -> T + Sync,
{
    let acc = Mutex::new(identity());
    for_each_chunk(pool, len, min_chunk, |r| {
        let local = fold(identity(), r);
        let mut guard = acc.lock().unwrap();
        // Take-and-combine under the lock; combine is cheap relative to the
        // chunk fold for all workspace uses.
        let current = std::mem::replace(&mut *guard, identity());
        *guard = combine(current, local);
    });
    acc.into_inner().unwrap()
}

/// Parallel sum of `f(i)` over `0..len`.
pub fn par_sum_u64<F>(pool: &ThreadPool, len: usize, min_chunk: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    par_reduce(
        pool,
        len,
        min_chunk,
        || 0u64,
        |acc, r| acc + r.map(&f).sum::<u64>(),
        |a, b| a + b,
    )
}

/// Parallel maximum of `f(i)` over `0..len`; returns `None` for empty input.
pub fn par_max_u64<F>(pool: &ThreadPool, len: usize, min_chunk: usize, f: F) -> Option<u64>
where
    F: Fn(usize) -> u64 + Sync,
{
    if len == 0 {
        return None;
    }
    Some(par_reduce(
        pool,
        len,
        min_chunk,
        || 0u64,
        |acc, r| r.map(&f).fold(acc, u64::max),
        u64::max,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let pool = ThreadPool::new(4);
        let n = 1_000_003;
        let got = par_sum_u64(&pool, n, 4096, |i| i as u64);
        let want: u64 = (0..n as u64).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        let pool = ThreadPool::new(2);
        assert_eq!(par_sum_u64(&pool, 0, 64, |_| 1), 0);
    }

    #[test]
    fn max_matches_sequential() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 777_777)
            .collect();
        let got = par_max_u64(&pool, data.len(), 1024, |i| data[i]);
        assert_eq!(got, data.iter().copied().max());
    }

    #[test]
    fn max_of_empty_is_none() {
        let pool = ThreadPool::new(2);
        assert_eq!(par_max_u64(&pool, 0, 64, |_| 1), None);
    }

    #[test]
    fn vector_merge_reduction() {
        // Element-wise histogram merge: the pattern the engine uses for
        // per-bin request counting.
        let pool = ThreadPool::new(4);
        let bins = 97usize;
        let items = 100_000usize;
        let hist = par_reduce(
            &pool,
            items,
            512,
            || vec![0u32; bins],
            |mut acc, r| {
                for i in r {
                    acc[i % bins] += 1;
                }
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        assert_eq!(hist.iter().map(|&c| c as usize).sum::<usize>(), items);
        for (b, &c) in hist.iter().enumerate() {
            let want = items / bins + usize::from(b < items % bins);
            assert_eq!(c as usize, want);
        }
    }
}
