//! Chunk geometry: deterministic partitioning of an index range.
//!
//! Every parallel primitive in this crate splits `0..len` into chunks whose
//! boundaries depend only on `len`, the minimum chunk size, and the number
//! of execution lanes — never on runtime timing. This is what makes
//! chunk-local outputs deterministic.

use std::ops::Range;

/// A deterministic partition of `0..len` into near-equal chunks.
///
/// Chunks differ in size by at most one element, and every index belongs to
/// exactly one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    len: usize,
    chunks: usize,
}

impl Chunking {
    /// Partition `len` items into at most `max_chunks` chunks of at least
    /// `min_chunk` items each (the final partition may use fewer chunks if
    /// `len` is small).
    pub fn new(len: usize, min_chunk: usize, max_chunks: usize) -> Self {
        let chunks = chunk_count(len, min_chunk, max_chunks);
        Self { len, chunks }
    }

    /// Total number of items being partitioned.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks in the partition.
    #[inline]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Index range of chunk `i` (`i < self.chunks()`).
    #[inline]
    pub fn range(&self, i: usize) -> Range<usize> {
        chunk_range(self.len, self.chunks, i)
    }

    /// Iterate over all chunk ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.chunks).map(move |i| self.range(i))
    }
}

/// Number of chunks used to split `len` items with a minimum chunk size and
/// a maximum chunk count. Returns at least 1 for nonempty inputs and 0 for
/// empty ones.
#[inline]
pub fn chunk_count(len: usize, min_chunk: usize, max_chunks: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let min_chunk = min_chunk.max(1);
    let by_size = len.div_ceil(min_chunk);
    by_size.min(max_chunks.max(1))
}

/// The `i`-th of `chunks` near-equal ranges covering `0..len`.
///
/// The first `len % chunks` ranges get one extra element, so sizes differ by
/// at most one.
#[inline]
pub fn chunk_range(len: usize, chunks: usize, i: usize) -> Range<usize> {
    debug_assert!(i < chunks, "chunk index {i} out of {chunks}");
    let base = len / chunks;
    let extra = len % chunks;
    let start = i * base + i.min(extra);
    let size = base + usize::from(i < extra);
    start..start + size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_zero_chunks() {
        assert_eq!(chunk_count(0, 100, 8), 0);
        let c = Chunking::new(0, 100, 8);
        assert!(c.is_empty());
        assert_eq!(c.chunks(), 0);
    }

    #[test]
    fn small_input_uses_one_chunk() {
        assert_eq!(chunk_count(50, 100, 8), 1);
        assert_eq!(chunk_range(50, 1, 0), 0..50);
    }

    #[test]
    fn ranges_tile_exactly() {
        for len in [1usize, 2, 7, 100, 101, 1023, 4096] {
            for chunks in 1..=16usize.min(len) {
                let mut next = 0;
                for i in 0..chunks {
                    let r = chunk_range(len, chunks, i);
                    assert_eq!(r.start, next, "len={len} chunks={chunks} i={i}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let len = 1003;
        let chunks = 7;
        let sizes: Vec<usize> = (0..chunks)
            .map(|i| chunk_range(len, chunks, i).len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), len);
    }

    #[test]
    fn chunking_respects_min_chunk() {
        let c = Chunking::new(10_000, 4096, 64);
        assert_eq!(c.chunks(), 3); // ceil(10000 / 4096)
        let total: usize = c.ranges().map(|r| r.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn chunking_respects_max_chunks() {
        let c = Chunking::new(1_000_000, 1, 8);
        assert_eq!(c.chunks(), 8);
    }
}
