//! # `pba-par` — self-contained data-parallel substrate
//!
//! The balls-into-bins engine in `pba-core` is *round synchronous*: every
//! round consists of a handful of bulk array passes (gather requests, count
//! per-bin arrivals, decide capacities, resolve acceptances, commit). Each
//! pass is embarrassingly parallel over either balls or bins. This crate
//! provides exactly the primitives those passes need, built from scratch on
//! `std::thread` + `std::sync` (no rayon, no external dependencies):
//!
//! * [`ThreadPool`] — a fixed pool of workers with a panic-propagating,
//!   scope-like `run_indexed` entry point (the calling thread participates,
//!   so a pool of `t` threads yields `t + 1` lanes of execution).
//! * [`for_each_chunk`] / [`par_map_indexed`] / [`par_reduce`] — chunked
//!   data-parallel iteration, mapping and reduction over index ranges.
//! * [`par_chunks_mut`] — disjoint mutable chunk access to a slice.
//! * [`DisjointIndexMut`] / [`DisjointClaims`] — the audited escape hatch
//!   for per-slot disjoint writes from concurrent tasks, with a debug-build
//!   one-task-per-index verifier.
//! * [`atomic`] — zero-copy reinterpretation of `&mut [u32]` / `&mut [u64]`
//!   as atomic slices, plus sharded counter merging.
//!
//! ## Determinism
//!
//! All primitives assign work to *fixed* chunk boundaries derived only from
//! the input length and chunk count — never from thread timing. A caller
//! that writes chunk-local outputs therefore produces bit-identical results
//! regardless of scheduling. Only explicitly atomic read-modify-write
//! operations (e.g. slot claiming in the engine's parallel resolver) are
//! order-dependent, and the engine documents where that matters.

pub mod atomic;
pub mod chunk;
pub mod disjoint;
pub mod iter;
pub mod pool;
pub mod reduce;
pub mod scan;

pub use atomic::{as_atomic_u32, as_atomic_u64, CachePadded, ShardedCounters};
pub use chunk::{chunk_count, chunk_range, Chunking};
pub use disjoint::{DisjointClaims, DisjointIndexMut};
pub use iter::{for_each_chunk, par_chunks_mut, par_fill_with, par_map_indexed};
pub use pool::{global_pool, PoolStats, ThreadPool};
pub use reduce::{par_max_u64, par_reduce, par_sum_u64};
pub use scan::{exclusive_scan_serial, exclusive_scan_u64};

/// Default minimum number of items assigned to one parallel chunk.
///
/// Below this granularity the dispatch overhead of handing a chunk to a
/// worker outweighs the work itself for the array passes this crate serves
/// (a few ns per item).
pub const DEFAULT_MIN_CHUNK: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let pool = ThreadPool::new(2);
        let v = par_map_indexed(&pool, 10, 1, |i| i * 2);
        assert_eq!(v, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }
}
