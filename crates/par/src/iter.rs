//! Chunked data-parallel iteration, mapping, and mutable slice access.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crate::chunk::Chunking;
use crate::pool::ThreadPool;
use crate::DEFAULT_MIN_CHUNK;

/// How many chunks to aim for: a few per lane so dynamic index claiming can
/// load-balance uneven chunks.
fn target_chunks(pool: &ThreadPool) -> usize {
    pool.lanes() * 4
}

/// Run `f(range)` for each chunk of `0..len`, in parallel.
///
/// Chunk boundaries are deterministic (see [`crate::chunk`]); chunks run in
/// unspecified order and concurrently.
///
/// # Examples
///
/// ```
/// use pba_par::{for_each_chunk, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let touched = AtomicUsize::new(0);
/// for_each_chunk(&pool, 100_000, 1024, |r| {
///     touched.fetch_add(r.len(), Ordering::Relaxed);
/// });
/// assert_eq!(touched.into_inner(), 100_000);
/// ```
pub fn for_each_chunk<F>(pool: &ThreadPool, len: usize, min_chunk: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let chunking = Chunking::new(len, min_chunk, target_chunks(pool));
    if chunking.chunks() <= 1 {
        if len > 0 {
            f(0..len);
        }
        return;
    }
    pool.run_indexed(chunking.chunks(), |i| f(chunking.range(i)));
}

/// Shared, write-once output buffer: each task writes a *disjoint* set of
/// slots, which makes concurrent `&self` writes sound.
struct DisjointOut<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: tasks write disjoint indices and the buffer is only read after all
// tasks have completed (enforced by `ThreadPool::run_indexed` joining).
unsafe impl<T: Send> Sync for DisjointOut<T> {}

impl<T> DisjointOut<T> {
    fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// # Safety
    /// Each index must be written exactly once, by exactly one task.
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: the caller guarantees `i` is written exactly once by
        // exactly one task, so the UnsafeCell access cannot alias.
        unsafe { (*self.slots[i].get()).write(value) };
    }

    /// # Safety
    /// Every index must have been written.
    unsafe fn into_vec(self) -> Vec<T> {
        let slots = Vec::from(self.slots);
        slots
            .into_iter()
            // SAFETY: the caller guarantees every slot was written, so
            // each MaybeUninit holds an initialized value.
            .map(|cell| unsafe { cell.into_inner().assume_init() })
            .collect()
    }
}

/// Map `0..len` through `f` in parallel, returning results in index order.
///
/// Equivalent to `(0..len).map(f).collect()` but parallel and allocation-
/// deterministic.
pub fn par_map_indexed<T, F>(pool: &ThreadPool, len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let out = DisjointOut::<T>::new(len);
    for_each_chunk(pool, len, min_chunk, |r| {
        for i in r {
            // SAFETY: chunks are disjoint, each index written once.
            unsafe { out.write(i, f(i)) };
        }
    });
    // SAFETY: chunks tile 0..len exactly, so every slot was written.
    unsafe { out.into_vec() }
}

/// Fill `dst[i] = f(i)` for all `i`, in parallel.
///
/// Unlike [`par_map_indexed`] this reuses an existing buffer (the "workhorse
/// collection" pattern), avoiding a fresh allocation per round.
pub fn par_fill_with<T, F>(pool: &ThreadPool, dst: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = dst.len();
    let base = dst.as_mut_ptr() as usize;
    for_each_chunk(pool, len, DEFAULT_MIN_CHUNK, |r| {
        let ptr = base as *mut T;
        for i in r {
            // SAFETY: chunks are disjoint subranges of `dst`, each written
            // by exactly one task while the caller's &mut borrow pins the
            // buffer; `i` is in bounds by chunk construction.
            unsafe { ptr.add(i).write(f(i)) };
        }
    });
}

/// Run `f(offset, chunk)` over disjoint mutable chunks of `data`.
///
/// `offset` is the index of the chunk's first element within `data`. Chunks
/// have the deterministic geometry of [`crate::chunk`].
///
/// # Examples
///
/// ```
/// use pba_par::{par_chunks_mut, ThreadPool};
///
/// let pool = ThreadPool::new(2);
/// let mut v = vec![0u64; 100_000];
/// par_chunks_mut(&pool, &mut v, 1024, |offset, chunk| {
///     for (k, slot) in chunk.iter_mut().enumerate() {
///         *slot = (offset + k) as u64;
///     }
/// });
/// assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
/// ```
pub fn par_chunks_mut<T, F>(pool: &ThreadPool, data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let chunking = Chunking::new(len, min_chunk, target_chunks(pool));
    if chunking.chunks() <= 1 {
        if len > 0 {
            f(0, data);
        }
        return;
    }
    let base = data.as_mut_ptr() as usize;
    pool.run_indexed(chunking.chunks(), |i| {
        let r = chunking.range(i);
        // SAFETY: ranges are pairwise disjoint and within `data`, which the
        // caller's &mut borrow keeps alive and exclusive for the duration.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(r.start), r.len()) };
        f(r.start, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn for_each_chunk_covers_all_indices_once() {
        let p = pool();
        let n = 100_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for_each_chunk(&p, n, 128, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_empty() {
        let p = pool();
        for_each_chunk(&p, 0, 128, |_| panic!("no chunks expected"));
    }

    #[test]
    fn par_map_indexed_matches_sequential() {
        let p = pool();
        let got = par_map_indexed(&p, 50_000, 64, |i| (i as u64).wrapping_mul(2654435761));
        let want: Vec<u64> = (0..50_000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_indexed_with_non_copy_type() {
        let p = pool();
        let got = par_map_indexed(&p, 1000, 16, |i| vec![i; 3]);
        assert_eq!(got[17], vec![17, 17, 17]);
        assert_eq!(got.len(), 1000);
    }

    #[test]
    fn par_fill_with_overwrites_in_place() {
        let p = pool();
        let mut buf = vec![u64::MAX; 70_000];
        par_fill_with(&p, &mut buf, |i| i as u64 + 1);
        assert!(buf.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let p = pool();
        let mut v = vec![0u32; 123_457];
        par_chunks_mut(&p, &mut v, 1000, |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = (offset + k) as u32;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn par_chunks_mut_small_input_single_chunk() {
        let p = pool();
        let mut v = vec![1u8; 10];
        par_chunks_mut(&p, &mut v, 1024, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 10);
            chunk.fill(7);
        });
        assert_eq!(v, vec![7u8; 10]);
    }
}
