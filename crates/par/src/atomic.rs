//! Atomic views over plain integer slices, and sharded counters.
//!
//! The engine keeps bin loads and slot counters as plain `Vec<u32>` so the
//! sequential executor pays no atomic cost; the parallel executor
//! reinterprets the same storage as `&[AtomicU32]` for the duration of a
//! round. This is sound because the integer and atomic types have identical
//! layout and the caller holds the unique `&mut` borrow.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// View a mutable `u32` slice as a slice of atomics.
///
/// Layout-compatible per the standard library's guarantee that
/// `AtomicU32` has the same in-memory representation as `u32`.
#[inline]
pub fn as_atomic_u32(data: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 has the same size and alignment as u32 and the
    // exclusive borrow is handed off to the returned shared-atomic view.
    unsafe { &*(data as *mut [u32] as *const [AtomicU32]) }
}

/// View a mutable `u64` slice as a slice of atomics.
#[inline]
pub fn as_atomic_u64(data: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: as `as_atomic_u32`.
    unsafe { &*(data as *mut [u64] as *const [AtomicU64]) }
}

/// A `T` padded out to its own cache line (64-byte aligned).
///
/// Lane-owned state laid out contiguously (per-lane counters, per-shard
/// load arrays) otherwise shares cache lines at shard boundaries, and
/// concurrent writers false-share: every store invalidates the neighbor
/// lane's line. Wrapping each element in `CachePadded` gives every shard
/// its own line. Access the inner value through `Deref`/`DerefMut` — the
/// wrapper is transparent at use sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Unwrap back to the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CachePadded<T> {
    #[inline]
    fn from(value: T) -> Self {
        CachePadded(value)
    }
}

/// Per-shard `u64` counters merged on demand.
///
/// Useful when contention on a single atomic would serialize workers:
/// each lane increments its own cache-line-padded shard and the total is
/// computed once per round.
pub struct ShardedCounters {
    shards: Vec<CachePadded<AtomicU64>>,
}

impl ShardedCounters {
    /// Create counters with one shard per execution lane.
    pub fn new(lanes: usize) -> Self {
        Self {
            shards: (0..lanes.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Add `v` to shard `lane % shards`.
    #[inline]
    pub fn add(&self, lane: usize, v: u64) {
        self.shards[lane % self.shards.len()]
            .0
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Sum across all shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of each shard's count, in lane order.
    ///
    /// The per-shard spread is the contention signal streaming metrics
    /// report: a hot shard means its lane applied most of the placements.
    pub fn values(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .collect()
    }

    /// Reset all shards to zero.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn atomic_u32_view_roundtrips() {
        let mut v = vec![0u32; 100];
        {
            let a = as_atomic_u32(&mut v);
            for (i, slot) in a.iter().enumerate() {
                slot.store(i as u32, Ordering::Relaxed);
            }
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn atomic_view_concurrent_increments() {
        let pool = ThreadPool::new(4);
        let mut v = vec![0u32; 13];
        {
            let a = as_atomic_u32(&mut v);
            pool.run_indexed(130_000, |i| {
                a[i % 13].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(v.iter().all(|&c| c == 10_000));
    }

    #[test]
    fn atomic_u64_view() {
        let mut v = vec![5u64; 4];
        {
            let a = as_atomic_u64(&mut v);
            a[2].fetch_add(37, Ordering::Relaxed);
        }
        assert_eq!(v, vec![5, 5, 42, 5]);
    }

    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<Vec<u64>>>(), 64);
        let mut p = CachePadded::new(vec![1u64, 2, 3]);
        p.push(4); // DerefMut
        assert_eq!(p.len(), 4); // Deref
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
        // Adjacent elements land on distinct cache lines.
        let pair = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn sharded_counters_total() {
        let c = ShardedCounters::new(4);
        assert_eq!(c.shards(), 4);
        for lane in 0..8 {
            c.add(lane, 10);
        }
        assert_eq!(c.total(), 80);
        assert_eq!(c.values(), vec![20, 20, 20, 20]);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn sharded_counters_zero_lanes_clamped() {
        let c = ShardedCounters::new(0);
        assert_eq!(c.shards(), 1);
        c.add(5, 3);
        assert_eq!(c.total(), 3);
    }
}
