//! Parallel exclusive prefix sums (scans).
//!
//! The engine's acceptance resolution assigns each request its global
//! arrival rank — an exclusive scan of per-chunk bin counts. This module
//! provides the general primitive: the classic two-pass chunked scan
//! (per-chunk sums, serial scan of the tiny sum vector, per-chunk
//! rewrite), which is work-efficient and deterministic.

use crate::chunk::Chunking;
use crate::pool::ThreadPool;

/// In-place exclusive prefix sum: `data[i] ← Σ_{j<i} data[j]` (wrapping
/// on overflow, matching the sequential semantics of `wrapping_add`).
/// Returns the total sum of the original values.
pub fn exclusive_scan_u64(pool: &ThreadPool, data: &mut [u64], min_chunk: usize) -> u64 {
    let len = data.len();
    let chunking = Chunking::new(len, min_chunk.max(1), pool.lanes() * 4);
    if chunking.chunks() <= 1 {
        return exclusive_scan_serial(data);
    }

    // Pass 1 (parallel): per-chunk totals.
    let base = data.as_mut_ptr() as usize;
    let totals: Vec<u64> = crate::iter::par_map_indexed(pool, chunking.chunks(), 1, |ci| {
        let r = chunking.range(ci);
        // SAFETY: disjoint read-only access within this pass.
        let slice =
            unsafe { std::slice::from_raw_parts((base as *const u64).add(r.start), r.len()) };
        slice.iter().fold(0u64, |a, &x| a.wrapping_add(x))
    });

    // Serial scan of the chunk totals.
    let mut offsets = totals.clone();
    let grand_total = exclusive_scan_serial(&mut offsets);

    // Pass 2 (parallel): rewrite each chunk with its running prefix.
    pool.run_indexed(chunking.chunks(), |ci| {
        let r = chunking.range(ci);
        // SAFETY: disjoint mutable chunks; caller's &mut pins the buffer.
        let slice =
            unsafe { std::slice::from_raw_parts_mut((base as *mut u64).add(r.start), r.len()) };
        let mut acc = offsets[ci];
        for x in slice {
            let v = *x;
            *x = acc;
            acc = acc.wrapping_add(v);
        }
    });
    grand_total
}

/// Serial exclusive scan; returns the total.
pub fn exclusive_scan_serial(data: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for x in data {
        let v = *x;
        *x = acc;
        acc = acc.wrapping_add(v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_small() {
        let mut v = vec![3u64, 1, 4, 1, 5];
        let total = exclusive_scan_serial(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..100_003u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 1000)
            .collect();
        let mut par = data.clone();
        let mut ser = data;
        let t_par = exclusive_scan_u64(&pool, &mut par, 1024);
        let t_ser = exclusive_scan_serial(&mut ser);
        assert_eq!(par, ser);
        assert_eq!(t_par, t_ser);
    }

    #[test]
    fn empty_and_single() {
        let pool = ThreadPool::new(2);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_u64(&pool, &mut empty, 64), 0);
        let mut one = vec![7u64];
        assert_eq!(exclusive_scan_u64(&pool, &mut one, 64), 7);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn wrapping_behaviour_matches() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = vec![u64::MAX, 2, u64::MAX, 5];
        let mut par = data.clone();
        let mut ser = data;
        let tp = exclusive_scan_u64(&pool, &mut par, 1);
        let ts = exclusive_scan_serial(&mut ser);
        assert_eq!(par, ser);
        assert_eq!(tp, ts);
    }
}
