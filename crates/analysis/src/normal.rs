//! Standard normal distribution and the Berry–Esseen bound (Theorem 4 of
//! the heavily loaded paper).

use crate::special::erfc;

/// Standard normal density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 - 0.5 * erfc(x / std::f64::consts::SQRT_2)
    } else {
        0.5 * erfc(-x / std::f64::consts::SQRT_2)
    }
}

/// Upper tail `1 − Φ(x)`, computed without cancellation.
pub fn normal_sf(x: f64) -> f64 {
    normal_cdf(-x)
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// one Halley refinement step; |relative error| < 1e-13).
///
/// # Panics
///
/// Panics for `p` outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The Berry–Esseen bound of Theorem 4: for i.i.d. centered `Y_j` with
/// variance `sigma2` and third absolute moment `rho`, the sup-distance
/// between the CDF of the normalized sum of `m` terms and `Φ` is at most
/// `c·ρ/(σ³·√m)`.
///
/// `c = 0.4748` (Shevtsova 2011), valid for all distributions.
pub fn berry_esseen_bound(sigma2: f64, rho: f64, m: u64) -> f64 {
    assert!(sigma2 > 0.0 && rho >= 0.0 && m > 0);
    const C: f64 = 0.4748;
    C * rho / (sigma2.powf(1.5) * (m as f64).sqrt())
}

/// Berry–Esseen bound specialized to Bernoulli(p) summands — the per-bin
/// load in a single uniform round is `Bin(M, 1/n)`, i.e. a sum of
/// Bernoulli(1/n) indicators. This is the bound Claim 5 of the heavily
/// loaded paper instantiates.
pub fn berry_esseen_bernoulli(p: f64, m: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    let q = 1.0 - p;
    let sigma2 = p * q;
    if sigma2 == 0.0 {
        return 0.0;
    }
    // E|Y|³ for Y = X − p: ρ = pq(p² + q²)
    let rho = p * q * (p * p + q * q);
    berry_esseen_bound(sigma2, rho, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-14);
        close(normal_cdf(1.0), 0.841_344_746_068_543, 1e-10);
        close(normal_cdf(-1.0), 0.158_655_253_931_457, 1e-10);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
    }

    #[test]
    fn sf_symmetry() {
        for x in [0.0, 0.5, 1.0, 2.5, 4.0] {
            close(normal_sf(x), normal_cdf(-x), 1e-14);
            close(normal_cdf(x) + normal_sf(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            close(normal_cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn quantile_median_is_zero() {
        close(normal_quantile(0.5), 0.0, 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn pdf_peak_value() {
        close(normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    }

    #[test]
    fn berry_esseen_shrinks_with_m() {
        let b1 = berry_esseen_bernoulli(0.001, 10_000);
        let b2 = berry_esseen_bernoulli(0.001, 1_000_000);
        assert!(b2 < b1);
        close(b1 / b2, 10.0, 1e-9); // ∝ 1/√m
    }

    #[test]
    fn berry_esseen_bernoulli_matches_generic() {
        let p = 0.01f64;
        let q = 1.0 - p;
        let generic = berry_esseen_bound(p * q, p * q * (p * p + q * q), 5000);
        close(berry_esseen_bernoulli(p, 5000), generic, 1e-15);
    }

    #[test]
    fn berry_esseen_degenerate_p() {
        assert_eq!(berry_esseen_bernoulli(0.0, 100), 0.0);
        assert_eq!(berry_esseen_bernoulli(1.0, 100), 0.0);
    }
}
