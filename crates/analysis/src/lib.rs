//! # `pba-analysis` — numerics for balls-into-bins analysis
//!
//! Self-contained mathematical toolkit used by the experiment harness to
//! compare measured allocations against the papers' theory:
//!
//! * [`special`] — `erf`, `ln Γ`, regularized incomplete gamma/beta
//!   (continued-fraction evaluations, ~1e-12 accuracy).
//! * [`normal`] — standard normal pdf/cdf/quantile and the Berry–Esseen
//!   bound of Theorem 4.
//! * [`binomial`] — exact binomial pmf/cdf (via the incomplete beta) and
//!   tail probabilities; the load of a single bin is `Bin(m, 1/n)`.
//! * [`chernoff`] — the multiplicative Chernoff bounds of Lemma 1, forward
//!   and inverted.
//! * [`summary`] — replication statistics: mean/variance/quantiles and
//!   normal-approximation confidence intervals.
//! * [`regression`] — least-squares line fits (used to check measured
//!   round counts grow like `log log(m/n)` etc.).
//! * [`predict`] — closed-form predictors for each protocol family's gap
//!   and round count, including the paper's threshold recurrence
//!   `m̃_{i+1} = m̃_i^{2/3} n^{1/3}`.
//! * [`negassoc`] — empirical negative-association checks in the spirit of
//!   Dubhashi–Ranjan (occupancy indicators are negatively associated).
//!
//! Everything is from scratch — no external numerics crates.

pub mod binomial;
pub mod chernoff;
pub mod histogram;
pub mod kolmogorov;
pub mod negassoc;
pub mod normal;
pub mod poisson;
pub mod predict;
pub mod regression;
pub mod special;
pub mod summary;

pub use binomial::Binomial;
pub use chernoff::{chernoff_lower_tail, chernoff_upper_tail};
pub use histogram::IntHistogram;
pub use kolmogorov::{dkw_epsilon, ks_distance_to, ks_distance_to_normal, lattice_ks_floor};
pub use normal::{berry_esseen_bound, normal_cdf, normal_pdf, normal_quantile};
pub use poisson::Poisson;
pub use predict::{
    predicted_rounds_threshold_heavy, single_choice_gap, threshold_schedule, two_choice_gap,
};
pub use regression::LinearFit;
pub use summary::Summary;
