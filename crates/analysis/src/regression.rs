//! Ordinary least-squares line fits.
//!
//! The experiments check *growth rates*, not constants: e.g. measured
//! `A_heavy` round counts regressed against `log log(m/n)` should produce
//! a strong linear fit (R² close to 1) with a positive slope, while a fit
//! against `m/n` itself should be poor. This module provides the fit.

/// Result of fitting `y ≈ intercept + slope · x` by least squares.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub points: usize,
}

impl LinearFit {
    /// Fit a line through `(x, y)` pairs.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 2 points or mismatched lengths.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "mismatched lengths");
        assert!(xs.len() >= 2, "need at least 2 points");
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        let r_squared = if sxx > 0.0 && syy > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else if syy == 0.0 {
            1.0 // constant y is perfectly fit
        } else {
            0.0
        };
        Self {
            intercept,
            slope,
            r_squared,
            points: xs.len(),
        }
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_good_r2() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.slope - 0.5).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn constant_y_is_flat_perfect() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let f = LinearFit::fit(&xs, &ys);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn uncorrelated_data_low_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let f = LinearFit::fit(&xs, &ys);
        assert!(f.r_squared < 0.1, "r² = {}", f.r_squared);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_point_panics() {
        let _ = LinearFit::fit(&[1.0], &[1.0]);
    }
}
