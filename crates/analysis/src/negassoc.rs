//! Empirical negative-association checks.
//!
//! Dubhashi–Ranjan: occupancy counts `X_1, …, X_n` of a balls-into-bins
//! experiment are negatively associated, which is what licenses applying
//! Chernoff bounds to sums of per-bin indicators (Claim 3 and the
//! lower-bound concentration step). We cannot verify the full definition
//! (all pairs of monotone functions on disjoint index sets), but we can
//! verify its first-order consequence on samples: **pairwise negative
//! correlation of monotone indicator functions**, i.e.
//! `Cov(1[X_i ≥ a], 1[X_j ≥ b]) ≤ 0` for `i ≠ j` (up to sampling noise).
//!
//! The experiment suite uses this to sanity-check that the simulator's
//! per-bin loads exhibit the negative dependence the proofs rely on.

/// Sample covariance of two equal-length samples.
///
/// # Panics
///
/// Panics on mismatched lengths or fewer than 2 observations.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (n - 1.0)
}

/// Pearson correlation; returns 0 when either sample is constant.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let cov = covariance(xs, ys);
    let vx = covariance(xs, xs);
    let vy = covariance(ys, ys);
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Result of an empirical negative-association check over bin pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegAssocReport {
    /// Number of (pair, threshold) combinations examined.
    pub checks: usize,
    /// Combinations whose sample covariance exceeded the tolerance.
    pub violations: usize,
    /// Largest (most positive) covariance observed.
    pub worst_covariance: f64,
}

impl NegAssocReport {
    /// True when no combination exceeded the tolerance.
    pub fn holds(&self) -> bool {
        self.violations == 0
    }
}

/// Check pairwise negative correlation of threshold indicators over
/// replicated load vectors.
///
/// `samples[s][b]` is bin `b`'s load in replication `s`. For every pair
/// from `pairs` and every threshold in `thresholds`, computes the sample
/// covariance of `1[X_i ≥ t]` and `1[X_j ≥ t]` and flags it when it
/// exceeds `tolerance` (which should be a few standard errors,
/// `O(1/√samples)`).
pub fn check_indicator_negassoc(
    samples: &[Vec<u32>],
    pairs: &[(usize, usize)],
    thresholds: &[u32],
    tolerance: f64,
) -> NegAssocReport {
    assert!(samples.len() >= 2, "need at least 2 replications");
    let mut checks = 0;
    let mut violations = 0;
    let mut worst = f64::NEG_INFINITY;
    for &(i, j) in pairs {
        assert_ne!(i, j, "pairs must be distinct bins");
        for &t in thresholds {
            let xs: Vec<f64> = samples
                .iter()
                .map(|s| f64::from(u8::from(s[i] >= t)))
                .collect();
            let ys: Vec<f64> = samples
                .iter()
                .map(|s| f64::from(u8::from(s[j] >= t)))
                .collect();
            let cov = covariance(&xs, &ys);
            checks += 1;
            worst = worst.max(cov);
            if cov > tolerance {
                violations += 1;
            }
        }
    }
    NegAssocReport {
        checks,
        violations,
        worst_covariance: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_identical_samples_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((covariance(&xs, &xs) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_anticorrelated_is_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!(covariance(&xs, &ys) < 0.0);
        assert!((correlation(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(correlation(&xs, &ys), 0.0);
    }

    #[test]
    fn multinomial_loads_pass_negassoc() {
        // Simulate balls-into-bins directly: loads are multinomial, which
        // IS negatively associated, so the check must pass with a sane
        // tolerance.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = 8usize;
        let balls = 64u32;
        let samples: Vec<Vec<u32>> = (0..4000)
            .map(|_| {
                let mut loads = vec![0u32; n];
                for _ in 0..balls {
                    loads[(next() % n as u32) as usize] += 1;
                }
                loads
            })
            .collect();
        let pairs = [(0, 1), (2, 5), (3, 7)];
        let thresholds = [6, 8, 10, 12];
        let report = check_indicator_negassoc(&samples, &pairs, &thresholds, 0.02);
        assert!(
            report.holds(),
            "worst covariance {}",
            report.worst_covariance
        );
        assert_eq!(report.checks, 12);
    }

    #[test]
    fn positively_correlated_loads_fail() {
        // Construct a counterexample: both bins copy the same coin.
        let samples: Vec<Vec<u32>> = (0..1000)
            .map(|s| if s % 2 == 0 { vec![10, 10] } else { vec![0, 0] })
            .collect();
        let report = check_indicator_negassoc(&samples, &[(0, 1)], &[5], 0.05);
        assert!(!report.holds());
        assert!(report.worst_covariance > 0.2);
    }
}
