//! Exact binomial distribution.
//!
//! The load of one bin after throwing `M` balls uniformly into `n` bins is
//! `Bin(M, 1/n)`; every per-bin concentration statement in the papers is a
//! statement about this distribution. Exact tails come from the
//! regularized incomplete beta function.

use crate::special::{ln_gamma, reg_beta};

/// A binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Construct `Bin(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0,1]");
        Self { n, p }
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Log of the probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        let n = self.n as f64;
        let k_f = k as f64;
        ln_gamma(n + 1.0) - ln_gamma(k_f + 1.0) - ln_gamma(n - k_f + 1.0)
            + k_f * self.p.ln()
            + (n - k_f) * (1.0 - self.p).ln()
    }

    /// Probability mass `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF `P[X ≤ k]` via `I_{1−p}(n−k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        reg_beta((self.n - k) as f64, (k + 1) as f64, 1.0 - self.p)
    }

    /// Upper tail `P[X ≥ k]`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        reg_beta(k as f64, (self.n - k + 1) as f64, self.p)
    }

    /// Smallest `k` with `P[X ≤ k] ≥ q` (the `q`-quantile), by bisection on
    /// the exact CDF.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if q <= 0.0 {
            return 0;
        }
        if q >= 1.0 {
            return self.n;
        }
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// Expected maximum of `n` i.i.d. `Bin(M, 1/n)` loads, estimated from the
/// exact marginal tails with the standard first-moment/union heuristic:
/// the max sits near the `k` where `n · P[X ≥ k] ≈ 1`.
///
/// This is the quantity the naive single-choice allocation realizes; the
/// experiments compare measured maxima against it.
pub fn expected_max_load_single_choice(m: u64, n: u32) -> f64 {
    let bin = Binomial::new(m, 1.0 / n as f64);
    let mean = bin.mean();
    // Search k in [mean, mean + 20σ + 30] for n·sf(k) crossing 1.
    let sigma = bin.variance().sqrt();
    let lo = mean.floor() as u64;
    let hi = (mean + 20.0 * sigma + 30.0).ceil() as u64;
    let n_f = n as f64;
    let mut k = lo;
    while k < hi {
        if n_f * bin.sf(k + 1) < 1.0 {
            break;
        }
        k += 1;
    }
    // Linear interpolation between the crossing pair for smoothness.
    let above = n_f * bin.sf(k);
    let below = n_f * bin.sf(k + 1);
    if above <= below || above <= 1.0 {
        return k as f64;
    }
    let frac = ((above - 1.0) / (above - below)).clamp(0.0, 1.0);
    k as f64 + frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn pmf_small_case_exact() {
        // Bin(4, 0.5): pmf = [1,4,6,4,1]/16
        let b = Binomial::new(4, 0.5);
        close(b.pmf(0), 1.0 / 16.0, 1e-12);
        close(b.pmf(1), 4.0 / 16.0, 1e-12);
        close(b.pmf(2), 6.0 / 16.0, 1e-12);
        close(b.pmf(4), 1.0 / 16.0, 1e-12);
        assert_eq!(b.pmf(5), 0.0);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(20, 0.3);
        let mut acc = 0.0;
        for k in 0..=20 {
            acc += b.pmf(k);
            close(b.cdf(k), acc, 1e-10);
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let b = Binomial::new(50, 0.1);
        for k in 1..=50 {
            close(b.sf(k), 1.0 - b.cdf(k - 1), 1e-10);
        }
        assert_eq!(b.sf(0), 1.0);
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.cdf(0), 1.0);
        assert_eq!(zero.sf(1), 0.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.sf(10), 1.0);
        assert_eq!(one.cdf(9), 0.0);
    }

    #[test]
    fn quantile_is_inverse_cdf() {
        let b = Binomial::new(100, 0.4);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let k = b.quantile(q);
            assert!(b.cdf(k) >= q);
            if k > 0 {
                assert!(b.cdf(k - 1) < q);
            }
        }
        assert_eq!(b.quantile(0.0), 0);
        assert_eq!(b.quantile(1.0), 100);
    }

    #[test]
    fn mean_and_variance() {
        let b = Binomial::new(1000, 0.25);
        close(b.mean(), 250.0, 1e-12);
        close(b.variance(), 187.5, 1e-12);
    }

    #[test]
    fn expected_max_load_grows_like_sqrt_regime() {
        // m/n = 100, n = 1024: gap ≈ √(2·100·ln 1024) ≈ 37.
        let max = expected_max_load_single_choice(102_400, 1024);
        let gap = max - 100.0;
        assert!(gap > 25.0 && gap < 50.0, "gap {gap}");
    }

    #[test]
    fn expected_max_load_balanced_case() {
        // m = n: classical ln n / ln ln n ≈ 4.5 for n = 1024; the
        // first-moment estimate lands in 5..9.
        let max = expected_max_load_single_choice(1024, 1024);
        assert!(max > 4.0 && max < 10.0, "max {max}");
    }
}
