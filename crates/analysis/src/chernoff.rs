//! The multiplicative Chernoff bounds of Lemma 1, forward and inverted.
//!
//! For a sum `X` of independent (or negatively associated) 0–1 variables
//! with mean `μ` and `0 < δ < 1`:
//!
//! * `P[X < (1−δ)μ] ≤ exp(−δ²μ/2)`
//! * `P[X > (1+δ)μ] ≤ exp(−δ²μ/3)`
//!
//! These drive every threshold schedule in the reproduced protocols (the
//! `(m̃/n)^{2/3}` undershoot makes `δ = (m̃/n)^{-1/3}` and the failure
//! probability `exp(−(m̃/n)^{1/3}/2)`, exactly Claim 1).

/// `P[X < (1−δ)μ] ≤ exp(−δ²μ/2)` — returns the bound.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mu must be nonnegative");
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0,1]");
    (-delta * delta * mu / 2.0).exp()
}

/// `P[X > (1+δ)μ] ≤ exp(−δ²μ/3)` — returns the bound.
pub fn chernoff_upper_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0);
    assert!(delta >= 0.0);
    if delta <= 1.0 {
        (-delta * delta * mu / 3.0).exp()
    } else {
        // For δ > 1 the sharper bound exp(−δμ/3) applies.
        (-delta * mu / 3.0).exp()
    }
}

/// Smallest deviation `t` such that `P[X < μ − t] ≤ target` per the lower
/// Chernoff bound: `t = √(2μ ln(1/target))` (clamped to `μ`).
///
/// This is the `√(2μ log m)` deviation of Lemma 1's corollary and the
/// `δ_r = c·√((m_r/n_r)·log n)` slack of the asymmetric algorithm.
pub fn lower_deviation_for(mu: f64, target: f64) -> f64 {
    assert!(mu >= 0.0);
    assert!(target > 0.0 && target < 1.0);
    (2.0 * mu * (1.0 / target).ln()).sqrt().min(mu)
}

/// Smallest deviation `t` such that `P[X > μ + t] ≤ target` per the upper
/// Chernoff bound: `t = √(3μ ln(1/target))`.
pub fn upper_deviation_for(mu: f64, target: f64) -> f64 {
    assert!(mu >= 0.0);
    assert!(target > 0.0 && target < 1.0);
    (3.0 * mu * (1.0 / target).ln()).sqrt()
}

/// A "with high probability" target `n^{−c}`.
pub fn whp_target(n: u64, c: f64) -> f64 {
    assert!(n >= 2);
    (n as f64).powf(-c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;

    #[test]
    fn bounds_decrease_in_mu_and_delta() {
        assert!(chernoff_lower_tail(100.0, 0.5) < chernoff_lower_tail(10.0, 0.5));
        assert!(chernoff_lower_tail(100.0, 0.5) < chernoff_lower_tail(100.0, 0.1));
        assert!(chernoff_upper_tail(100.0, 0.5) < chernoff_upper_tail(100.0, 0.1));
    }

    #[test]
    fn bounds_dominate_exact_binomial_tails() {
        // Chernoff must upper-bound the true tails of Bin(n, p).
        let bin = Binomial::new(10_000, 0.01); // μ = 100
        let mu = bin.mean();
        for delta in [0.1, 0.2, 0.5, 0.9] {
            let lo_thresh = ((1.0 - delta) * mu).floor() as u64;
            let exact_lower = bin.cdf(lo_thresh.saturating_sub(1));
            assert!(
                exact_lower <= chernoff_lower_tail(mu, delta) * 1.0001,
                "delta {delta}: exact {exact_lower} > bound"
            );
            let hi_thresh = ((1.0 + delta) * mu).ceil() as u64;
            let exact_upper = bin.sf(hi_thresh + 1);
            assert!(
                exact_upper <= chernoff_upper_tail(mu, delta) * 1.0001,
                "delta {delta}: exact {exact_upper} > bound"
            );
        }
    }

    #[test]
    fn claim1_instantiation() {
        // Claim 1: with μ = m̃/n and δ = (m̃/n)^{-1/3}, the underload
        // probability is ≤ exp(−(m̃/n)^{1/3}/2).
        let ratio = 512.0f64; // m̃/n
        let delta = ratio.powf(-1.0 / 3.0);
        let bound = chernoff_lower_tail(ratio, delta);
        let expected = (-(ratio.powf(1.0 / 3.0)) / 2.0).exp();
        assert!((bound - expected).abs() < 1e-12);
    }

    #[test]
    fn deviation_inversion_roundtrips() {
        let mu = 1000.0;
        let target = 1e-6;
        let t = lower_deviation_for(mu, target);
        let delta = t / mu;
        let p = chernoff_lower_tail(mu, delta);
        assert!((p - target).abs() / target < 1e-9);
    }

    #[test]
    fn whp_target_values() {
        assert!((whp_target(1000, 1.0) - 1e-3).abs() < 1e-12);
        assert!(whp_target(1000, 2.0) < whp_target(1000, 1.0));
    }

    #[test]
    fn upper_deviation_larger_than_lower() {
        // The 3 in the exponent makes upper deviations larger at equal
        // target.
        let mu = 500.0;
        assert!(upper_deviation_for(mu, 1e-4) > lower_deviation_for(mu, 1e-4));
    }
}
