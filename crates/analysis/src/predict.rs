//! Closed-form theory predictors for the reproduced results.
//!
//! These express the papers' asymptotic claims as computable quantities so
//! the harness can print "paper predicts / we measured" side by side. The
//! constants hidden in the O(·)s are unspecified in the papers, so the
//! predictors are *scales*, not point predictions; experiments assert
//! shape (monotonicity, ratios, linear fits), not equality.

/// `log₂* x` (iterated logarithm), the additive term in Theorem 1's round
/// bound.
pub fn log_star(mut x: f64) -> u32 {
    let mut k = 0;
    while x > 1.0 {
        x = x.log2();
        k += 1;
        if k > 64 {
            break;
        }
    }
    k
}

/// Expected single-choice gap above `m/n`.
///
/// * Heavy regime `m ≥ n ln n`: `√(2·(m/n)·ln n)` (Chernoff scale).
/// * Balanced `m = n`: `ln n / ln ln n` (classical maximum).
///
/// Interpolates by taking the max of the two scales.
pub fn single_choice_gap(m: u64, n: u32) -> f64 {
    let ratio = m as f64 / n as f64;
    let ln_n = (n as f64).max(2.0).ln();
    let heavy = (2.0 * ratio * ln_n).sqrt();
    let balanced = if n > 15 { ln_n / ln_n.ln() } else { 2.0 };
    heavy.max(balanced)
}

/// Expected sequential 2-choice (GREEDY\[2\]) gap: `log₂ log₂ n + O(1)`,
/// independent of `m` (Berenbrink et al. 2006).
pub fn two_choice_gap(n: u32) -> f64 {
    let n = n as f64;
    if n <= 4.0 {
        1.0
    } else {
        n.log2().log2()
    }
}

/// The threshold recurrence of `A_heavy`: starting from `m̃_0 = m`, iterate
/// `m̃_{i+1} = m̃_i^{2/3} · n^{1/3}` until `m̃ ≤ bound·n`. Returns the
/// per-round estimates (including the final one).
pub fn threshold_schedule(m: u64, n: u32, stop_ratio: f64) -> Vec<f64> {
    let n = n as f64;
    let mut seq = vec![m as f64];
    let mut cur = m as f64;
    while cur > stop_ratio * n && seq.len() < 200 {
        cur = cur.powf(2.0 / 3.0) * n.powf(1.0 / 3.0);
        seq.push(cur);
    }
    seq
}

/// Predicted round count for the threshold phase of `A_heavy`: the number
/// of iterations of the `2/3` recurrence until `m̃ ≤ 2n`, which is
/// `Θ(log log(m/n))` (each step multiplies `log(m̃/n)` by 2/3).
pub fn predicted_rounds_threshold_heavy(m: u64, n: u32) -> u32 {
    (threshold_schedule(m, n, 2.0).len() - 1) as u32
}

/// Predicted total rounds for `A_heavy` including the light phase:
/// threshold rounds + `log* n + O(1)`.
pub fn predicted_rounds_total(m: u64, n: u32) -> u32 {
    predicted_rounds_threshold_heavy(m, n) + log_star(n as f64) + 2
}

/// The lower-bound recurrence of Theorem 2 for fixed-capacity threshold
/// algorithms: remaining balls `M_{i+1} ≈ √(M_i · n) / t` with
/// `t = min(log₂ n, log₂(M_i/n))`. Returns the predicted remaining-ball
/// sequence until `M ≤ stop·n`.
pub fn lower_bound_remaining_sequence(m: u64, n: u32, stop_ratio: f64) -> Vec<f64> {
    let n_f = n as f64;
    let mut seq = vec![m as f64];
    let mut cur = m as f64;
    while cur > stop_ratio * n_f && seq.len() < 100 {
        let t = (n_f.log2()).min((cur / n_f).max(2.0).log2()).max(1.0);
        cur = (cur * n_f).sqrt() / t;
        seq.push(cur);
    }
    seq
}

/// Stemann collision protocol prediction for `m = n`, `d = 2`: the
/// 2-collision protocol finishes in `≈ log₂ log₂ n + O(1)` rounds with
/// max load ≤ c.
pub fn predicted_rounds_collision(n: u32) -> f64 {
    two_choice_gap(n) // same log log n scale
}

/// ACMR98-style r-round non-adaptive prediction: achievable load scale
/// `(log n / log log n)^{1/r}` for constant `r` (up to constants).
pub fn adler_load_scale(n: u32, r: u32) -> f64 {
    let n = (n as f64).max(16.0);
    let base = n.ln() / n.ln().ln();
    base.powf(1.0 / r.max(1) as f64)
}

/// Everything the harness prints for one spec, bundled.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy)]
pub struct Predictions {
    /// Single-choice gap scale.
    pub single_choice_gap: f64,
    /// Sequential two-choice gap scale.
    pub two_choice_gap: f64,
    /// `A_heavy` threshold-phase rounds.
    pub heavy_threshold_rounds: u32,
    /// `A_heavy` total rounds (incl. light phase scale).
    pub heavy_total_rounds: u32,
    /// `log* n`.
    pub log_star_n: u32,
}

impl Predictions {
    /// Compute all predictions for `(m, n)`.
    pub fn for_spec(m: u64, n: u32) -> Self {
        Self {
            single_choice_gap: single_choice_gap(m, n),
            two_choice_gap: two_choice_gap(n),
            heavy_threshold_rounds: predicted_rounds_threshold_heavy(m, n),
            heavy_total_rounds: predicted_rounds_total(m, n),
            log_star_n: log_star(n as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_matches_core_convention() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
    }

    #[test]
    fn single_choice_gap_scales_with_ratio() {
        let g1 = single_choice_gap(1 << 20, 1 << 10); // m/n = 1024
        let g2 = single_choice_gap(1 << 22, 1 << 10); // m/n = 4096
        assert!(g2 > g1);
        // quadrupling m/n doubles the √ scale
        assert!((g2 / g1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn two_choice_gap_independent_of_m_by_construction() {
        assert_eq!(two_choice_gap(1 << 16), two_choice_gap(1 << 16));
        assert!(two_choice_gap(1 << 20) > two_choice_gap(1 << 10));
        // double-log: tiny growth
        assert!(two_choice_gap(1 << 20) - two_choice_gap(1 << 10) < 1.1);
    }

    #[test]
    fn threshold_schedule_decreases_to_stop() {
        let seq = threshold_schedule(1 << 30, 1 << 10, 2.0);
        assert!(seq.windows(2).all(|w| w[1] < w[0]));
        assert!(*seq.last().unwrap() <= 2.0 * 1024.0);
        assert!(seq[0] == (1u64 << 30) as f64);
    }

    #[test]
    fn heavy_rounds_grow_doubly_logarithmically() {
        let n = 1 << 12;
        let r1 = predicted_rounds_threshold_heavy((1 << 4) * (n as u64), n); // m/n=2^4
        let r2 = predicted_rounds_threshold_heavy((1 << 16) * (n as u64), n); // m/n=2^16
        assert!(r2 > r1);
        // log log(m/n) went from 2 to 4: rounds should roughly double, not
        // grow 4096-fold.
        assert!(r2 <= 3 * r1 + 4, "r1={r1}, r2={r2}");
    }

    #[test]
    fn lower_bound_sequence_shrinks_fast() {
        let seq = lower_bound_remaining_sequence(1 << 30, 1 << 10, 4.0);
        assert!(seq.len() >= 2);
        assert!(seq.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn adler_scale_decreases_in_rounds() {
        let n = 1 << 16;
        assert!(adler_load_scale(n, 1) > adler_load_scale(n, 2));
        assert!(adler_load_scale(n, 2) > adler_load_scale(n, 4));
        assert!(adler_load_scale(n, 100) < 1.5); // → 1 as r → ∞
    }

    #[test]
    fn predictions_bundle() {
        let p = Predictions::for_spec(1 << 24, 1 << 12);
        assert!(p.single_choice_gap > 0.0);
        assert!(p.heavy_total_rounds >= p.heavy_threshold_rounds);
        assert_eq!(p.log_star_n, log_star((1u64 << 12) as f64));
    }
}
