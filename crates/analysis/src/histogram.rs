//! Integer histograms and distribution distances.
//!
//! Used to compare measured load *distributions* (not just maxima)
//! against their theoretical marginals: e.g. the single-choice per-bin
//! load histogram against the `Bin(m, 1/n)` pmf via total-variation
//! distance.

use std::collections::BTreeMap;

/// A histogram over nonnegative integers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl IntHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of observations.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Self {
        let mut h = Self::new();
        for v in values {
            h.add(v);
        }
        h
    }

    /// Record one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `count` observations of `value`.
    pub fn add_n(&mut self, value: u64, count: u64) {
        if count > 0 {
            *self.counts.entry(value).or_insert(0) += count;
            self.total += count;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        for (&v, &c) in &other.counts {
            self.add_n(v, c);
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of a specific value.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Empirical probability of a value.
    pub fn frequency(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Largest observed value (None when empty).
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Smallest observed value (None when empty).
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Empirical mean.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(&v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Iterate `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Total-variation distance between this histogram's empirical
    /// distribution and a reference pmf: `½·Σ_k |p̂(k) − pmf(k)|`,
    /// evaluated over `0..=horizon`, plus all empirical mass above the
    /// horizon and the reference's tail mass beyond it.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram.
    pub fn tv_distance_to(&self, pmf: impl Fn(u64) -> f64, horizon: u64) -> f64 {
        assert!(self.total > 0, "empty histogram");
        let mut acc = 0.0;
        let mut ref_mass = 0.0;
        for k in 0..=horizon {
            let p = pmf(k);
            ref_mass += p;
            acc += (self.frequency(k) - p).abs();
        }
        // Mass outside the horizon, on both sides.
        let emp_tail: u64 = self
            .counts
            .iter()
            .filter(|(&v, _)| v > horizon)
            .map(|(_, &c)| c)
            .sum();
        acc += emp_tail as f64 / self.total as f64;
        acc += (1.0 - ref_mass).max(0.0);
        acc / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;

    #[test]
    fn counting_and_moments() {
        let h = IntHistogram::from_values([1u64, 2, 2, 3, 3, 3]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.max(), Some(3));
        assert_eq!(h.min(), Some(1));
        assert!((h.mean() - 14.0 / 6.0).abs() < 1e-12);
        assert!((h.frequency(2) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IntHistogram::from_values([1u64, 1]);
        let b = IntHistogram::from_values([1u64, 2]);
        a.merge(&b);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.count(2), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn tv_distance_identical_distribution_near_zero() {
        // Sample from Bin(20, 0.3) by inverse-CDF using a simple LCG.
        let bin = Binomial::new(20, 0.3);
        let mut state = 1u64;
        let mut h = IntHistogram::new();
        for _ in 0..200_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let mut k = 0u64;
            let mut acc = bin.pmf(0);
            while acc < u && k < 20 {
                k += 1;
                acc += bin.pmf(k);
            }
            h.add(k);
        }
        let tv = h.tv_distance_to(|k| bin.pmf(k), 20);
        assert!(tv < 0.01, "TV {tv}");
    }

    #[test]
    fn tv_distance_disjoint_is_one() {
        let h = IntHistogram::from_values([100u64; 10]);
        let tv = h.tv_distance_to(|k| if k == 0 { 1.0 } else { 0.0 }, 50);
        assert!((tv - 1.0).abs() < 1e-12, "TV {tv}");
    }

    #[test]
    fn tv_distance_is_symmetric_scale() {
        // Half the mass moved ⇒ TV = 0.5.
        let h = IntHistogram::from_values([0u64, 1]);
        let tv = h.tv_distance_to(|k| if k == 0 { 1.0 } else { 0.0 }, 5);
        assert!((tv - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn tv_on_empty_panics() {
        let h = IntHistogram::new();
        let _ = h.tv_distance_to(|_| 0.0, 5);
    }
}
