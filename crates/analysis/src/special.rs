//! Special functions: error function, log-gamma, regularized incomplete
//! gamma and beta functions.
//!
//! Implementations follow the classical numerical-recipes formulations
//! (Lanczos approximation for `ln Γ`, series + continued fractions for the
//! incomplete functions, Abramowitz–Stegun 7.1.26-style rational
//! approximation refined to double precision for `erf`). Accuracy is
//! ~1e-12 relative over the ranges exercised by the experiments; unit
//! tests pin known values.

/// Machine-precision guard for iterative evaluations.
const EPS: f64 = 1e-15;
/// Tiny number to avoid division by zero in continued fractions.
const FPMIN: f64 = 1e-300;
/// Iteration cap for series/continued fractions.
const MAX_ITER: usize = 500;

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9 coefficients), |ε| < 2e-10 over the
/// positive reals, considerably better for `x ≥ 1`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12f64,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid args a={a} x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid args a={a} x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)`, via the regularized incomplete gamma
/// (`erf(x) = P(1/2, x²)` for `x ≥ 0`), accurate to ~1e-12.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        reg_gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large `x`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        reg_gamma_q(0.5, x * x)
    }
}

/// Regularized incomplete beta `I_x(a, b)` (continued fraction).
///
/// The binomial CDF is `P[X ≤ k] = I_{1−p}(n−k, k+1)` for `X ~ Bin(n, p)`.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "invalid args a={a} b={b}");
    assert!((0.0..=1.0).contains(&x), "x={x} outside [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n−1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            close(ln_gamma((i + 1) as f64), f.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = √π/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn erfc_large_x_no_cancellation() {
        // erfc(5) ≈ 1.5375e-12; naive 1-erf would lose all digits.
        let v = erfc(5.0);
        close(v, 1.537_459_794_428_035e-12, 1e-6);
        assert!(v > 0.0);
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for x in [-3.0, -1.0, -0.1, 0.0, 0.3, 1.7, 4.0] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn reg_gamma_complementarity() {
        for (a, x) in [(0.5, 0.3), (2.0, 1.0), (5.0, 7.0), (10.0, 3.0)] {
            close(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn reg_gamma_poisson_identity() {
        // For integer a: Q(a, x) = P[Poisson(x) < a] = Σ_{k<a} e^{-x} x^k/k!
        let x = 2.5f64;
        let a = 4;
        let mut sum = 0.0;
        let mut term = (-x).exp();
        for k in 0..a {
            sum += term;
            term *= x / (k + 1) as f64;
        }
        close(reg_gamma_q(a as f64, x), sum, 1e-10);
    }

    #[test]
    fn reg_beta_boundaries_and_symmetry() {
        assert_eq!(reg_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for (a, b, x) in [(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (7.0, 1.5, 0.8)] {
            close(reg_beta(a, b, x), 1.0 - reg_beta(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn reg_beta_uniform_case() {
        // I_x(1, 1) = x
        for x in [0.1, 0.5, 0.9] {
            close(reg_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn reg_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry
        close(reg_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
        // I_x(1, b) = 1 − (1−x)^b
        close(reg_beta(1.0, 3.0, 0.25), 1.0 - 0.75f64.powi(3), 1e-12);
    }
}
