//! Kolmogorov–Smirnov distances, for verifying the Berry–Esseen setup of
//! the lower-bound proof (Theorem 4 / Claim 5) empirically: the
//! normalized per-bin load CDF must be within `c·ρ/(σ³√M)` of the
//! standard normal in sup-distance.

use crate::normal::normal_cdf;

/// Sup-distance between the empirical CDF of `sample` and a reference
/// CDF `f`.
///
/// Uses the standard two-sided KS statistic
/// `max_i max(|i/n − F(x_i)|, |F(x_i) − (i−1)/n|)` over the sorted
/// sample.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn ks_distance_to(sample: &[f64], f: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "empty sample");
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let fx = f(x);
        let upper = ((i + 1) as f64 / n - fx).abs();
        let lower = (fx - i as f64 / n).abs();
        d = d.max(upper).max(lower);
    }
    d
}

/// KS distance between the standardized sample and the standard normal.
///
/// The sample is centered and scaled by the provided `mean` and `stddev`
/// (use the *theoretical* moments — e.g. `μ = M/n`, `σ = √(M·p(1−p))`
/// for per-bin loads — not the sample moments, to match the theorem's
/// statement).
pub fn ks_distance_to_normal(sample: &[f64], mean: f64, stddev: f64) -> f64 {
    assert!(stddev > 0.0);
    let standardized: Vec<f64> = sample.iter().map(|&x| (x - mean) / stddev).collect();
    ks_distance_to(&standardized, normal_cdf)
}

/// The discreteness floor of a lattice distribution's KS distance to any
/// continuous CDF: half the largest single-atom mass. For per-bin loads
/// this is `≈ pmf(mode)/2 ≈ 1/(2σ√(2π))`; comparing a measured KS
/// distance against `berry_esseen_bound + discreteness floor` is the
/// honest finite-size check.
pub fn lattice_ks_floor(stddev: f64) -> f64 {
    assert!(stddev > 0.0);
    1.0 / (2.0 * stddev * (2.0 * std::f64::consts::PI).sqrt())
}

/// The Dvoretzky–Kiefer–Wolfowitz deviation bound: with `n` samples,
/// `P[sup_x |F̂(x) − F(x)| > ε] ≤ α` for
/// `ε = √(ln(2/α) / (2n))`. This is the tolerance the conformance
/// oracles grant a measured KS distance before declaring a claim
/// refuted.
///
/// # Panics
///
/// Panics when `n == 0` or `alpha` is outside `(0, 1)`.
pub fn dkw_epsilon(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    ((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core_free_rng::SplitMix64ish;

    /// Tiny local generator so this crate stays free of cross-deps in
    /// tests.
    mod pba_core_free_rng {
        pub struct SplitMix64ish(pub u64);
        impl SplitMix64ish {
            pub fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
            pub fn unit(&mut self) -> f64 {
                (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            }
        }
    }

    #[test]
    fn uniform_sample_close_to_uniform_cdf() {
        let mut rng = SplitMix64ish(42);
        let sample: Vec<f64> = (0..20_000).map(|_| rng.unit()).collect();
        let d = ks_distance_to(&sample, |x| x.clamp(0.0, 1.0));
        // KS ~ 1.36/√n at 95%: ≈ 0.0096 for n = 20000.
        assert!(d < 0.02, "KS distance {d}");
    }

    #[test]
    fn shifted_sample_is_far() {
        let sample: Vec<f64> = (0..1000).map(|i| 0.5 + i as f64 / 2000.0).collect();
        let d = ks_distance_to(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.4, "KS distance {d}");
    }

    #[test]
    fn clt_sample_close_to_normal() {
        // Sums of 64 uniforms, standardized: KS to Φ should be small.
        let mut rng = SplitMix64ish(7);
        let k = 64;
        let sample: Vec<f64> = (0..10_000)
            .map(|_| (0..k).map(|_| rng.unit()).sum::<f64>())
            .collect();
        let mean = k as f64 * 0.5;
        let stddev = (k as f64 / 12.0).sqrt();
        let d = ks_distance_to_normal(&sample, mean, stddev);
        assert!(d < 0.03, "KS distance {d}");
    }

    #[test]
    fn ks_floor_decreases_with_sigma() {
        assert!(lattice_ks_floor(10.0) < lattice_ks_floor(2.0));
        // σ = 1: floor ≈ 0.199.
        assert!((lattice_ks_floor(1.0) - 0.1995).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = ks_distance_to(&[], |x| x);
    }
}
