//! Poisson distribution.
//!
//! `Bin(m, 1/n) → Poisson(m/n)` as `n → ∞`, and the literature's
//! heuristic "Poissonization" replaces per-bin loads with independent
//! Poissons. Exact tails come from the regularized incomplete gamma:
//! `P[X ≤ k] = Q(k+1, λ)`.

use crate::special::{ln_gamma, reg_gamma_p, reg_gamma_q};

/// A Poisson distribution with rate `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Construct `Poisson(λ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `λ > 0` and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "invalid λ = {lambda}");
        Self { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean (= λ).
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance (= λ).
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Log probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        let k_f = k as f64;
        k_f * self.lambda.ln() - self.lambda - ln_gamma(k_f + 1.0)
    }

    /// Probability mass `P[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF `P[X ≤ k] = Q(k+1, λ)`.
    pub fn cdf(&self, k: u64) -> f64 {
        reg_gamma_q((k + 1) as f64, self.lambda)
    }

    /// Upper tail `P[X ≥ k] = P(k, λ)` for `k ≥ 1`; 1 for `k = 0`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            reg_gamma_p(k as f64, self.lambda)
        }
    }

    /// Smallest `k` with `P[X ≤ k] ≥ q`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..1.0).contains(&q), "q = {q} outside [0,1)");
        if q <= 0.0 {
            return 0;
        }
        // Exponential search then bisection on the exact CDF.
        let mut hi = (self.lambda + 10.0 * self.lambda.sqrt() + 10.0) as u64;
        while self.cdf(hi) < q {
            hi = hi * 2 + 1;
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= q {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn pmf_small_values() {
        // Poisson(2): P[X=0] = e^{-2}, P[X=1] = 2e^{-2}, P[X=2] = 2e^{-2}.
        let p = Poisson::new(2.0);
        close(p.pmf(0), (-2.0f64).exp(), 1e-12);
        close(p.pmf(1), 2.0 * (-2.0f64).exp(), 1e-12);
        close(p.pmf(2), 2.0 * (-2.0f64).exp(), 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(3.7);
        let mut acc = 0.0;
        for k in 0..30 {
            acc += p.pmf(k);
            close(p.cdf(k), acc, 1e-10);
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let p = Poisson::new(5.0);
        for k in 1..25 {
            close(p.sf(k), 1.0 - p.cdf(k - 1), 1e-10);
        }
        assert_eq!(p.sf(0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = Poisson::new(10.0);
        for q in [0.01, 0.25, 0.5, 0.9, 0.999] {
            let k = p.quantile(q);
            assert!(p.cdf(k) >= q);
            if k > 0 {
                assert!(p.cdf(k - 1) < q);
            }
        }
    }

    #[test]
    fn approximates_binomial_limit() {
        // Bin(100000, λ/100000) ≈ Poisson(λ).
        let lambda = 4.0;
        let n = 100_000u64;
        let b = Binomial::new(n, lambda / n as f64);
        let p = Poisson::new(lambda);
        for k in 0..15 {
            close(b.pmf(k), p.pmf(k), 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn zero_lambda_rejected() {
        let _ = Poisson::new(0.0);
    }
}
