//! Replication statistics: summaries of repeated measurements.

/// Summary of a sample of `f64` measurements (e.g. the gap over 30 seeded
/// runs).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    values: Vec<f64>, // kept sorted
    mean: f64,
    variance: f64,
}

impl Summary {
    /// Summarize a nonempty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite sample value"
        );
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let variance = if values.len() > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            values,
            mean,
            variance,
        }
    }

    /// Convenience: summarize integers.
    pub fn from_u64(values: impl IntoIterator<Item = u64>) -> Self {
        Self::from_values(values.into_iter().map(|v| v as f64).collect())
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        self.stddev() / (self.count() as f64).sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.values.last().unwrap()
    }

    /// `q`-quantile by linear interpolation on the sorted sample,
    /// `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let frac = pos - lo as f64;
            self.values[lo] * (1.0 - frac) + self.values[hi] * frac
        }
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// two-sided level (e.g. `0.95`).
    pub fn mean_ci(&self, level: f64) -> (f64, f64) {
        assert!(level > 0.0 && level < 1.0);
        let z = crate::normal::normal_quantile(0.5 + level / 2.0);
        let half = z * self.stderr();
        (self.mean - half, self.mean + half)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, min {:.3}, med {:.3}, max {:.3})",
            self.mean,
            self.stderr(),
            self.count(),
            self.min(),
            self.median(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_values(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.median(), 30.0);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 50.0);
        assert!((s.quantile(0.25) - 20.0).abs() < 1e-12);
        assert!((s.quantile(0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_values(vec![7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 7.0);
    }

    #[test]
    fn ci_contains_mean_and_shrinks() {
        let small = Summary::from_values((0..10).map(|i| i as f64).collect());
        let large = Summary::from_values((0..1000).map(|i| (i % 10) as f64).collect());
        let (lo_s, hi_s) = small.mean_ci(0.95);
        let (lo_l, hi_l) = large.mean_ci(0.95);
        assert!(lo_s < small.mean() && small.mean() < hi_s);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn from_u64_works() {
        let s = Summary::from_u64([3u64, 1, 2]);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_values(vec![]);
    }

    #[test]
    fn display_contains_mean() {
        let s = Summary::from_values(vec![1.0, 2.0, 3.0]);
        assert!(s.to_string().contains("2.000"));
    }
}
