//! Golden-value tests for the numerics toolkit: every routine checked
//! against independently precomputed reference values (exact fractions
//! where they exist, high-precision references otherwise), so a drive-by
//! "optimization" of a continued fraction or a log-sum cannot silently
//! shift the statistics the conformance oracles depend on.

use pba_analysis::chernoff::{
    chernoff_lower_tail, chernoff_upper_tail, lower_deviation_for, upper_deviation_for, whp_target,
};
use pba_analysis::special::{erf, erfc, ln_gamma, reg_beta, reg_gamma_p, reg_gamma_q};
use pba_analysis::{dkw_epsilon, ks_distance_to, lattice_ks_floor, normal_quantile, Binomial};

fn close(got: f64, want: f64, tol: f64, what: &str) {
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, want {want} (tol {tol})"
    );
}

// --- special functions -----------------------------------------------------

#[test]
fn ln_gamma_golden() {
    // Γ(5) = 24, Γ(1) = Γ(2) = 1, Γ(1/2) = √π.
    close(ln_gamma(5.0), 24.0f64.ln(), 1e-12, "ln Γ(5)");
    close(ln_gamma(1.0), 0.0, 1e-12, "ln Γ(1)");
    close(ln_gamma(2.0), 0.0, 1e-12, "ln Γ(2)");
    close(
        ln_gamma(0.5),
        std::f64::consts::PI.sqrt().ln(),
        1e-12,
        "ln Γ(1/2)",
    );
    // Γ(10) = 362880.
    close(ln_gamma(10.0), 362880.0f64.ln(), 1e-11, "ln Γ(10)");
}

#[test]
fn erf_golden() {
    close(erf(0.0), 0.0, 1e-15, "erf(0)");
    // Abramowitz & Stegun 7.1: erf(1) = 0.8427007929497149.
    close(erf(1.0), 0.842_700_792_949_714_9, 1e-9, "erf(1)");
    close(erf(2.0), 0.995_322_265_018_952_7, 1e-9, "erf(2)");
    close(erfc(1.0), 1.0 - 0.842_700_792_949_714_9, 1e-9, "erfc(1)");
}

#[test]
fn regularized_gamma_golden() {
    // P(1, x) = 1 − e^{−x} exactly.
    close(
        reg_gamma_p(1.0, 1.0),
        1.0 - (-1.0f64).exp(),
        1e-12,
        "P(1,1)",
    );
    // P(2, x) = 1 − e^{−x}(1 + x).
    close(
        reg_gamma_p(2.0, 3.0),
        1.0 - (-3.0f64).exp() * 4.0,
        1e-12,
        "P(2,3)",
    );
    close(
        reg_gamma_q(2.0, 3.0),
        (-3.0f64).exp() * 4.0,
        1e-12,
        "Q(2,3)",
    );
}

#[test]
fn regularized_beta_golden() {
    // I_x(1, b) = 1 − (1−x)^b exactly.
    close(
        reg_beta(1.0, 4.0, 0.3),
        1.0 - 0.7f64.powi(4),
        1e-12,
        "I_0.3(1,4)",
    );
    // I_{1/2}(a, a) = 1/2 by symmetry.
    close(reg_beta(3.5, 3.5, 0.5), 0.5, 1e-12, "I_0.5(3.5,3.5)");
    // I_x(2, 2) = x²(3 − 2x).
    close(reg_beta(2.0, 2.0, 0.25), 0.0625 * 2.5, 1e-12, "I_0.25(2,2)");
}

// --- binomial --------------------------------------------------------------

#[test]
fn binomial_pmf_golden() {
    // Bin(10, 1/2): P[X=5] = 252/1024 = 0.24609375 exactly.
    close(
        Binomial::new(10, 0.5).pmf(5),
        0.246_093_75,
        1e-12,
        "Bin(10,.5) pmf(5)",
    );
    // Bin(20, 0.3): P[X=6] = C(20,6)·0.3⁶·0.7¹⁴ = 0.19163898275344238.
    close(
        Binomial::new(20, 0.3).pmf(6),
        0.191_638_982_753_442_38,
        1e-10,
        "Bin(20,.3) pmf(6)",
    );
    // Degenerate edges.
    close(Binomial::new(7, 0.5).pmf(8), 0.0, 0.0, "pmf beyond n");
}

#[test]
fn binomial_cdf_golden() {
    // Bin(10, 1/2): P[X ≤ 4] = 386/1024 = 0.376953125 exactly.
    close(
        Binomial::new(10, 0.5).cdf(4),
        0.376_953_125,
        1e-10,
        "Bin(10,.5) cdf(4)",
    );
    // Bin(5, 0.2): P[X ≤ 1] = 0.8⁵ + 5·0.2·0.8⁴ = 0.73728 exactly.
    close(
        Binomial::new(5, 0.2).cdf(1),
        0.737_28,
        1e-10,
        "Bin(5,.2) cdf(1)",
    );
    close(Binomial::new(5, 0.2).cdf(5), 1.0, 1e-12, "cdf at n");
}

#[test]
fn binomial_quantile_golden() {
    let b = Binomial::new(100, 0.5);
    // Median of Bin(100, 1/2) is 50.
    assert_eq!(b.quantile(0.5), 50);
    // quantile is the *smallest* k with cdf(k) ≥ q.
    let q = b.quantile(0.975);
    assert!(b.cdf(q) >= 0.975);
    assert!(q == 0 || b.cdf(q - 1) < 0.975);
}

// --- chernoff --------------------------------------------------------------

#[test]
fn chernoff_golden() {
    // exp(−δ²μ/2) and exp(−δ²μ/3) at δ = 1/2, μ = 8: e⁻¹ and e^{−2/3}.
    close(
        chernoff_lower_tail(8.0, 0.5),
        (-1.0f64).exp(),
        1e-15,
        "lower tail",
    );
    close(
        chernoff_upper_tail(8.0, 0.5),
        (-2.0f64 / 3.0).exp(),
        1e-15,
        "upper tail",
    );
    // Inversions are exact closed forms.
    close(
        lower_deviation_for(50.0, 1e-3),
        (2.0 * 50.0 * 1e3f64.ln()).sqrt(),
        1e-12,
        "lower deviation",
    );
    close(
        upper_deviation_for(50.0, 1e-3),
        (3.0 * 50.0 * 1e3f64.ln()).sqrt(),
        1e-12,
        "upper deviation",
    );
    close(whp_target(1024, 2.0), 1024.0f64.powf(-2.0), 0.0, "n^{-c}");
}

// --- kolmogorov ------------------------------------------------------------

#[test]
fn ks_distance_golden() {
    // A single sample at the median: D = 1/2 exactly.
    close(
        ks_distance_to(&[0.0], |x| if x < 0.0 { 0.0 } else { 0.5 }),
        0.5,
        1e-15,
        "single-point KS",
    );
    // A perfect uniform grid vs U(0,1): D = 1/(2n) at n = 4 with
    // midpoint samples {1/8, 3/8, 5/8, 7/8}.
    close(
        ks_distance_to(&[0.125, 0.375, 0.625, 0.875], |x| x.clamp(0.0, 1.0)),
        0.125,
        1e-12,
        "uniform grid KS",
    );
}

#[test]
fn lattice_ks_floor_golden() {
    // Floor is *half* the largest atom: pmf(mode)/2 ≈ 1/(2σ√(2π)).
    close(
        lattice_ks_floor(1.0),
        0.5 / (2.0 * std::f64::consts::PI).sqrt(),
        1e-12,
        "lattice floor σ=1",
    );
    // Scales as 1/σ.
    close(
        lattice_ks_floor(4.0),
        lattice_ks_floor(1.0) / 4.0,
        1e-15,
        "lattice floor σ=4",
    );
}

#[test]
fn dkw_epsilon_golden() {
    // ε = √(ln(2/α)/(2n)): exact closed form.
    close(
        dkw_epsilon(2048, 0.05),
        (40.0f64.ln() / 4096.0).sqrt(),
        1e-15,
        "DKW n=2048 α=.05",
    );
    close(
        dkw_epsilon(1, 0.5),
        (4.0f64.ln() / 2.0).sqrt(),
        1e-15,
        "DKW n=1 α=.5",
    );
}

// --- normal ----------------------------------------------------------------

#[test]
fn normal_quantile_golden() {
    close(normal_quantile(0.5), 0.0, 1e-9, "z(.5)");
    close(
        normal_quantile(0.975),
        1.959_963_984_540_054,
        1e-6,
        "z(.975)",
    );
    close(
        normal_quantile(0.025),
        -1.959_963_984_540_054,
        1e-6,
        "z(.025)",
    );
}
