//! Property tests for the numerics toolkit: structural identities
//! (monotonicity, symmetry, complements, recurrences) over seeded
//! pseudo-random inputs — no external property-testing deps, same
//! hand-rolled harness idiom as the workspace-level `tests/properties.rs`.

use pba_analysis::chernoff::{
    chernoff_lower_tail, chernoff_upper_tail, lower_deviation_for, upper_deviation_for,
};
use pba_analysis::special::{ln_gamma, reg_beta};
use pba_analysis::{dkw_epsilon, Binomial};

/// Minimal deterministic generator (SplitMix64 core) so cases replay.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1).
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

const CASES: u64 = 200;

#[test]
fn binomial_cdf_is_monotone_and_bounded() {
    let mut g = Gen(1);
    for case in 0..CASES {
        let n = 1 + g.next() % 200;
        let p = g.unit();
        let b = Binomial::new(n, p);
        let mut prev = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&c),
                "case {case}: cdf({k}) = {c} out of range"
            );
            assert!(
                c >= prev - 1e-12,
                "case {case}: cdf not monotone at k={k}: {prev} -> {c}"
            );
            prev = c;
        }
        assert!((b.cdf(n) - 1.0).abs() < 1e-9, "case {case}: cdf(n) != 1");
    }
}

#[test]
fn binomial_pmf_is_symmetric_at_half() {
    let mut g = Gen(2);
    for case in 0..CASES {
        let n = 1 + g.next() % 100;
        let b = Binomial::new(n, 0.5);
        let k = g.next() % (n + 1);
        let (a, c) = (b.pmf(k), b.pmf(n - k));
        assert!(
            (a - c).abs() <= 1e-12 * a.max(c).max(1e-300),
            "case {case}: pmf({k}) = {a} != pmf({}) = {c} at p = 1/2",
            n - k
        );
    }
}

#[test]
fn binomial_sf_complements_cdf() {
    let mut g = Gen(3);
    for case in 0..CASES {
        let n = 1 + g.next() % 150;
        let p = g.unit();
        let b = Binomial::new(n, p);
        let k = 1 + g.next() % n;
        // sf is inclusive: P[X ≥ k] + P[X ≤ k−1] = 1.
        let total = b.sf(k) + b.cdf(k - 1);
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: sf + cdf = {total} at n={n} p={p} k={k}"
        );
    }
}

#[test]
fn binomial_quantile_inverts_cdf() {
    let mut g = Gen(4);
    for case in 0..CASES {
        let n = 1 + g.next() % 150;
        let p = g.unit();
        let q = g.unit();
        let b = Binomial::new(n, p);
        let k = b.quantile(q);
        assert!(b.cdf(k) >= q - 1e-12, "case {case}: cdf(quantile) < q");
        if k > 0 {
            assert!(
                b.cdf(k - 1) < q + 1e-12,
                "case {case}: quantile not minimal"
            );
        }
    }
}

#[test]
fn chernoff_tails_are_probabilities_and_monotone_in_delta() {
    let mut g = Gen(5);
    for case in 0..CASES {
        let mu = 200.0 * g.unit();
        let d1 = g.unit();
        let d2 = g.unit();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        for (name, f) in [
            ("lower", chernoff_lower_tail as fn(f64, f64) -> f64),
            ("upper", chernoff_upper_tail as fn(f64, f64) -> f64),
        ] {
            let a = f(mu, lo);
            let b = f(mu, hi);
            assert!(
                (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b),
                "case {case}: {name} tail out of [0,1]"
            );
            assert!(
                b <= a + 1e-12,
                "case {case}: {name} tail not decreasing in δ"
            );
        }
    }
}

#[test]
fn chernoff_deviations_invert_their_tails() {
    let mut g = Gen(6);
    for case in 0..CASES {
        let mu = 1.0 + 500.0 * g.unit();
        let target = (1e-9f64).max(g.unit() * 0.1);
        // Plugging the inverted deviation back in meets the target
        // (up to the δ ≤ 1 clamp on the lower bound).
        let t = lower_deviation_for(mu, target);
        let delta = (t / mu).min(1.0);
        assert!(
            chernoff_lower_tail(mu, delta) <= target + 1e-12 || delta >= 1.0,
            "case {case}: lower inversion misses target"
        );
        let t = upper_deviation_for(mu, target);
        let delta = t / mu;
        if delta <= 1.0 {
            assert!(
                chernoff_upper_tail(mu, delta) <= target + 1e-12,
                "case {case}: upper inversion misses target"
            );
        }
    }
}

#[test]
fn ln_gamma_satisfies_the_recurrence() {
    let mut g = Gen(7);
    for case in 0..CASES {
        let x = 0.5 + 50.0 * g.unit();
        // ln Γ(x+1) = ln Γ(x) + ln x.
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "case {case}: recurrence fails at x = {x}: {lhs} vs {rhs}"
        );
    }
}

#[test]
fn reg_beta_reflection_identity() {
    let mut g = Gen(8);
    for case in 0..CASES {
        let a = 0.5 + 20.0 * g.unit();
        let b = 0.5 + 20.0 * g.unit();
        let x = g.unit();
        // I_x(a,b) + I_{1−x}(b,a) = 1.
        let total = reg_beta(a, b, x) + reg_beta(b, a, 1.0 - x);
        assert!(
            (total - 1.0).abs() < 1e-8,
            "case {case}: reflection gives {total} at a={a} b={b} x={x}"
        );
    }
}

#[test]
fn dkw_epsilon_shrinks_with_samples_and_grows_with_confidence() {
    let mut g = Gen(9);
    for case in 0..CASES {
        let n = 1 + (g.next() % 100_000) as usize;
        let alpha = (g.unit() * 0.5).max(1e-9);
        let e = dkw_epsilon(n, alpha);
        assert!(e > 0.0, "case {case}");
        assert!(
            dkw_epsilon(2 * n, alpha) < e,
            "case {case}: ε not decreasing in n"
        );
        let tighter = (alpha / 2.0).max(1e-12);
        assert!(
            dkw_epsilon(n, tighter) >= e,
            "case {case}: ε not increasing as α tightens"
        );
    }
}
