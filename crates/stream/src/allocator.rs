//! The long-lived [`StreamAllocator`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pba_core::{Backend, BatchRecord, BinState, FaultPlan, MetricsSink, StreamMeta, Tuning};
use pba_par::{global_pool, DisjointIndexMut, ShardedCounters};

use crate::arrival_stream;
use crate::batch::{Batch, BatchOutcome};
use crate::loads::ShardedLoads;
use crate::policy::{PlacementPolicy, PolicyKind};

/// A long-lived online allocator: ingest [`Batch`]es of arrivals and
/// departures against persistent sharded bin state.
///
/// # Determinism
///
/// Arrival `i` of batch `t` draws from the counter-based stream
/// `arrival_stream(seed, t, i)`, and snapshot policies decide from the
/// batch-start loads only; applies are commutative atomic adds. Placements
/// are therefore **identical** for any shard count, any lane count, and
/// sequential vs parallel ingestion — only throughput changes. (The
/// [`TwoChoice`](crate::TwoChoice) policy reads live loads and is defined
/// by its one-lane sequential semantics; it ingests serially.)
///
/// # Examples
///
/// ```
/// use pba_stream::{Batch, PolicyKind, StreamAllocator};
///
/// let mut alloc = StreamAllocator::new(64, 42, PolicyKind::BatchedTwoChoice);
/// let out = alloc.ingest(&Batch::unit_arrivals(0, 640));
/// assert_eq!(out.placements.len(), 640);
/// assert_eq!(out.record.resident, 640);
/// // One 10n-sized batch decides from an all-zero snapshot, so the gap
/// // is one-choice-like; subsequent batches would tighten it.
/// assert!(out.record.gap <= 16, "gap {}", out.record.gap);
/// ```
pub struct StreamAllocator {
    // Fields are `pub(crate)` so the sibling `snapshot` module can encode
    // and rebuild the full state without a parallel accessor surface.
    pub(crate) bins: u32,
    pub(crate) seed: u64,
    pub(crate) policy: Box<dyn PlacementPolicy>,
    pub(crate) loads: ShardedLoads,
    /// Resident ball id → (bin, weight); consulted on departure.
    pub(crate) resident: HashMap<u64, (u32, u64)>,
    pub(crate) batch_seq: u64,
    pub(crate) metrics: Option<Arc<dyn MetricsSink>>,
    pub(crate) parallel: bool,
    /// Chunk-geometry policy for the snapshot ingest path, resolved per
    /// batch through [`Tuning::plan_ingest`] (the ingest table has a
    /// lower fan-out cutoff than the round engine — two probes per ball
    /// amortize dispatch sooner than a full round pass does).
    pub(crate) tuning: Tuning,
    /// Fault injection; only the shard-domain failure component applies
    /// to streaming. `None` is the zero-overhead path.
    pub(crate) faults: Option<FaultPlan>,
}

impl StreamAllocator {
    /// A fresh allocator with one shard and sequential ingestion.
    pub fn new(bins: u32, seed: u64, kind: PolicyKind) -> Self {
        Self {
            bins,
            seed,
            policy: kind.build(bins),
            loads: ShardedLoads::new(bins, 1),
            resident: HashMap::new(),
            batch_seq: 0,
            metrics: None,
            parallel: false,
            tuning: Tuning::Auto,
            faults: None,
        }
    }

    /// Re-shard the (empty) bin state across `shards` lanes.
    ///
    /// Must be called before the first batch: resharding live state would
    /// be a data migration, which the allocator deliberately does not do.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert_eq!(self.batch_seq, 0, "cannot reshard after ingestion began");
        self.loads = ShardedLoads::new(self.bins, shards);
        self
    }

    /// Attach a metrics sink receiving one
    /// [`on_batch`](MetricsSink::on_batch) event per ingested batch.
    /// Placements are unaffected; only per-batch wall clocks start being
    /// read.
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Ingest snapshot-policy batches on the global thread pool.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Set the chunk-geometry policy for snapshot ingestion.
    /// [`Tuning::Auto`] (the default) sizes chunks per batch from the
    /// arrival count and pool lanes; [`Tuning::fixed`] pins the geometry.
    /// Placements are identical for every setting — only throughput
    /// changes.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Arm fault injection. Streaming honours the plan's shard-domain
    /// failure component ([`FaultPlan::with_shard_failures`]): each batch
    /// draws a failed-domain mask from `(plan.seed, batch)`, and any
    /// placement landing in a failed domain is redirected — cyclically —
    /// to the next bin in a live domain. The redirect is a pure function
    /// of `(bin, mask)`, so placements stay identical across shard
    /// counts and sequential vs parallel ingestion.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Number of bins.
    pub fn bins(&self) -> u32 {
        self.bins
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batch_seq
    }

    /// Balls currently resident.
    pub fn resident(&self) -> u64 {
        self.resident.len() as u64
    }

    /// The live bin state (shared accounting trait with the engine).
    pub fn bin_state(&self) -> &dyn BinState {
        &self.loads
    }

    /// Identity carried by every metrics event this allocator emits.
    pub fn meta(&self) -> StreamMeta {
        StreamMeta {
            bins: self.bins,
            seed: self.seed,
            policy: self.policy.name(),
            shards: self.loads.shards(),
        }
    }

    /// Apply one batch: departures leave, then every arrival is placed.
    ///
    /// Returns the chosen bins (arrival order) and the batch statistics;
    /// the same record goes to the attached sink, if any.
    pub fn ingest(&mut self, batch: &Batch) -> BatchOutcome {
        // No sink → no clock reads, matching the engine's zero-cost rule.
        let start = self.metrics.as_ref().map(|_| Instant::now());

        let mut departed = 0u64;
        for id in &batch.departures {
            if let Some((bin, weight)) = self.resident.remove(id) {
                self.loads.sub(bin, weight);
                departed += 1;
            }
        }

        let arrivals = &batch.arrivals;
        let arrival_weight: u64 = arrivals.iter().map(|b| b.weight).sum();
        let projected_avg = (self.loads.total_load() + arrival_weight) as f64 / self.bins as f64;
        self.policy
            .begin_batch(self.batch_seq, arrival_weight, projected_avg);

        // Deterministic in (plan.seed, batch) only; zero when unarmed.
        let fault_mask = match &self.faults {
            Some(plan) if plan.has_domain_faults() => plan.failed_domains(self.batch_seq),
            _ => 0,
        };
        let redirects = AtomicU64::new(0);

        let touches = ShardedCounters::new(self.loads.shards());
        let placements = if self.policy.needs_live_loads() {
            self.place_live(arrivals, &touches, fault_mask, &redirects)
        } else {
            self.place_snapshot(arrivals, &touches, fault_mask, &redirects)
        };

        for (ball, &bin) in arrivals.iter().zip(&placements) {
            self.resident.insert(ball.id, (bin, ball.weight));
        }

        let record = BatchRecord {
            batch: self.batch_seq,
            arrivals: arrivals.len() as u64,
            departures: departed,
            arrival_weight,
            resident: self.resident.len() as u64,
            max_load: self.loads.max_load(),
            gap: self.loads.gap(),
            wall_nanos: start.map_or(0, |t| t.elapsed().as_nanos() as u64),
            shard_touches: touches.values(),
            failed_domains: u64::from(fault_mask.count_ones()),
            fault_redirects: redirects.into_inner(),
        };
        if let Some(sink) = &self.metrics {
            sink.on_batch(&self.meta(), &record);
        }
        self.batch_seq += 1;
        BatchOutcome { placements, record }
    }

    /// Sequential path for live-load policies: each placement is visible
    /// to the next decision (classic Greedy semantics, batch size 1).
    fn place_live(
        &mut self,
        arrivals: &[crate::Ball],
        touches: &ShardedCounters,
        fault_mask: u64,
        redirects: &AtomicU64,
    ) -> Vec<u32> {
        let faults = self.faults;
        let bins = self.bins;
        arrivals
            .iter()
            .enumerate()
            .map(|(i, ball)| {
                let mut rng = arrival_stream(self.seed, self.batch_seq, i as u64);
                let mut bin = self.policy.place(&self.loads, &mut rng);
                if fault_mask != 0 {
                    let live = faults.as_ref().unwrap().redirect(bin, fault_mask, bins);
                    if live != bin {
                        redirects.fetch_add(1, Ordering::Relaxed);
                        bin = live;
                    }
                }
                let (shard, _) = self.loads.locate(bin);
                self.loads.add(bin, ball.weight);
                touches.add(shard, 1);
                bin
            })
            .collect()
    }

    /// Snapshot path: decide every arrival against the batch-start loads
    /// (read-only, so decisions parallelize), then apply the commutative
    /// adds. Both stages run on the same [`Backend`] the engine uses —
    /// [`Backend::Serial`] below the cutoff (or when parallel ingestion is
    /// off), the global pool otherwise. Placements are identical either
    /// way.
    fn place_snapshot(
        &mut self,
        arrivals: &[crate::Ball],
        touches: &ShardedCounters,
        fault_mask: u64,
        redirects: &AtomicU64,
    ) -> Vec<u32> {
        let seed = self.seed;
        let batch_seq = self.batch_seq;
        let faults = self.faults;
        let bins = self.bins;
        let decide = |i: usize| -> u32 {
            let mut rng = arrival_stream(seed, batch_seq, i as u64);
            let bin = self.policy.place(&self.loads, &mut rng);
            if fault_mask == 0 {
                return bin;
            }
            let live = faults.as_ref().unwrap().redirect(bin, fault_mask, bins);
            if live != bin {
                redirects.fetch_add(1, Ordering::Relaxed);
            }
            live
        };
        let lanes = if self.parallel {
            global_pool().lanes()
        } else {
            1
        };
        let plan = self.tuning.plan_ingest(arrivals.len() as u64, lanes);
        let backend = if self.parallel && arrivals.len() >= plan.par_cutoff {
            Backend::Pool(global_pool())
        } else {
            Backend::Serial
        };
        let chunking = backend.chunking(arrivals.len(), plan.min_chunk);
        let mut placements = vec![0u32; arrivals.len()];
        {
            let view = DisjointIndexMut::new(&mut placements);
            backend.run(chunking.chunks(), |ci| {
                for i in chunking.range(ci) {
                    // SAFETY: chunk ranges partition `0..arrivals.len()`
                    // disjointly, so no two tasks write the same slot.
                    unsafe {
                        *view.index_mut(i) = decide(i);
                    }
                }
            });
        }
        let pairs: Vec<(u32, u64)> = placements
            .iter()
            .zip(arrivals)
            .map(|(&bin, ball)| (bin, ball.weight))
            .collect();
        self.loads.apply(backend, &pairs, touches);
        placements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ball;
    use pba_core::EngineMetrics;

    #[test]
    fn ingest_places_every_arrival() {
        let mut alloc = StreamAllocator::new(16, 7, PolicyKind::TwoChoice);
        let out = alloc.ingest(&Batch::unit_arrivals(0, 160));
        assert_eq!(out.placements.len(), 160);
        assert!(out.placements.iter().all(|&b| b < 16));
        assert_eq!(out.record.arrivals, 160);
        assert_eq!(out.record.resident, 160);
        assert_eq!(alloc.bin_state().total_load(), 160);
    }

    #[test]
    fn departures_free_capacity() {
        let mut alloc = StreamAllocator::new(8, 1, PolicyKind::OneChoice);
        alloc.ingest(&Batch::unit_arrivals(0, 64));
        let out = alloc.ingest(&Batch {
            arrivals: vec![],
            departures: (0..32).collect(),
        });
        assert_eq!(out.record.departures, 32);
        assert_eq!(out.record.resident, 32);
        assert_eq!(alloc.bin_state().total_load(), 32);
        // Unknown ids are ignored, not double-counted.
        let out = alloc.ingest(&Batch {
            arrivals: vec![],
            departures: vec![0, 1, 999],
        });
        assert_eq!(out.record.departures, 0);
    }

    #[test]
    fn weighted_balls_contribute_weight() {
        let mut alloc = StreamAllocator::new(4, 2, PolicyKind::BatchedTwoChoice);
        let out = alloc.ingest(&Batch {
            arrivals: vec![Ball::weighted(0, 10), Ball::weighted(1, 3)],
            departures: vec![],
        });
        assert_eq!(out.record.arrival_weight, 13);
        assert_eq!(alloc.bin_state().total_load(), 13);
        alloc.ingest(&Batch {
            arrivals: vec![],
            departures: vec![0],
        });
        assert_eq!(alloc.bin_state().total_load(), 3);
    }

    #[test]
    fn metrics_sink_sees_batches_without_perturbing_placements() {
        let run = |sink: Option<Arc<EngineMetrics>>| {
            let mut alloc = StreamAllocator::new(32, 5, PolicyKind::BatchedTwoChoice);
            if let Some(s) = &sink {
                alloc = alloc.with_metrics(s.clone());
            }
            let mut all = Vec::new();
            for t in 0..4u64 {
                all.extend(alloc.ingest(&Batch::unit_arrivals(t * 100, 100)).placements);
            }
            all
        };
        let bare = run(None);
        let sink = Arc::new(EngineMetrics::new());
        let observed = run(Some(sink.clone()));
        assert_eq!(bare, observed, "sink must not perturb placements");
        let report = sink.report();
        assert_eq!(report.batches, 4);
        assert_eq!(report.batch_arrivals, 400);
        assert!(report.batch_nanos > 0, "attached sink must be timed");
    }

    #[test]
    fn shard_touches_cover_all_placements() {
        let mut alloc = StreamAllocator::new(64, 9, PolicyKind::OneChoice).with_shards(4);
        let out = alloc.ingest(&Batch::unit_arrivals(0, 500));
        assert_eq!(out.record.shard_touches.len(), 4);
        assert_eq!(out.record.shard_touches.iter().sum::<u64>(), 500);
    }

    #[test]
    fn domain_faults_redirect_off_failed_domains() {
        let plan = FaultPlan::new(0xFA01).with_shard_failures(8, 0.4);
        let mut alloc =
            StreamAllocator::new(64, 11, PolicyKind::BatchedTwoChoice).with_faults(plan);
        let mut saw_fault_batch = false;
        for t in 0..8u64 {
            let mask = plan.failed_domains(t);
            let out = alloc.ingest(&Batch::unit_arrivals(t * 1000, 640));
            assert_eq!(out.record.failed_domains, u64::from(mask.count_ones()));
            if mask != 0 {
                saw_fault_batch = true;
                for &bin in &out.placements {
                    assert_eq!(
                        (mask >> plan.domain_of(bin, 64)) & 1,
                        0,
                        "placement {bin} landed in a failed domain"
                    );
                }
            } else {
                assert_eq!(out.record.fault_redirects, 0);
            }
        }
        assert!(saw_fault_batch, "0.4 over 8 domains × 8 batches must fire");
    }

    #[test]
    fn faulted_placements_identical_across_shard_counts() {
        let plan = FaultPlan::new(7).with_shard_failures(4, 0.5);
        let run = |shards: usize| {
            let mut alloc = StreamAllocator::new(32, 3, PolicyKind::BatchedTwoChoice)
                .with_shards(shards)
                .with_faults(plan);
            let mut all = Vec::new();
            for t in 0..6u64 {
                all.extend(alloc.ingest(&Batch::unit_arrivals(t * 100, 100)).placements);
            }
            all
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn unfaulted_batches_report_zero_fault_fields() {
        let mut alloc = StreamAllocator::new(16, 4, PolicyKind::TwoChoice);
        let out = alloc.ingest(&Batch::unit_arrivals(0, 200));
        assert_eq!(out.record.failed_domains, 0);
        assert_eq!(out.record.fault_redirects, 0);
    }

    #[test]
    #[should_panic(expected = "reshard")]
    fn resharding_after_ingestion_panics() {
        let mut alloc = StreamAllocator::new(8, 0, PolicyKind::OneChoice);
        alloc.ingest(&Batch::unit_arrivals(0, 8));
        let _ = alloc.with_shards(2);
    }
}
