//! # `pba-stream` — online batched balls-into-bins allocation
//!
//! The one-shot crates answer "place `m` balls, report the gap, exit".
//! This crate is the online counterpart: a long-lived [`StreamAllocator`]
//! that ingests [`Batch`]es of weighted arrivals and departures (churn)
//! against persistent bin state sharded across [`pba_par::ThreadPool`]
//! lanes — the balls-into-bins abstraction of a request router that never
//! stops receiving traffic. It reproduces the *batched* model of Los &
//! Sauerwald ("Balanced Allocations in Batches"): all balls of a batch
//! decide from the same stale load snapshot, so the two-choice gap grows
//! with the batch size `b` — the price of parallel placement decisions.
//!
//! ## Pieces
//!
//! * [`StreamAllocator`] — ingestion, resident-ball tracking, metrics.
//! * [`ShardedLoads`] — per-shard contiguous load vectors, applied to in
//!   parallel through atomic views ([`pba_par::as_atomic_u64`]); shares
//!   load accounting with the engine via [`pba_core::BinState`].
//! * Policies ([`PlacementPolicy`]): [`OneChoice`], [`TwoChoice`] (live
//!   loads, sequential), [`BatchedTwoChoice`] (stale snapshot, parallel),
//!   and [`Threshold`] (the heavy-case undershoot schedule of
//!   `pba-protocols`, refreshed per batch).
//! * [`Workload`] — deterministic synthetic traffic: uniform, Zipf-skewed
//!   weights, bursts; churn; weighted balls ([`WeightDist`]).
//! * [`ReplayService`] — the production facade: a worker thread owning the
//!   allocator behind a bounded backpressure queue, with per-checkpoint
//!   latency percentiles ([`LatencyHistogram`]) and graceful drain.
//! * [`ingest`] — socket ingestion: [`IngestFrame`]s carry real traffic
//!   to a listening allocator over the binary wire codec
//!   ([`pba_core::wire`]), bit-identical to in-process ingestion.
//! * Snapshot/restore ([`StreamAllocator::snapshot`] /
//!   [`StreamAllocator::restore`]) — the full allocator state to framed,
//!   checksummed bytes; a restored session continues bit-identically.
//!
//! ## Determinism
//!
//! Arrival `i` of batch `t` owns the counter-based stream
//! [`arrival_stream`]`(seed, t, i)`; snapshot policies decide from
//! batch-start loads only, and load updates are commutative atomic adds.
//! Placements are therefore identical across shard counts, lane counts,
//! and sequential-vs-parallel ingestion — verified by the equivalence
//! tests in `tests/`.
//!
//! ## Example
//!
//! ```
//! use pba_stream::{PolicyKind, StreamAllocator, Workload, WorkloadCfg};
//!
//! let n = 256;
//! let mut alloc = StreamAllocator::new(n, 42, PolicyKind::BatchedTwoChoice);
//! let mut traffic = Workload::new(WorkloadCfg::uniform(4 * n as u64), 42);
//! for _ in 0..8 {
//!     alloc.ingest(&traffic.next_batch());
//! }
//! let gap = alloc.bin_state().gap();
//! assert!(gap <= 10, "batched two-choice gap {gap} out of range");
//! ```

pub mod allocator;
pub mod batch;
pub mod hist;
pub mod ingest;
pub mod loads;
pub mod policy;
pub mod service;
pub mod snapshot;
pub mod workload;

pub use allocator::StreamAllocator;
pub use batch::{Ball, Batch, BatchOutcome};
pub use hist::LatencyHistogram;
pub use ingest::{IngestFrame, IngestSummary};
pub use loads::ShardedLoads;
pub use policy::{BatchedTwoChoice, OneChoice, PlacementPolicy, PolicyKind, Threshold, TwoChoice};
pub use service::{replay, ReplayService, ServiceConfig, ServiceReport};
pub use snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use workload::{WeightDist, Workload, WorkloadCfg, WorkloadKind};

use pba_core::SplitMix64;

/// The random stream owned by arrival `index` of batch `batch`.
///
/// The streaming analogue of [`pba_core::ball_stream`]: stateless, so any
/// lane can regenerate any arrival's draws, with a distinct salt so
/// streams never collide with the engine's per-round streams.
#[inline]
pub fn arrival_stream(seed: u64, batch: u64, index: u64) -> SplitMix64 {
    let a = SplitMix64::mix(seed ^ 0xB5297A4D3F84D5B5 ^ batch.wrapping_mul(0xA24BAED4963EE407));
    let b = SplitMix64::mix(a ^ index.wrapping_mul(0x9FB21C651E98DF25));
    SplitMix64::new(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::rng::Rand64;

    #[test]
    fn arrival_streams_are_reproducible_and_distinct() {
        let mut a = arrival_stream(1, 5, 10);
        let mut b = arrival_stream(1, 5, 10);
        let mut c = arrival_stream(1, 5, 11);
        let mut d = arrival_stream(1, 6, 10);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn arrival_stream_first_draw_is_roughly_uniform() {
        let n = 32u32;
        let mut counts = vec![0u32; n as usize];
        for i in 0..64_000u64 {
            let mut s = arrival_stream(9, 3, i);
            counts[s.below(n) as usize] += 1;
        }
        let expected = 64_000.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.1, "count {c}");
        }
    }
}
