//! Sharded concurrent bin state: [`ShardedLoads`].
//!
//! The streaming allocator keeps bin loads alive across batches, so unlike
//! the one-shot engine it cannot hand a single `&mut Vec` to one executor
//! invocation and forget it. Instead the `n` bins are range-partitioned
//! into `s` shards, each shard owning a contiguous `Vec<u64>` of loads.
//! During parallel batch application every pool lane reinterprets the
//! shard vectors as atomic slices (via [`pba_par::as_atomic_u64`]) and
//! applies its slice of placements with relaxed `fetch_add`s — commutative,
//! so the resulting loads are identical for **any** shard count and any
//! lane interleaving. A [`pba_par::ShardedCounters`] alongside tallies how
//! many placements landed in each shard's range: the per-batch
//! shard-contention signal reported through metrics.

use pba_core::{Backend, BinState};
use pba_par::{as_atomic_u64, CachePadded, ShardedCounters};
use std::sync::atomic::Ordering;

/// Per-bin `u64` loads, range-partitioned into shards.
///
/// Bin `b` lives in shard `b * s / n` (balanced ranges); lookups go
/// through [`Self::locate`]. Implements [`BinState`], so gap/max-load
/// accounting is shared with the one-shot engine.
#[derive(Debug, Clone)]
pub struct ShardedLoads {
    bins: u32,
    /// Cumulative start bin of each shard, plus a final `bins` sentinel.
    starts: Vec<u32>,
    /// One contiguous load vector per shard, each header on its own cache
    /// line so concurrent lanes applying to adjacent shards never
    /// false-share the shard metadata.
    shards: Vec<CachePadded<Vec<u64>>>,
}

impl ShardedLoads {
    /// All-zero loads for `bins` bins split into `shards` ranges.
    ///
    /// `shards` is clamped to `[1, bins]` — an empty shard would make the
    /// atomic view vacuous and the contention signal misleading.
    pub fn new(bins: u32, shards: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let s = shards.clamp(1, bins as usize);
        let starts: Vec<u32> = (0..=s)
            .map(|i| ((i as u64 * bins as u64) / s as u64) as u32)
            .collect();
        let shard_vecs = starts
            .windows(2)
            .map(|w| CachePadded::new(vec![0u64; (w[1] - w[0]) as usize]))
            .collect();
        Self {
            bins,
            starts,
            shards: shard_vecs,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `bin`, and the bin's offset within it.
    #[inline]
    pub fn locate(&self, bin: u32) -> (usize, usize) {
        debug_assert!(bin < self.bins);
        let s = (bin as u64 * self.shards.len() as u64 / self.bins as u64) as usize;
        // Balanced ranges make the multiplicative guess exact or off by
        // one; correct against the start table.
        let s = if bin < self.starts[s] {
            s - 1
        } else if bin >= self.starts[s + 1] {
            s + 1
        } else {
            s
        };
        (s, (bin - self.starts[s]) as usize)
    }

    /// Add `weight` to `bin` (single-threaded ingestion path).
    #[inline]
    pub fn add(&mut self, bin: u32, weight: u64) {
        let (s, i) = self.locate(bin);
        self.shards[s][i] += weight;
    }

    /// Remove `weight` from `bin` (departures; saturating guards against
    /// a corrupted resident map ever underflowing a bin).
    #[inline]
    pub fn sub(&mut self, bin: u32, weight: u64) {
        let (s, i) = self.locate(bin);
        self.shards[s][i] = self.shards[s][i].saturating_sub(weight);
    }

    /// Apply a batch of `(bin, weight)` placements on the given backend.
    ///
    /// On [`Backend::Pool`] every pool lane handles its own placements,
    /// adding through atomic views of the shard vectors; on
    /// [`Backend::Serial`] the same loop runs inline on the calling
    /// thread. `touches` (when sized to [`Self::shards`]) receives one
    /// count per placement keyed by the *owning shard* — the contention
    /// distribution. Additions are relaxed `fetch_add`s, so the final
    /// loads are identical for any backend, lane count or shard count.
    pub fn apply(
        &mut self,
        backend: Backend<'_>,
        placements: &[(u32, u64)],
        touches: &ShardedCounters,
    ) {
        let starts = &self.starts;
        let bins = self.bins;
        let shards = self.shards.len();
        let views: Vec<&[std::sync::atomic::AtomicU64]> =
            self.shards.iter_mut().map(|v| as_atomic_u64(v)).collect();
        backend.run(placements.len(), |i| {
            let (bin, weight) = placements[i];
            let mut s = (bin as u64 * shards as u64 / bins as u64) as usize;
            if bin < starts[s] {
                s -= 1;
            } else if bin >= starts[s + 1] {
                s += 1;
            }
            views[s][(bin - starts[s]) as usize].fetch_add(weight, Ordering::Relaxed);
            touches.add(s, 1);
        });
    }
}

impl BinState for ShardedLoads {
    #[inline]
    fn bins(&self) -> u32 {
        self.bins
    }

    #[inline]
    fn load(&self, bin: u32) -> u64 {
        let (s, i) = self.locate(bin);
        self.shards[s][i]
    }

    fn total_load(&self) -> u64 {
        self.shards.iter().map(|v| v.iter().sum::<u64>()).sum()
    }

    fn max_load(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|v| v.iter().copied().max())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_par::ThreadPool;

    #[test]
    fn locate_is_a_bijection() {
        for shards in [1usize, 2, 3, 8, 13] {
            let loads = ShardedLoads::new(100, shards);
            let mut seen = std::collections::HashSet::new();
            for bin in 0..100 {
                let (s, i) = loads.locate(bin);
                assert!(s < loads.shards(), "bin {bin} shard {s}");
                assert!(i < loads.shards[s].len());
                assert!(seen.insert((s, i)), "bin {bin} collided");
            }
        }
    }

    #[test]
    fn add_sub_roundtrip_across_shard_counts() {
        for shards in [1usize, 2, 8] {
            let mut loads = ShardedLoads::new(64, shards);
            loads.add(0, 5);
            loads.add(63, 7);
            loads.add(31, 1);
            loads.sub(63, 3);
            assert_eq!(loads.load(0), 5);
            assert_eq!(loads.load(63), 4);
            assert_eq!(loads.load(31), 1);
            assert_eq!(loads.total_load(), 10);
            assert_eq!(loads.max_load(), 5);
        }
    }

    #[test]
    fn sub_saturates() {
        let mut loads = ShardedLoads::new(4, 2);
        loads.add(1, 2);
        loads.sub(1, 10);
        assert_eq!(loads.load(1), 0);
    }

    #[test]
    fn shard_count_clamped_to_bins() {
        let loads = ShardedLoads::new(3, 16);
        assert_eq!(loads.shards(), 3);
        let loads = ShardedLoads::new(3, 0);
        assert_eq!(loads.shards(), 1);
    }

    #[test]
    fn parallel_apply_matches_sequential() {
        let pool = ThreadPool::new(3);
        let placements: Vec<(u32, u64)> = (0..10_000u32)
            .map(|i| (i % 97, 1 + (i % 3) as u64))
            .collect();
        let mut seq = ShardedLoads::new(97, 4);
        let mut par = ShardedLoads::new(97, 4);
        let t_seq = ShardedCounters::new(4);
        let t_par = ShardedCounters::new(4);
        seq.apply(Backend::Serial, &placements, &t_seq);
        par.apply(Backend::Pool(&pool), &placements, &t_par);
        assert_eq!(seq.load_vector(), par.load_vector());
        assert_eq!(t_seq.values(), t_par.values());
        assert_eq!(t_seq.total(), 10_000);
    }
}
