//! The production service facade: a long-lived replay loop around
//! [`StreamAllocator`].
//!
//! [`ReplayService`] owns the allocator on a dedicated worker thread and
//! feeds it through a **bounded** ingestion queue — the shape of the
//! simulator-with-a-thread-pool exemplar the repo's service design
//! follows: submission handle in front, liveness owned by the worker,
//! graceful drain at the end.
//!
//! * **Backpressure, never drop**: the queue is a rendezvous
//!   [`sync_channel`] of configurable capacity. A full queue *blocks* the
//!   submitter until the worker catches up; no ball is ever dropped or
//!   reordered (single FIFO consumer), so service-path placements are
//!   bit-identical to calling [`StreamAllocator::ingest`] directly.
//! * **Pipelined admission**: while the worker resolves batch `k` (on the
//!   global pool, for parallel snapshot policies), the driver thread is
//!   already gathering batch `k+1` from the [`Workload`] generator — the
//!   queue capacity is the pipeline depth.
//! * **Latency accounting**: each submitted batch carries its enqueue
//!   instant; when its placements land, the elapsed time is charged to
//!   every ball of the batch in a log₂ [`LatencyHistogram`]. Every
//!   `checkpoint_every` batches the window closes into a
//!   [`ServiceRecord`] (p50/p99/p999/max latency, gap, window wall time)
//!   delivered to the allocator's [`MetricsSink`] via `on_service`.
//! * **Snapshot at a checkpoint**: [`ServiceConfig::snapshot_at`] makes
//!   the worker serialize the allocator right after the named batch —
//!   between batches, so the captured state is exactly what the next
//!   batch would have seen. Restoring it and replaying the remaining
//!   batches reproduces the uninterrupted run bit for bit.
//! * **Graceful drain**: dropping the submission side closes the queue;
//!   the worker flushes every queued batch, closes the final partial
//!   checkpoint window, and hands back the allocator plus a
//!   [`ServiceReport`].
//!
//! The latency clock is always read — a latency service is *for*
//! measurement — but clocks never influence placement, so determinism is
//! untouched.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pba_core::{ServiceMeta, ServiceRecord};

use crate::batch::Batch;
use crate::hist::LatencyHistogram;
use crate::workload::Workload;
use crate::StreamAllocator;

/// Shape of a [`ReplayService`] session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bounded ingestion-queue capacity (≥ 1). Submitters block when the
    /// queue is full — backpressure, never load shedding. Also the
    /// admission pipeline depth.
    pub queue_capacity: usize,
    /// Batches per checkpoint window (≥ 1); each window closes into one
    /// [`ServiceRecord`].
    pub checkpoint_every: u64,
    /// Take a state snapshot right after this many batches have been
    /// ingested (`Some(k)` → between batch `k-1` and batch `k`,
    /// 1-indexed by count). The bytes land in [`ServiceReport::snapshot`].
    pub snapshot_at: Option<u64>,
    /// Keep every batch's placement vector in the report (tests; costs
    /// memory proportional to the replay).
    pub keep_placements: bool,
    /// Target replay rate in balls/sec carried in [`ServiceMeta`] for
    /// observability (`0.0` = unthrottled). Pacing itself is the
    /// *driver's* job — see [`replay`].
    pub rate: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 4,
            checkpoint_every: 16,
            snapshot_at: None,
            keep_placements: false,
            rate: 0.0,
        }
    }
}

impl ServiceConfig {
    /// Set the bounded queue capacity (pipeline depth).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the checkpoint window length in batches.
    pub fn with_checkpoint_every(mut self, batches: u64) -> Self {
        self.checkpoint_every = batches;
        self
    }

    /// Snapshot the allocator after `batches` ingested batches.
    pub fn with_snapshot_at(mut self, batches: u64) -> Self {
        self.snapshot_at = Some(batches);
        self
    }

    /// Retain per-batch placement vectors in the report.
    pub fn with_placements(mut self) -> Self {
        self.keep_placements = true;
        self
    }

    /// Record the target replay rate (balls/sec) in the session meta.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }
}

/// Everything a drained service session hands back.
#[derive(Debug, Default)]
pub struct ServiceReport {
    /// One record per closed checkpoint window, in order (the last one
    /// may cover a partial window flushed at drain).
    pub checkpoints: Vec<ServiceRecord>,
    /// Placement-latency histogram over the whole session.
    pub total: LatencyHistogram,
    /// Batches ingested.
    pub batches: u64,
    /// Balls placed.
    pub balls: u64,
    /// Arrivals redirected away from failed domains, summed over the
    /// session (the allocator reports these per batch only).
    pub fault_redirects: u64,
    /// Batches that saw at least one failed domain.
    pub degraded_batches: u64,
    /// `(batches ingested when taken, bytes)` of the state snapshot, when
    /// [`ServiceConfig::snapshot_at`] was set and reached.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Per-batch placements (only with [`ServiceConfig::keep_placements`]).
    pub placements: Vec<Vec<u32>>,
    /// Wall-clock nanoseconds from service start to drain.
    pub wall_nanos: u64,
}

/// One queued unit of work: the batch plus its enqueue instant.
struct Job {
    batch: Batch,
    enqueued: Instant,
}

/// A running replay service. Construct with [`start`](Self::start),
/// submit batches (blocking on backpressure), then [`drain`](Self::drain)
/// to get the allocator and the session report back.
///
/// # Examples
///
/// ```
/// use pba_stream::{Batch, PolicyKind, ReplayService, ServiceConfig, StreamAllocator};
///
/// let alloc = StreamAllocator::new(64, 42, PolicyKind::BatchedTwoChoice);
/// let service = ReplayService::start(alloc, ServiceConfig::default().with_checkpoint_every(2));
/// for t in 0..4u64 {
///     service.submit(Batch::unit_arrivals(t * 128, 128));
/// }
/// let (alloc, report) = service.drain();
/// assert_eq!(report.batches, 4);
/// assert_eq!(report.balls, 512);
/// assert_eq!(alloc.resident(), 512);
/// assert_eq!(report.checkpoints.len(), 2);
/// ```
pub struct ReplayService {
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<(StreamAllocator, ServiceReport)>>,
}

impl ReplayService {
    /// Move `alloc` onto a dedicated worker thread behind a bounded
    /// queue. Checkpoint records go to the allocator's metrics sink (if
    /// any) through [`MetricsSink::on_service`].
    ///
    /// [`MetricsSink::on_service`]: pba_core::MetricsSink::on_service
    pub fn start(alloc: StreamAllocator, cfg: ServiceConfig) -> Self {
        assert!(cfg.queue_capacity >= 1, "queue needs capacity for a batch");
        assert!(cfg.checkpoint_every >= 1, "checkpoint window must be ≥ 1");
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
        let worker = thread::Builder::new()
            .name("pba-serve".into())
            .spawn(move || worker_loop(alloc, rx, cfg))
            .expect("spawn service worker");
        Self {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Submit one batch, blocking while the queue is full (backpressure).
    /// Batches resolve strictly in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the worker died (its panic is the root cause; drain
    /// would surface it too).
    pub fn submit(&self, batch: Batch) {
        let job = Job {
            batch,
            enqueued: Instant::now(),
        };
        self.tx
            .as_ref()
            .expect("submission side already closed")
            .send(job)
            .expect("service worker died mid-session");
    }

    /// Close the queue, let the worker flush every in-flight batch and
    /// the final partial checkpoint window, and hand back the allocator
    /// with the session report.
    pub fn drain(mut self) -> (StreamAllocator, ServiceReport) {
        drop(self.tx.take());
        self.worker
            .take()
            .expect("drain is called once")
            .join()
            .expect("service worker panicked")
    }
}

impl Drop for ReplayService {
    /// Dropping without [`drain`](Self::drain) still shuts down cleanly:
    /// close the queue, join the worker, discard the report.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    mut alloc: StreamAllocator,
    rx: Receiver<Job>,
    cfg: ServiceConfig,
) -> (StreamAllocator, ServiceReport) {
    let stream_meta = alloc.meta();
    let meta = ServiceMeta {
        bins: stream_meta.bins,
        seed: stream_meta.seed,
        policy: stream_meta.policy,
        shards: stream_meta.shards,
        queue: cfg.queue_capacity,
        rate: cfg.rate,
    };
    let sink = alloc.metrics.clone();

    let started = Instant::now();
    let mut report = ServiceReport::default();
    let mut window = LatencyHistogram::new();
    let mut window_batches = 0u64;
    let mut window_balls = 0u64;
    let mut window_snapshot_bytes = 0u64;
    let mut window_start = started;
    let mut checkpoint = 0u64;

    let close_window = |alloc: &StreamAllocator,
                        window: &mut LatencyHistogram,
                        window_batches: &mut u64,
                        window_balls: &mut u64,
                        window_snapshot_bytes: &mut u64,
                        window_start: &mut Instant,
                        checkpoint: &mut u64,
                        report: &mut ServiceReport| {
        let record = ServiceRecord {
            checkpoint: *checkpoint,
            batches: *window_batches,
            balls: *window_balls,
            resident: alloc.resident(),
            max_load: alloc.bin_state().max_load(),
            gap: alloc.bin_state().gap(),
            p50_nanos: window.p50(),
            p99_nanos: window.p99(),
            p999_nanos: window.p999(),
            max_nanos: window.max(),
            wall_nanos: window_start.elapsed().as_nanos() as u64,
            snapshot_bytes: *window_snapshot_bytes,
        };
        if let Some(sink) = &sink {
            sink.on_service(&meta, &record);
        }
        report.checkpoints.push(record);
        *checkpoint += 1;
        window.clear();
        *window_batches = 0;
        *window_balls = 0;
        *window_snapshot_bytes = 0;
        *window_start = Instant::now();
    };

    while let Ok(job) = rx.recv() {
        let out = alloc.ingest(&job.batch);
        let latency = job.enqueued.elapsed().as_nanos() as u64;
        let balls = out.record.arrivals;
        window.record_n(latency, balls);
        report.total.record_n(latency, balls);
        report.batches += 1;
        report.balls += balls;
        report.fault_redirects += out.record.fault_redirects;
        if out.record.failed_domains > 0 {
            report.degraded_batches += 1;
        }
        window_batches += 1;
        window_balls += balls;
        if cfg.keep_placements {
            report.placements.push(out.placements);
        }

        // Checkpoint the state *between* batches: what the snapshot holds
        // is exactly what the next batch would have decided against.
        if cfg.snapshot_at == Some(report.batches) {
            let bytes = alloc.snapshot();
            window_snapshot_bytes = bytes.len() as u64;
            report.snapshot = Some((report.batches, bytes));
        }

        if window_batches == cfg.checkpoint_every {
            close_window(
                &alloc,
                &mut window,
                &mut window_batches,
                &mut window_balls,
                &mut window_snapshot_bytes,
                &mut window_start,
                &mut checkpoint,
                &mut report,
            );
        }
    }

    // Queue closed: every submitted batch has been flushed. Close the
    // final partial window so no latency sample is silently lost.
    if window_batches > 0 {
        close_window(
            &alloc,
            &mut window,
            &mut window_batches,
            &mut window_balls,
            &mut window_snapshot_bytes,
            &mut window_start,
            &mut checkpoint,
            &mut report,
        );
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    (alloc, report)
}

/// Replay `batches` [`Workload`] batches through a service session,
/// pacing submissions toward [`ServiceConfig::rate`] balls/sec (0 =
/// unthrottled), and drain.
///
/// This is the pipelined driver: batch `k+1` is generated on the calling
/// thread while the worker resolves batch `k`. Pacing only delays
/// *submission*; placements are a pure function of the workload and the
/// allocator state, so the replay is bit-identical at every rate.
pub fn replay(
    alloc: StreamAllocator,
    traffic: &mut Workload,
    batches: u64,
    cfg: ServiceConfig,
) -> (StreamAllocator, ServiceReport) {
    let service = ReplayService::start(alloc, cfg);
    let start = Instant::now();
    let mut submitted_balls = 0u64;
    for _ in 0..batches {
        let batch = traffic.next_batch();
        if cfg.rate > 0.0 {
            // Submit batch t no earlier than its schedule under the
            // target rate; sleeping here (not in the worker) keeps the
            // queue the pipeline, not the throttle.
            let due = Duration::from_secs_f64(submitted_balls as f64 / cfg.rate);
            let elapsed = start.elapsed();
            if due > elapsed {
                thread::sleep(due - elapsed);
            }
        }
        submitted_balls += batch.arrivals.len() as u64;
        service.submit(batch);
    }
    service.drain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PolicyKind, WorkloadCfg};
    use pba_core::EngineMetrics;
    use std::sync::Arc;

    #[test]
    fn service_placements_match_direct_ingest() {
        let run_direct = || {
            let mut alloc = StreamAllocator::new(64, 5, PolicyKind::BatchedTwoChoice);
            let mut traffic = Workload::new(WorkloadCfg::uniform(256), 5);
            (0..6)
                .map(|_| alloc.ingest(&traffic.next_batch()).placements)
                .collect::<Vec<_>>()
        };
        let alloc = StreamAllocator::new(64, 5, PolicyKind::BatchedTwoChoice);
        let mut traffic = Workload::new(WorkloadCfg::uniform(256), 5);
        let (_, report) = replay(
            alloc,
            &mut traffic,
            6,
            ServiceConfig::default().with_placements(),
        );
        assert_eq!(report.placements, run_direct());
    }

    #[test]
    fn checkpoints_cover_every_batch_and_report_quantiles() {
        let sink = Arc::new(EngineMetrics::new());
        let alloc = StreamAllocator::new(32, 9, PolicyKind::OneChoice).with_metrics(sink.clone());
        let mut traffic = Workload::new(WorkloadCfg::uniform(100), 9);
        let cfg = ServiceConfig::default().with_checkpoint_every(3);
        let (_, report) = replay(alloc, &mut traffic, 7, cfg);

        // 3 + 3 + 1 (partial window flushed at drain).
        assert_eq!(report.checkpoints.len(), 3);
        let batches: u64 = report.checkpoints.iter().map(|c| c.batches).sum();
        assert_eq!(batches, 7);
        let balls: u64 = report.checkpoints.iter().map(|c| c.balls).sum();
        assert_eq!(balls, 700);
        assert_eq!(report.total.count(), 700);
        for (i, c) in report.checkpoints.iter().enumerate() {
            assert_eq!(c.checkpoint, i as u64);
            assert!(c.p50_nanos <= c.p99_nanos, "checkpoint {i}");
            assert!(c.p99_nanos <= c.p999_nanos, "checkpoint {i}");
            assert!(c.p999_nanos <= c.max_nanos, "checkpoint {i}");
            assert!(c.max_nanos > 0, "latencies are really measured");
        }
        let r = sink.report();
        assert_eq!(r.service_checkpoints, 3);
        assert_eq!(r.service_balls, 700);
        assert_eq!(r.batches, 7, "batch events still flow to the sink");
    }

    #[test]
    fn snapshot_at_lands_in_report_and_window_record() {
        let alloc = StreamAllocator::new(16, 1, PolicyKind::Threshold);
        let mut traffic = Workload::new(WorkloadCfg::uniform(64), 1);
        let cfg = ServiceConfig::default()
            .with_checkpoint_every(2)
            .with_snapshot_at(4);
        let (_, report) = replay(alloc, &mut traffic, 6, cfg);
        let (at, bytes) = report.snapshot.as_ref().expect("snapshot taken");
        assert_eq!(*at, 4);
        let restored = StreamAllocator::restore(bytes).expect("snapshot restores");
        assert_eq!(restored.batches(), 4);
        // The snapshot was taken in the second window (batches 3..4).
        assert_eq!(report.checkpoints[1].snapshot_bytes, bytes.len() as u64);
        assert_eq!(report.checkpoints[0].snapshot_bytes, 0);
    }

    #[test]
    fn rate_limited_replay_is_still_bit_identical() {
        let run = |rate: f64| {
            let alloc = StreamAllocator::new(32, 3, PolicyKind::BatchedTwoChoice);
            let mut traffic = Workload::new(WorkloadCfg::uniform(64).with_churn(0.5), 3);
            let cfg = ServiceConfig::default().with_placements().with_rate(rate);
            let (alloc, report) = replay(alloc, &mut traffic, 4, cfg);
            (alloc.bin_state().load_vector(), report.placements)
        };
        assert_eq!(run(0.0), run(50_000.0));
    }

    #[test]
    fn dropping_without_drain_shuts_down_cleanly() {
        let alloc = StreamAllocator::new(8, 0, PolicyKind::OneChoice);
        let service = ReplayService::start(alloc, ServiceConfig::default());
        service.submit(Batch::unit_arrivals(0, 16));
        drop(service);
    }
}
