//! Pluggable placement policies for the streaming allocator.
//!
//! A [`PlacementPolicy`] decides one arriving ball's bin from a load view
//! and the ball's private random stream. Which load view it sees is the
//! policy's defining choice:
//!
//! * [`OneChoice`] — one uniform probe, loads ignored. The baseline with
//!   gap `Θ(√((m/n)·log n))`.
//! * [`TwoChoice`] — two probes compared against **live** loads: the
//!   classic sequential Greedy\[2\] (batch size effectively 1). Inherently
//!   serial, so the allocator ingests it on one lane.
//! * [`BatchedTwoChoice`] — two probes compared against the **batch-start
//!   snapshot** (the stale in-batch view of the batched model
//!   \[BCE+12; Los–Sauerwald\]). Decisions are snapshot-pure, so batches
//!   ingest in parallel and the gap grows with the batch size `b` — the
//!   trade-off E15 measures.
//! * [`Threshold`] — probes accepted under a rising threshold driven by
//!   the heavy-case [`UndershootSchedule`] of `pba-protocols`, refreshed
//!   each batch from the projected post-batch average load.
//!
//! Every policy decides from `(load view, per-ball RNG)` only — no
//! ambient state — which is what makes placements independent of shard
//! count and lane scheduling (see the crate docs on determinism).

use pba_core::rng::{Rand64, SplitMix64};
use pba_core::snapshot::{SnapshotReader, SnapshotWriter};
use pba_core::BinState;
use pba_protocols::UndershootSchedule;

/// A streaming placement policy.
///
/// The allocator calls [`begin_batch`](Self::begin_batch) once per batch,
/// then [`place`](Self::place) once per arrival with that arrival's
/// deterministic random stream and the policy's load view (snapshot or
/// live, per [`needs_live_loads`](Self::needs_live_loads)).
pub trait PlacementPolicy: Send + Sync {
    /// Stable policy name (metrics, CLI, tables).
    fn name(&self) -> &'static str;

    /// True when decisions must see in-batch placements (live loads).
    /// Such policies are inherently sequential and ingest on one lane.
    fn needs_live_loads(&self) -> bool {
        false
    }

    /// Per-batch setup. `arrival_weight` is the batch's total incoming
    /// weight; `projected_avg` the post-batch average load `total/n`.
    fn begin_batch(&mut self, batch: u64, arrival_weight: u64, projected_avg: f64) {
        let _ = (batch, arrival_weight, projected_avg);
    }

    /// Choose a bin for one arrival.
    fn place(&self, loads: &dyn BinState, rng: &mut SplitMix64) -> u32;

    /// Serialize the policy's internal mutable state for an allocator
    /// snapshot. Stateless policies return empty bytes (the default);
    /// stateful ones must capture everything
    /// [`begin_batch`](Self::begin_batch) evolves, bit-exactly, so a
    /// restored session continues placing identically.
    fn state_snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore internal state captured by
    /// [`state_snapshot`](Self::state_snapshot) on a freshly built policy
    /// of the same kind.
    fn state_restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "policy '{}' carries no state, but the snapshot has {} state byte(s)",
                self.name(),
                bytes.len()
            ))
        }
    }
}

/// Pick the lesser-loaded of two probes; ties go to the first probe (the
/// deterministic tie-break shared with the one-shot batched protocol).
#[inline]
fn lesser_loaded(loads: &dyn BinState, a: u32, b: u32) -> u32 {
    if loads.load(b) < loads.load(a) {
        b
    } else {
        a
    }
}

/// One uniform probe; loads ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneChoice;

impl PlacementPolicy for OneChoice {
    fn name(&self) -> &'static str {
        "one-choice"
    }

    fn place(&self, loads: &dyn BinState, rng: &mut SplitMix64) -> u32 {
        rng.below(loads.bins())
    }
}

/// Two probes against live loads: sequential Greedy\[2\].
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoChoice;

impl PlacementPolicy for TwoChoice {
    fn name(&self) -> &'static str {
        "two-choice"
    }

    fn needs_live_loads(&self) -> bool {
        true
    }

    fn place(&self, loads: &dyn BinState, rng: &mut SplitMix64) -> u32 {
        let n = loads.bins();
        let a = rng.below(n);
        let b = rng.below(n);
        lesser_loaded(loads, a, b)
    }
}

/// Two probes against the batch-start snapshot (stale in-batch view).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedTwoChoice;

impl PlacementPolicy for BatchedTwoChoice {
    fn name(&self) -> &'static str {
        "batched-two-choice"
    }

    fn place(&self, loads: &dyn BinState, rng: &mut SplitMix64) -> u32 {
        let n = loads.bins();
        let a = rng.below(n);
        let b = rng.below(n);
        lesser_loaded(loads, a, b)
    }
}

/// Threshold acceptance driven by the heavy-case undershoot schedule.
///
/// Each batch refreshes the cumulative threshold
/// `T = ⌊projected_avg − (m̃/n)^γ⌋` from the [`UndershootSchedule`]
/// recurrence (`γ = 2/3`), restarting the contraction from the arriving
/// mass whenever it has run to exhaustion — so a steady stream of batches
/// keeps tightening toward the running average, exactly the mechanism
/// that gives `A_heavy` its `m/n + O(1)` one-shot bound. A probe under
/// the threshold is taken outright (first probe preferred); if both
/// probes are at or over it, the lesser-loaded probe wins.
#[derive(Debug, Clone)]
pub struct Threshold {
    schedule: UndershootSchedule,
    threshold: u64,
}

impl Threshold {
    /// Paper parameters (`γ = 2/3`) for `bins` bins.
    pub fn new(bins: u32) -> Self {
        Self {
            // Zero starting mass: exhausted, so the first batch restarts
            // the contraction from its own arriving weight.
            schedule: UndershootSchedule::new(bins, 0.0),
            threshold: 0,
        }
    }

    /// The cumulative threshold currently in force (after `begin_batch`).
    pub fn current_threshold(&self) -> u64 {
        self.threshold
    }
}

impl PlacementPolicy for Threshold {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn begin_batch(&mut self, _batch: u64, arrival_weight: u64, projected_avg: f64) {
        if self.schedule.exhausted() {
            self.schedule.reset_mass(arrival_weight as f64);
        }
        self.threshold = self.schedule.threshold(projected_avg);
        self.schedule.advance();
    }

    fn place(&self, loads: &dyn BinState, rng: &mut SplitMix64) -> u32 {
        let n = loads.bins();
        let a = rng.below(n);
        let b = rng.below(n);
        if loads.load(a) < self.threshold {
            a
        } else if loads.load(b) < self.threshold {
            b
        } else {
            lesser_loaded(loads, a, b)
        }
    }

    /// The schedule's complete state is `(bins, γ, m̃)` plus the cached
    /// threshold; `bins` comes from the rebuilt policy, the rest is
    /// persisted bit-exactly (`m̃` directly, *not* via `ratio()` — see
    /// [`UndershootSchedule::mass`]).
    fn state_snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::unframed();
        w.f64(self.schedule.gamma());
        w.f64(self.schedule.mass());
        w.u64(self.threshold);
        w.finish()
    }

    fn state_restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let err = |e| format!("threshold policy state: {e}");
        let mut r = SnapshotReader::unframed(bytes);
        let gamma = r.f64().map_err(err)?;
        let mass = r.f64().map_err(err)?;
        let threshold = r.u64().map_err(err)?;
        r.finish().map_err(err)?;
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(format!(
                "threshold policy state: gamma {gamma} out of (0,1)"
            ));
        }
        let mut schedule = UndershootSchedule::with_gamma(self.schedule.bins(), 0.0, gamma);
        schedule.reset_mass(mass);
        self.schedule = schedule;
        self.threshold = threshold;
        Ok(())
    }
}

/// Policy selector for the CLI and experiment registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`OneChoice`].
    OneChoice,
    /// [`TwoChoice`].
    TwoChoice,
    /// [`BatchedTwoChoice`].
    BatchedTwoChoice,
    /// [`Threshold`].
    Threshold,
}

impl PolicyKind {
    /// All selectable policies.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::OneChoice,
        PolicyKind::TwoChoice,
        PolicyKind::BatchedTwoChoice,
        PolicyKind::Threshold,
    ];

    /// The policy's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::OneChoice => "one-choice",
            PolicyKind::TwoChoice => "two-choice",
            PolicyKind::BatchedTwoChoice => "batched-two-choice",
            PolicyKind::Threshold => "threshold",
        }
    }

    /// Parse a CLI name (`one-choice`, `two-choice`, `batched-two-choice`,
    /// `threshold`).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Instantiate the policy for `bins` bins.
    pub fn build(self, bins: u32) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::OneChoice => Box::new(OneChoice),
            PolicyKind::TwoChoice => Box::new(TwoChoice),
            PolicyKind::BatchedTwoChoice => Box::new(BatchedTwoChoice),
            PolicyKind::Threshold => Box::new(Threshold::new(bins)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build(8).name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("three-choice"), None);
    }

    #[test]
    fn two_choice_prefers_lesser_loaded() {
        let loads: Vec<u64> = vec![10, 0, 10, 10];
        let policy = TwoChoice;
        // Any probe pair containing bin 1 must pick bin 1.
        let mut wins = 0;
        for ball in 0..200u64 {
            let mut rng = crate::arrival_stream(1, 0, ball);
            let mut probe = crate::arrival_stream(1, 0, ball);
            let a = probe.below(4);
            let b = probe.below(4);
            let chosen = policy.place(&loads, &mut rng);
            if a == 1 || b == 1 {
                assert_eq!(chosen, 1);
                wins += 1;
            }
        }
        assert!(wins > 0);
    }

    #[test]
    fn threshold_takes_first_probe_under_threshold() {
        let mut policy = Threshold::new(4);
        // 4 bins, 40 arriving weight → projected avg 10; mass 40 → ratio
        // 10, undershoot 10^(2/3) ≈ 4.64 → T = 5.
        policy.begin_batch(0, 40, 10.0);
        assert_eq!(policy.current_threshold(), 5);
        let loads: Vec<u64> = vec![9, 4, 9, 9];
        for ball in 0..100u64 {
            let mut rng = crate::arrival_stream(3, 0, ball);
            let mut probe = crate::arrival_stream(3, 0, ball);
            let a = probe.below(4);
            let b = probe.below(4);
            let chosen = policy.place(&loads, &mut rng);
            if a == 1 {
                assert_eq!(chosen, 1);
            } else if b == 1 {
                assert_eq!(chosen, 1, "second probe under T must win over full first");
            }
        }
    }

    #[test]
    fn stateless_policies_snapshot_empty_and_reject_state() {
        for kind in [
            PolicyKind::OneChoice,
            PolicyKind::TwoChoice,
            PolicyKind::BatchedTwoChoice,
        ] {
            let mut policy = kind.build(16);
            assert!(policy.state_snapshot().is_empty(), "{kind:?}");
            assert!(policy.state_restore(&[]).is_ok());
            assert!(policy.state_restore(&[1, 2, 3]).is_err());
        }
    }

    #[test]
    fn threshold_state_roundtrip_continues_bit_identically() {
        let mut original = Threshold::new(96); // not a power of two
        original.begin_batch(0, 96 * 500, 500.0);
        original.begin_batch(1, 96 * 500, 1000.0);

        let mut restored = Threshold::new(96);
        restored
            .state_restore(&original.state_snapshot())
            .expect("state restores");
        assert_eq!(restored.current_threshold(), original.current_threshold());

        // Continue both for several batches: thresholds (the full
        // f64 recurrence) must stay bit-identical.
        for t in 2..10u64 {
            let avg = 500.0 * (t + 1) as f64;
            original.begin_batch(t, 96 * 500, avg);
            restored.begin_batch(t, 96 * 500, avg);
            assert_eq!(
                original.current_threshold(),
                restored.current_threshold(),
                "batch {t}"
            );
        }
    }

    #[test]
    fn threshold_rejects_corrupt_state() {
        let mut policy = Threshold::new(8);
        assert!(policy.state_restore(&[0u8; 3]).is_err(), "truncated");
        let mut w = pba_core::snapshot::SnapshotWriter::unframed();
        w.f64(1.5); // gamma out of range
        w.f64(64.0);
        w.u64(0);
        assert!(policy.state_restore(&w.finish()).is_err());
    }

    #[test]
    fn threshold_schedule_tightens_over_batches() {
        let mut policy = Threshold::new(1024);
        policy.begin_batch(0, 1024 * 64, 64.0);
        let t0 = policy.current_threshold();
        policy.begin_batch(1, 1024 * 64, 128.0);
        let t1 = policy.current_threshold();
        // Undershoot shrinks as m̃ contracts: the threshold tracks the
        // rising average more closely each batch.
        assert!((128 - t1 as i64) < (64 - t0 as i64) + 64, "t0={t0} t1={t1}");
        assert!(t1 > t0);
    }
}
