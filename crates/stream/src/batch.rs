//! Batch ingestion vocabulary: [`Ball`], [`Batch`], [`BatchOutcome`].

use pba_core::BatchRecord;

/// One arriving ball: a caller-assigned identity and a weight.
///
/// Identities let a later batch depart the ball; unit-weight workloads set
/// `weight = 1` and recover the classic unweighted model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ball {
    /// Caller-assigned identity, unique among resident balls.
    pub id: u64,
    /// Ball weight (load contributed to its bin); must be ≥ 1.
    pub weight: u64,
}

impl Ball {
    /// A unit-weight ball.
    pub fn unit(id: u64) -> Self {
        Self { id, weight: 1 }
    }

    /// A weighted ball.
    pub fn weighted(id: u64, weight: u64) -> Self {
        Self { id, weight }
    }
}

/// One unit of streaming work: balls arriving plus resident balls leaving.
///
/// Departures are applied *before* arrivals: a batch models one scheduling
/// epoch in which freed capacity is visible to the placement decisions of
/// the same epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Batch {
    /// Balls arriving in this batch.
    pub arrivals: Vec<Ball>,
    /// Identities of resident balls departing in this batch.
    pub departures: Vec<u64>,
}

impl Batch {
    /// A batch of `count` fresh unit balls with ids `first_id..`.
    pub fn unit_arrivals(first_id: u64, count: u64) -> Self {
        Self {
            arrivals: (0..count).map(|i| Ball::unit(first_id + i)).collect(),
            departures: Vec::new(),
        }
    }
}

/// Result of ingesting one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Chosen bin per arrival, in arrival order.
    pub placements: Vec<u32>,
    /// The per-batch statistics (also delivered to any attached sink).
    pub record: BatchRecord,
}
