//! Snapshot/restore of the full [`StreamAllocator`] state.
//!
//! The replay service checkpoints a live allocator to bytes
//! ([`StreamAllocator::snapshot`]) and later rebuilds it
//! ([`StreamAllocator::restore`]) — in the same process or another one.
//! The format rides on the framed binary codec of
//! [`pba_core::snapshot`] (magic `PBAS`, version 1, FNV-1a checksum), so
//! it works in the default zero-dependency build.
//!
//! ## What is captured
//!
//! Everything placement decisions depend on: bin count, session seed,
//! policy kind **and its internal mutable state** (the threshold policy's
//! undershoot recurrence, persisted bit-exactly), shard geometry,
//! per-bin loads, the resident-ball map, and the batch sequence number.
//! Arrival randomness is counter-based (`arrival_stream(seed, batch,
//! index)`), so `(seed, batch_seq)` fully determines every future draw —
//! a restored session continues placing **bit-identically** to the
//! uninterrupted one.
//!
//! ## What is deliberately not captured
//!
//! Runtime configuration: metrics sinks, parallel ingestion, chunk
//! tuning, and the fault plan. The first three never affect placements;
//! the fault plan does, but it is *configuration* (derived from the CLI
//! `--faults` spec), not evolved state — its per-batch decisions are a
//! pure function of `(plan seed, batch)`, so a caller re-arming the same
//! plan via [`StreamAllocator::with_faults`] gets identical redirects
//! from `batch_seq` onward. Restore therefore returns a sequential,
//! sink-less allocator; re-apply builder methods as needed.
//!
//! ## Canonical bytes
//!
//! The resident map is serialized sorted by ball id, so two allocators in
//! the same state produce byte-identical snapshots — which makes
//! snapshot equality a usable state-equality oracle in tests.

use std::collections::HashMap;

use pba_core::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use pba_core::{BinState, Tuning};

use crate::allocator::StreamAllocator;
use crate::loads::ShardedLoads;
use crate::policy::PolicyKind;

/// Magic tag of a streaming-allocator snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PBAS";

/// Format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

impl StreamAllocator {
    /// Serialize the complete allocator state to a framed, checksummed
    /// byte vector. See the module docs for the exact coverage.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.u32(self.bins);
        w.u64(self.seed);
        w.str(self.policy.name());
        w.u32(self.loads.shards() as u32);
        w.u64(self.batch_seq);
        for bin in 0..self.bins {
            w.u64(self.loads.load(bin));
        }
        // Sorted by id: canonical bytes for any HashMap iteration order.
        let mut resident: Vec<(u64, u32, u64)> = self
            .resident
            .iter()
            .map(|(&id, &(bin, weight))| (id, bin, weight))
            .collect();
        resident.sort_unstable();
        w.u64(resident.len() as u64);
        for (id, bin, weight) in resident {
            w.u64(id);
            w.u32(bin);
            w.u64(weight);
        }
        w.bytes(&self.policy.state_snapshot());
        w.finish()
    }

    /// Rebuild an allocator from [`snapshot`](Self::snapshot) bytes.
    ///
    /// The restored allocator ingests sequentially with no metrics sink,
    /// no tuning override, and no fault plan — re-apply
    /// [`parallel`](Self::parallel) /
    /// [`with_metrics`](Self::with_metrics) /
    /// [`with_tuning`](Self::with_tuning) /
    /// [`with_faults`](Self::with_faults) as needed (none of which
    /// perturb placements except a *different* fault plan). Decoding
    /// validates structure, checksum, and the load/resident-weight
    /// conservation invariant before returning.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let malformed = |why: String| SnapshotError::Malformed(why);
        let mut r = SnapshotReader::framed(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let bins = r.u32()?;
        if bins == 0 {
            return Err(malformed("zero bins".into()));
        }
        let seed = r.u64()?;
        let policy_name = r.str()?;
        let kind = PolicyKind::parse(policy_name)
            .ok_or_else(|| malformed(format!("unknown policy '{policy_name}'")))?;
        let shards = r.u32()?;
        if shards == 0 || shards > bins {
            return Err(malformed(format!(
                "shard count {shards} out of [1, {bins}]"
            )));
        }
        let batch_seq = r.u64()?;

        let mut loads = ShardedLoads::new(bins, shards as usize);
        let mut total: u64 = 0;
        for bin in 0..bins {
            let load = r.u64()?;
            total = total
                .checked_add(load)
                .ok_or_else(|| malformed("total load overflows u64".into()))?;
            loads.add(bin, load);
        }

        let count = r.u64()?;
        // A hostile length prefix must not pre-allocate unboundedly; the
        // per-entry reads hit `Truncated` long before 2^16 real entries
        // could be faked in a short buffer.
        let mut resident: HashMap<u64, (u32, u64)> =
            HashMap::with_capacity(count.min(1 << 16) as usize);
        let mut resident_weight: u64 = 0;
        for _ in 0..count {
            let id = r.u64()?;
            let bin = r.u32()?;
            let weight = r.u64()?;
            if bin >= bins {
                return Err(malformed(format!(
                    "resident ball {id} in bin {bin} >= {bins}"
                )));
            }
            resident_weight = resident_weight
                .checked_add(weight)
                .ok_or_else(|| malformed("resident weight overflows u64".into()))?;
            if resident.insert(id, (bin, weight)).is_some() {
                return Err(malformed(format!("duplicate resident ball id {id}")));
            }
        }
        if resident_weight != total {
            return Err(malformed(format!(
                "conservation violated: resident weight {resident_weight} != total load {total}"
            )));
        }

        let state = r.bytes()?.to_vec();
        r.finish()?;

        let mut policy = kind.build(bins);
        policy
            .state_restore(&state)
            .map_err(SnapshotError::Malformed)?;

        Ok(StreamAllocator {
            bins,
            seed,
            policy,
            loads,
            resident,
            batch_seq,
            metrics: None,
            parallel: false,
            tuning: Tuning::Auto,
            faults: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Batch, Workload, WorkloadCfg};
    use pba_core::FaultPlan;

    fn seeded_alloc(kind: PolicyKind, batches: u64) -> StreamAllocator {
        let mut alloc = StreamAllocator::new(48, 9, kind).with_shards(3);
        let mut traffic = Workload::new(WorkloadCfg::uniform(96).with_churn(0.5), 17);
        for _ in 0..batches {
            alloc.ingest(&traffic.next_batch());
        }
        alloc
    }

    #[test]
    fn roundtrip_restores_loads_resident_and_sequence() {
        for kind in PolicyKind::ALL {
            let alloc = seeded_alloc(kind, 5);
            let restored = StreamAllocator::restore(&alloc.snapshot()).expect("restores");
            assert_eq!(restored.bins(), alloc.bins());
            assert_eq!(restored.batches(), alloc.batches());
            assert_eq!(restored.resident(), alloc.resident());
            assert_eq!(
                restored.bin_state().load_vector(),
                alloc.bin_state().load_vector(),
                "{kind:?}"
            );
            assert_eq!(restored.resident, alloc.resident);
        }
    }

    #[test]
    fn restored_allocator_continues_bit_identically() {
        for kind in PolicyKind::ALL {
            let mut original = seeded_alloc(kind, 5);
            let mut restored = StreamAllocator::restore(&original.snapshot()).expect("restores");
            let mut traffic_a = Workload::new(WorkloadCfg::uniform(96).with_churn(0.5), 17);
            let mut traffic_b = traffic_a.clone();
            // Fast-forward both workloads past the already-ingested prefix.
            for _ in 0..5 {
                traffic_a.next_batch();
                traffic_b.next_batch();
            }
            for t in 0..4 {
                let a = original.ingest(&traffic_a.next_batch());
                let b = restored.ingest(&traffic_b.next_batch());
                assert_eq!(a.placements, b.placements, "{kind:?} batch {t}");
                assert_eq!(a.record, b.record, "{kind:?} batch {t}");
            }
        }
    }

    #[test]
    fn snapshot_bytes_are_canonical() {
        // Same ingestion history → byte-identical snapshots, even though
        // the resident HashMap iterates in arbitrary order.
        let a = seeded_alloc(PolicyKind::Threshold, 6);
        let b = seeded_alloc(PolicyKind::Threshold, 6);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn refaulted_restore_matches_uninterrupted_faulted_run() {
        let plan = FaultPlan::new(0xFA11).with_shard_failures(4, 0.4);
        let run = |resume_at: Option<u64>| {
            let mut traffic = Workload::new(WorkloadCfg::uniform(64), 23);
            let mut alloc = StreamAllocator::new(32, 7, PolicyKind::BatchedTwoChoice)
                .with_shards(2)
                .with_faults(plan);
            let mut placements = Vec::new();
            for t in 0..8u64 {
                if resume_at == Some(t) {
                    alloc = StreamAllocator::restore(&alloc.snapshot())
                        .expect("restores")
                        .with_faults(plan);
                }
                placements.push(alloc.ingest(&traffic.next_batch()).placements);
            }
            placements
        };
        let uninterrupted = run(None);
        for checkpoint in [1, 4, 7] {
            assert_eq!(
                uninterrupted,
                run(Some(checkpoint)),
                "resume at {checkpoint}"
            );
        }
    }

    #[test]
    fn empty_allocator_roundtrips() {
        let alloc = StreamAllocator::new(8, 1, PolicyKind::OneChoice);
        let restored = StreamAllocator::restore(&alloc.snapshot()).unwrap();
        assert_eq!(restored.batches(), 0);
        assert_eq!(restored.resident(), 0);
        assert_eq!(restored.bin_state().total_load(), 0);
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let mut alloc = seeded_alloc(PolicyKind::BatchedTwoChoice, 3);
        let good = alloc.snapshot();

        // Any bit flip trips the checksum.
        let mut bad = good.clone();
        bad[10] ^= 0x40;
        assert!(StreamAllocator::restore(&bad).is_err());

        // Truncation at every prefix length is detected.
        assert!(StreamAllocator::restore(&good[..good.len() - 1]).is_err());
        assert!(StreamAllocator::restore(&[]).is_err());

        // A conservation violation is rejected even with a valid frame:
        // hand-build a snapshot whose loads do not match its residents.
        let mut w = SnapshotWriter::framed(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.u32(2); // bins
        w.u64(0); // seed
        w.str("one-choice");
        w.u32(1); // shards
        w.u64(1); // batch_seq
        w.u64(5); // bin 0 load
        w.u64(0); // bin 1 load
        w.u64(0); // resident count (weight 0 != total 5)
        w.bytes(&[]);
        let err = match StreamAllocator::restore(&w.finish()) {
            Ok(_) => panic!("conservation violation must be rejected"),
            Err(err) => err,
        };
        assert!(
            err.to_string().contains("conservation"),
            "unexpected error: {err}"
        );

        // The good bytes still restore and the original still ingests.
        assert!(StreamAllocator::restore(&good).is_ok());
        alloc.ingest(&Batch::unit_arrivals(u64::MAX / 2, 10));
    }
}
