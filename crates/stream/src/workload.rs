//! Deterministic synthetic workloads: arrival patterns, churn, weights.
//!
//! A [`Workload`] turns a seed and a [`WorkloadCfg`] into a reproducible
//! sequence of [`Batch`]es. Three arrival patterns cover the regimes the
//! streaming experiments and the `pba-run stream` CLI exercise:
//!
//! * **uniform** — every batch carries exactly `batch` arrivals;
//! * **zipf** — same arrival counts, but ball weights are Zipf-skewed
//!   (a few heavy balls dominate, the request-size skew of real routers);
//! * **burst** — every `period`-th batch is `factor`× oversized, the
//!   bursty-traffic stress for threshold policies.
//!
//! Churn departs `⌊churn · arrivals⌋` uniformly random resident balls per
//! batch; `churn = 1.0` holds the resident population steady (E16's
//! equal-rate regime).

use pba_core::rng::{Rand64, SplitMix64};

use crate::batch::{Ball, Batch};

/// Weight distribution for arriving balls.
///
/// [`mean`](Self::mean) and [`variance`](Self::variance) are exact, so
/// the weighted-balls experiment (E17) can put the theory axis (weight
/// variance) next to the measured gap.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WeightDist {
    /// Every ball weighs exactly `w`.
    Constant(u64),
    /// Uniform on `lo..=hi`.
    UniformRange {
        /// Smallest weight.
        lo: u64,
        /// Largest weight.
        hi: u64,
    },
    /// Weight `hi` with probability `p`, else `lo` — the two-point family
    /// sweeps variance at fixed mean.
    TwoPoint {
        /// Common weight.
        lo: u64,
        /// Rare heavy weight.
        hi: u64,
        /// Probability of the heavy weight.
        p: f64,
    },
    /// Zipf on `1..=max` with exponent `s`: `P(w) ∝ w^{-s}`.
    Zipf {
        /// Skew exponent (larger = less skewed toward heavy weights).
        s: f64,
        /// Largest weight.
        max: u64,
    },
}

impl WeightDist {
    /// Draw one weight.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            WeightDist::Constant(w) => w,
            WeightDist::UniformRange { lo, hi } => lo + rng.below_u64(hi - lo + 1),
            WeightDist::TwoPoint { lo, hi, p } => {
                if rng.bernoulli(p) {
                    hi
                } else {
                    lo
                }
            }
            WeightDist::Zipf { s, max } => {
                // Inverse-CDF over the (small) support; workload weights
                // are request-size classes, not open-ended values.
                let total: f64 = (1..=max).map(|w| (w as f64).powf(-s)).sum();
                let mut u = rng.unit_f64() * total;
                for w in 1..max {
                    u -= (w as f64).powf(-s);
                    if u < 0.0 {
                        return w;
                    }
                }
                max
            }
        }
    }

    /// Exact mean weight.
    pub fn mean(&self) -> f64 {
        match *self {
            WeightDist::Constant(w) => w as f64,
            WeightDist::UniformRange { lo, hi } => (lo + hi) as f64 / 2.0,
            WeightDist::TwoPoint { lo, hi, p } => lo as f64 * (1.0 - p) + hi as f64 * p,
            WeightDist::Zipf { s, max } => {
                let total: f64 = (1..=max).map(|w| (w as f64).powf(-s)).sum();
                (1..=max)
                    .map(|w| w as f64 * (w as f64).powf(-s))
                    .sum::<f64>()
                    / total
            }
        }
    }

    /// Exact variance of the weight.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        let second = match *self {
            WeightDist::Constant(w) => (w as f64) * (w as f64),
            WeightDist::UniformRange { lo, hi } => {
                let k = (hi - lo + 1) as f64;
                (lo..=hi).map(|w| (w as f64) * (w as f64)).sum::<f64>() / k
            }
            WeightDist::TwoPoint { lo, hi, p } => {
                (lo as f64).powi(2) * (1.0 - p) + (hi as f64).powi(2) * p
            }
            WeightDist::Zipf { s, max } => {
                let total: f64 = (1..=max).map(|w| (w as f64).powf(-s)).sum();
                (1..=max)
                    .map(|w| (w as f64).powi(2) * (w as f64).powf(-s))
                    .sum::<f64>()
                    / total
            }
        };
        (second - mean * mean).max(0.0)
    }
}

/// Arrival pattern across batches.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadKind {
    /// Constant batch size, weights from the configured distribution.
    Uniform,
    /// Constant batch size with Zipf(`s`)-skewed weights on `1..=max`
    /// (overrides the configured weight distribution).
    Zipf {
        /// Skew exponent.
        s: f64,
        /// Largest weight.
        max: u64,
    },
    /// Every `period`-th batch carries `factor`× the base arrivals.
    Burst {
        /// Batches between bursts.
        period: u64,
        /// Arrival multiplier on burst batches.
        factor: u64,
    },
}

/// Full workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadCfg {
    /// Arrival pattern.
    pub kind: WorkloadKind,
    /// Base arrivals per batch.
    pub batch: u64,
    /// Departures per arrival (`0.0` = pure growth, `1.0` = steady state).
    pub churn: f64,
    /// Ball weight distribution (uniform/burst kinds; zipf overrides).
    pub weights: WeightDist,
}

impl WorkloadCfg {
    /// Unit-weight, no-churn workload of constant `batch`-sized batches.
    pub fn uniform(batch: u64) -> Self {
        Self {
            kind: WorkloadKind::Uniform,
            batch,
            churn: 0.0,
            weights: WeightDist::Constant(1),
        }
    }

    /// Set the churn rate.
    pub fn with_churn(mut self, churn: f64) -> Self {
        assert!((0.0..=1.0).contains(&churn), "churn must be in [0,1]");
        self.churn = churn;
        self
    }

    /// Set the weight distribution.
    pub fn with_weights(mut self, weights: WeightDist) -> Self {
        self.weights = weights;
        self
    }
}

/// Deterministic batch generator.
///
/// Batch `t` draws all its randomness (weights, departure picks) from the
/// counter-based stream `(seed, t)`, so a workload replayed from the same
/// seed yields byte-identical batches regardless of what the consumer
/// does between calls.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadCfg,
    seed: u64,
    next_id: u64,
    batch_seq: u64,
    /// Ids of balls currently resident (arrival order, perturbed by
    /// departure swap-removes — deterministic either way).
    live: Vec<u64>,
}

impl Workload {
    /// A workload from `cfg` with its own random stream.
    pub fn new(cfg: WorkloadCfg, seed: u64) -> Self {
        assert!(cfg.batch > 0, "empty batches make no progress");
        Self {
            cfg,
            seed,
            next_id: 0,
            batch_seq: 0,
            live: Vec::new(),
        }
    }

    /// Change the churn rate mid-stream (e.g. after a warmup phase).
    pub fn set_churn(&mut self, churn: f64) {
        assert!((0.0..=1.0).contains(&churn));
        self.cfg.churn = churn;
    }

    /// Balls currently resident (as the workload tracks them).
    pub fn live(&self) -> u64 {
        self.live.len() as u64
    }

    /// Generate the next batch.
    pub fn next_batch(&mut self) -> Batch {
        let mut rng = batch_stream(self.seed, self.batch_seq);

        let arrivals_count = match self.cfg.kind {
            WorkloadKind::Burst { period, factor }
                if self.batch_seq.is_multiple_of(period.max(1)) =>
            {
                self.cfg.batch * factor.max(1)
            }
            _ => self.cfg.batch,
        };

        let departures_count =
            ((self.cfg.churn * arrivals_count as f64) as u64).min(self.live.len() as u64);
        let departures: Vec<u64> = (0..departures_count)
            .map(|_| {
                let idx = rng.below_u64(self.live.len() as u64) as usize;
                self.live.swap_remove(idx)
            })
            .collect();

        let arrivals: Vec<Ball> = (0..arrivals_count)
            .map(|_| {
                let weight = match self.cfg.kind {
                    WorkloadKind::Zipf { s, max } => WeightDist::Zipf { s, max }.sample(&mut rng),
                    _ => self.cfg.weights.sample(&mut rng),
                }
                .max(1);
                let id = self.next_id;
                self.next_id += 1;
                self.live.push(id);
                Ball { id, weight }
            })
            .collect();

        self.batch_seq += 1;
        Batch {
            arrivals,
            departures,
        }
    }
}

/// Counter-based per-batch workload stream (mirrors the engine's
/// `ball_stream`, keyed by batch instead of round and with a distinct
/// salt so workload draws never collide with placement draws).
fn batch_stream(seed: u64, batch: u64) -> SplitMix64 {
    let a = SplitMix64::mix(seed ^ 0x8CB92BA72F3D8DD7 ^ batch.wrapping_mul(0xA24BAED4963EE407));
    SplitMix64::new(SplitMix64::mix(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_byte_identical() {
        let cfg = WorkloadCfg::uniform(100)
            .with_churn(0.5)
            .with_weights(WeightDist::UniformRange { lo: 1, hi: 4 });
        let mut a = Workload::new(cfg, 11);
        let mut b = Workload::new(cfg, 11);
        for _ in 0..10 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn churn_one_reaches_steady_state() {
        let mut w = Workload::new(WorkloadCfg::uniform(50).with_churn(1.0), 3);
        // First batch has nothing to depart; afterwards arrivals == departures.
        let first = w.next_batch();
        assert_eq!(first.departures.len(), 0);
        for _ in 0..5 {
            let b = w.next_batch();
            assert_eq!(b.arrivals.len(), 50);
            assert_eq!(b.departures.len(), 50);
        }
        assert_eq!(w.live(), 50);
    }

    #[test]
    fn burst_batches_are_oversized() {
        let cfg = WorkloadCfg {
            kind: WorkloadKind::Burst {
                period: 4,
                factor: 8,
            },
            batch: 10,
            churn: 0.0,
            weights: WeightDist::Constant(1),
        };
        let mut w = Workload::new(cfg, 1);
        let sizes: Vec<usize> = (0..8).map(|_| w.next_batch().arrivals.len()).collect();
        assert_eq!(sizes, vec![80, 10, 10, 10, 80, 10, 10, 10]);
    }

    #[test]
    fn zipf_weights_are_skewed_small() {
        let mut w = Workload::new(
            WorkloadCfg {
                kind: WorkloadKind::Zipf { s: 1.5, max: 32 },
                batch: 2000,
                churn: 0.0,
                weights: WeightDist::Constant(1),
            },
            7,
        );
        let batch = w.next_batch();
        let ones = batch.arrivals.iter().filter(|b| b.weight == 1).count();
        // Zipf(1.5) puts well over a third of the mass on weight 1.
        assert!(ones > 800, "ones = {ones}");
        assert!(batch.arrivals.iter().any(|b| b.weight > 4));
    }

    #[test]
    fn weight_dist_moments_are_exact() {
        let c = WeightDist::Constant(3);
        assert_eq!(c.mean(), 3.0);
        assert_eq!(c.variance(), 0.0);

        let u = WeightDist::UniformRange { lo: 1, hi: 3 };
        assert!((u.mean() - 2.0).abs() < 1e-12);
        assert!((u.variance() - 2.0 / 3.0).abs() < 1e-12);

        let t = WeightDist::TwoPoint {
            lo: 1,
            hi: 10,
            p: 0.1,
        };
        assert!((t.mean() - 1.9).abs() < 1e-12);
        // E[X^2] = 0.9 + 10 = 10.9; Var = 10.9 − 3.61 = 7.29.
        assert!((t.variance() - 7.29).abs() < 1e-12);
    }

    #[test]
    fn two_point_empirical_mean_matches() {
        let d = WeightDist::TwoPoint {
            lo: 1,
            hi: 10,
            p: 0.1,
        };
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - d.mean()).abs() < 0.05, "mean {mean}");
    }
}
