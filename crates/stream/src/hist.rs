//! Fixed-bucket log₂ latency histogram: [`LatencyHistogram`].
//!
//! The replay service charges every ball a placement latency (queue entry
//! → batch resolved) and needs p50/p99/p999 per checkpoint without
//! per-sample storage. A log₂ histogram fits: 64 buckets, bucket `b`
//! holding values with `⌊log₂ v⌋ = b` (bucket 0 also holds 0), so the
//! whole state is one flat `[u64; 64]` — recording is a shift, a bucket
//! increment, and min/max bookkeeping, and **touches no heap** (enforced
//! by the counting-allocator test in `tests/alloc_steady_state.rs`).
//!
//! Quantiles resolve to the lower edge of the bucket containing the
//! requested rank, clamped to the observed `[min, max]` — exact whenever
//! the bucket holds a single distinct value (and in particular on any
//! all-equal input), and within a factor 2 otherwise, which is ample for
//! latency percentiles spanning nanoseconds to seconds.
//!
//! Merging histograms adds counts bucket-wise, so merge is associative
//! and commutative and a sharded recorder can combine per-lane histograms
//! into the same totals any single-threaded recorder would have seen.

/// Number of log₂ buckets (one per possible `⌊log₂ v⌋` of a `u64`).
pub const BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram of `u64` samples (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use pba_stream::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [100u64, 100, 100, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), 100); // single-valued bucket → exact
/// assert_eq!(h.max(), 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket holding `v`: `⌊log₂ v⌋`, with 0 and 1 sharing bucket 0.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros()) as usize
    }
}

/// Lower edge of bucket `b` (the value a quantile in `b` resolves to,
/// before min/max clamping).
#[inline]
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << b
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of the same value in O(1) — the service charges
    /// one batch latency to every ball of the batch. Allocation-free.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty). The sum saturates at `u64::MAX`, so
    /// the mean degrades rather than wrapping on absurd totals.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (bucket `b` holds values with `⌊log₂ v⌋ = b`).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Cumulative fraction of samples in buckets `0..=b`. Monotone
    /// non-decreasing in `b` and 1.0 at the last bucket (when non-empty).
    pub fn cdf(&self, b: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let cum: u64 = self.counts[..=b.min(BUCKETS - 1)].iter().sum();
        cum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), resolved to the lower edge of the
    /// bucket containing rank `⌈q·count⌉` and clamped to the observed
    /// `[min, max]`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self`. Associative and commutative: merging
    /// per-lane histograms in any order yields the same totals.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forget every sample (for per-checkpoint windows; the storage is a
    /// flat array, so clearing allocates nothing).
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::rng::{Rand64, SplitMix64};

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_exact_on_known_inputs() {
        // One distinct value per bucket → every quantile is exact.
        let mut h = LatencyHistogram::new();
        for (v, n) in [(1u64, 50u64), (2, 25), (4, 15), (8, 9), (16, 1)] {
            h.record_n(v, n);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.quantile(0.51), 2);
        assert_eq!(h.quantile(0.75), 2);
        assert_eq!(h.quantile(0.76), 4);
        assert_eq!(h.p99(), 8);
        assert_eq!(h.p999(), 16);
        assert_eq!(h.quantile(1.0), 16);

        // All-equal input: exact at every quantile regardless of value.
        let mut h = LatencyHistogram::new();
        h.record_n(12_345, 1000);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
    }

    #[test]
    fn quantile_error_is_within_one_bucket() {
        // Mixed values inside buckets: the estimate must stay within the
        // sample's bucket, i.e. within a factor 2 below the true value.
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = 1 + rng.next_u64() % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est <= truth, "q={q}: estimate {est} above truth {truth}");
            assert!(
                est > truth / 2,
                "q={q}: estimate {est} below bucket of truth {truth}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.cdf(BUCKETS - 1), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut h = LatencyHistogram::new();
        let mut rng = SplitMix64::new(7);
        for _ in 0..5_000 {
            h.record(rng.next_u64() >> (rng.below(64)));
        }
        let mut prev = 0.0;
        for b in 0..BUCKETS {
            let c = h.cdf(b);
            assert!(c >= prev, "cdf fell at bucket {b}: {prev} -> {c}");
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!((h.cdf(BUCKETS - 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut rng = SplitMix64::new(9);
        for _ in 0..2_000 {
            h.record(1 + rng.next_u64() % 100_000);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantile fell at q={}: {prev} -> {v}", i);
            prev = v;
        }
    }

    /// Property: merge is associative and commutative, and merging equals
    /// recording the concatenated sample stream. Seeded cases in the
    /// workspace's hand-rolled property style.
    #[test]
    fn property_merge_is_associative_commutative_and_faithful() {
        for case in 0..32u64 {
            let mut rng = SplitMix64::new(0x41A7_0000 ^ case);
            let parts: Vec<Vec<u64>> = (0..3)
                .map(|_| {
                    (0..rng.below(200))
                        .map(|_| rng.next_u64() % 1_000_000)
                        .collect()
                })
                .collect();
            let hist = |vals: &[u64]| {
                let mut h = LatencyHistogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let [a, b, c] = [hist(&parts[0]), hist(&parts[1]), hist(&parts[2])];

            // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            assert_eq!(left, right, "case {case}: associativity");

            // a ⊔ b == b ⊔ a
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, ba, "case {case}: commutativity");

            // merge == one histogram over the concatenation
            let all: Vec<u64> = parts.iter().flatten().copied().collect();
            assert_eq!(left, hist(&all), "case {case}: faithfulness");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(777, 500);
        a.record_n(3, 0); // no-op
        for _ in 0..500 {
            b.record(777);
        }
        assert_eq!(a, b);
    }
}
