//! Socket ingestion: real traffic for the replay service.
//!
//! `pba-run serve --listen ADDR` accepts one client connection and feeds
//! its framed batches into a live [`StreamAllocator`]; `pba-run serve
//! --send ADDR` is the matching driver, shipping a deterministic
//! [`Workload`] over the socket instead of ingesting it in-process. The
//! frames ride the same binary codec the cluster wire uses
//! ([`pba_core::wire`]): `0xB5`-tagged, length-prefixed,
//! FNV-1a-checksummed messages, with ball ids zigzag-delta coded so a
//! mostly-ascending id sequence costs ~1 byte per ball.
//!
//! The protocol is a strict half-duplex conversation:
//!
//! ```text
//! client                          server
//!   hello {n, seed, policy} ──▶
//!                           ◀──  hello_ok (or error: config mismatch)
//!   batch {t, arrivals, departures} ──▶
//!                           ◀──  ack {t, resident, max_load}
//!   …                            …
//!   done ──▶
//!                           ◀──  summary {batches, balls, resident, max_load, gap}
//! ```
//!
//! The server's allocator is authoritative; the client hello only lets
//! the server reject a mismatched pairing (wrong bin count, policy, or
//! seed) with a diagnostic instead of silently diverging. A server fed
//! the same batches as an in-process replay ends in the bit-identical
//! allocator state — the socket adds transport, not semantics.

use std::io::{Read, Write};

use pba_core::wire::{self, WireReader, WireWriter};

use crate::allocator::StreamAllocator;
use crate::batch::{Ball, Batch};
use crate::workload::Workload;

/// Ingest message tags (disjoint from the cluster wire's 1..=13 range).
const TAG_HELLO: u8 = 0x20;
const TAG_HELLO_OK: u8 = 0x21;
const TAG_BATCH: u8 = 0x22;
const TAG_ACK: u8 = 0x23;
const TAG_DONE: u8 = 0x24;
const TAG_SUMMARY: u8 = 0x25;
const TAG_ERROR: u8 = 0x2F;

/// One message of the ingest conversation.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestFrame {
    /// Client announces what it is about to stream.
    Hello { n: u32, seed: u64, policy: String },
    /// Server accepts the pairing.
    HelloOk,
    /// One batch of traffic.
    Batch { batch: u64, payload: Batch },
    /// Server applied batch `batch`; state checksums for the client.
    Ack {
        batch: u64,
        resident: u64,
        max_load: u64,
    },
    /// Client is finished sending.
    Done,
    /// Server's final state after the drain.
    Summary {
        batches: u64,
        balls: u64,
        resident: u64,
        max_load: u64,
        gap: u64,
    },
    /// Either side bails with a diagnostic.
    Error { detail: String },
}

/// Final state of an ingest session, as reported by the server's
/// `summary` frame (and computed server-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSummary {
    /// Batches ingested.
    pub batches: u64,
    /// Total arrivals across all batches.
    pub balls: u64,
    /// Balls resident at the end (arrivals minus departures).
    pub resident: u64,
    /// Maximum bin load at the end.
    pub max_load: u64,
    /// Load gap (max load minus mean) at the end.
    pub gap: u64,
}

fn write_balls(w: &mut WireWriter, balls: &[Ball]) {
    w.varint(balls.len() as u64);
    let mut prev = 0i64;
    for ball in balls {
        let id = ball.id as i64;
        w.varint_signed(id.wrapping_sub(prev));
        w.varint(ball.weight);
        prev = id;
    }
}

fn read_balls(r: &mut WireReader) -> Result<Vec<Ball>, wire::WireError> {
    let count = r.varint()?;
    if count > wire::MAX_MSG_LEN as u64 {
        return Err(wire::WireError::Malformed(format!(
            "ball count {count} exceeds frame capacity"
        )));
    }
    let mut balls = Vec::with_capacity(count as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let id = prev.wrapping_add(r.varint_signed()?);
        let weight = r.varint()?;
        balls.push(Ball {
            id: id as u64,
            weight,
        });
        prev = id;
    }
    Ok(balls)
}

fn write_ids(w: &mut WireWriter, ids: &[u64]) {
    w.varint(ids.len() as u64);
    let mut prev = 0i64;
    for &id in ids {
        let id = id as i64;
        w.varint_signed(id.wrapping_sub(prev));
        prev = id;
    }
}

fn read_ids(r: &mut WireReader) -> Result<Vec<u64>, wire::WireError> {
    let count = r.varint()?;
    if count > wire::MAX_MSG_LEN as u64 {
        return Err(wire::WireError::Malformed(format!(
            "id count {count} exceeds frame capacity"
        )));
    }
    let mut ids = Vec::with_capacity(count as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let id = prev.wrapping_add(r.varint_signed()?);
        ids.push(id as u64);
        prev = id;
    }
    Ok(ids)
}

impl IngestFrame {
    /// Encode to one checksummed binary message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::unframed();
        let tag = match self {
            IngestFrame::Hello { n, seed, policy } => {
                w.varint(u64::from(*n));
                w.u64(*seed);
                w.str(policy);
                TAG_HELLO
            }
            IngestFrame::HelloOk => TAG_HELLO_OK,
            IngestFrame::Batch { batch, payload } => {
                w.varint(*batch);
                write_balls(&mut w, &payload.arrivals);
                write_ids(&mut w, &payload.departures);
                TAG_BATCH
            }
            IngestFrame::Ack {
                batch,
                resident,
                max_load,
            } => {
                w.varint(*batch);
                w.varint(*resident);
                w.varint(*max_load);
                TAG_ACK
            }
            IngestFrame::Done => TAG_DONE,
            IngestFrame::Summary {
                batches,
                balls,
                resident,
                max_load,
                gap,
            } => {
                w.varint(*batches);
                w.varint(*balls);
                w.varint(*resident);
                w.varint(*max_load);
                w.varint(*gap);
                TAG_SUMMARY
            }
            IngestFrame::Error { detail } => {
                w.str(detail);
                TAG_ERROR
            }
        };
        wire::encode_msg(tag, &w.finish())
    }

    fn from_payload(tag: u8, payload: &[u8]) -> Result<IngestFrame, wire::WireError> {
        let mut r = WireReader::unframed(payload);
        let frame = match tag {
            TAG_HELLO => IngestFrame::Hello {
                n: u32::try_from(r.varint()?).map_err(|_| {
                    wire::WireError::Malformed("hello bin count exceeds u32".into())
                })?,
                seed: r.u64()?,
                policy: r.str()?.to_owned(),
            },
            TAG_HELLO_OK => IngestFrame::HelloOk,
            TAG_BATCH => IngestFrame::Batch {
                batch: r.varint()?,
                payload: Batch {
                    arrivals: read_balls(&mut r)?,
                    departures: read_ids(&mut r)?,
                },
            },
            TAG_ACK => IngestFrame::Ack {
                batch: r.varint()?,
                resident: r.varint()?,
                max_load: r.varint()?,
            },
            TAG_DONE => IngestFrame::Done,
            TAG_SUMMARY => IngestFrame::Summary {
                batches: r.varint()?,
                balls: r.varint()?,
                resident: r.varint()?,
                max_load: r.varint()?,
                gap: r.varint()?,
            },
            TAG_ERROR => IngestFrame::Error {
                detail: r.str()?.to_owned(),
            },
            other => {
                return Err(wire::WireError::Malformed(format!(
                    "unknown ingest tag {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(frame)
    }

    /// Decode one message (as produced by [`IngestFrame::encode`]).
    pub fn decode(bytes: &[u8]) -> Result<IngestFrame, wire::WireError> {
        let (tag, payload) = wire::decode_msg(bytes)?;
        Self::from_payload(tag, payload)
    }
}

/// Write one frame and flush it onto the wire.
pub fn send_frame(w: &mut impl Write, frame: &IngestFrame) -> Result<(), String> {
    w.write_all(&frame.encode())
        .and_then(|()| w.flush())
        .map_err(|e| format!("ingest send failed: {e}"))
}

/// Read one frame; `Ok(None)` on a clean EOF between frames.
pub fn recv_frame(r: &mut impl Read) -> Result<Option<IngestFrame>, String> {
    match wire::read_msg(r) {
        Ok(None) => Ok(None),
        Ok(Some((tag, payload))) => IngestFrame::from_payload(tag, &payload)
            .map(Some)
            .map_err(|e| format!("unreadable ingest frame: {e}")),
        Err(e) => Err(format!("unreadable ingest frame: {e}")),
    }
}

fn expect_frame(r: &mut impl Read) -> Result<IngestFrame, String> {
    match recv_frame(r)? {
        Some(IngestFrame::Error { detail }) => Err(format!("peer error: {detail}")),
        Some(frame) => Ok(frame),
        None => Err("peer closed the connection mid-conversation (EOF)".into()),
    }
}

/// Server side: answer one client conversation, ingesting every batch
/// into `alloc`. Protocol violations and corrupt frames surface as an
/// `error` frame to the client *and* an `Err` here — a mangled batch is
/// never applied.
pub fn serve_ingest(
    reader: &mut impl Read,
    writer: &mut impl Write,
    alloc: &mut StreamAllocator,
) -> Result<IngestSummary, String> {
    let fail = |writer: &mut dyn Write, detail: String| -> String {
        let _ = writer.write_all(
            &IngestFrame::Error {
                detail: detail.clone(),
            }
            .encode(),
        );
        let _ = writer.flush();
        detail
    };
    match expect_frame(reader)? {
        IngestFrame::Hello { n, seed, policy } => {
            let meta = alloc.meta();
            if n != meta.bins || seed != meta.seed || policy != meta.policy {
                return Err(fail(
                    writer,
                    format!(
                        "ingest pairing mismatch: client offers n={n} seed={seed} \
                         policy={policy}, server runs n={} seed={} policy={}",
                        meta.bins, meta.seed, meta.policy
                    ),
                ));
            }
        }
        other => return Err(fail(writer, format!("expected hello, got {other:?}"))),
    }
    send_frame(writer, &IngestFrame::HelloOk)?;
    let mut batches = 0u64;
    let mut balls = 0u64;
    loop {
        match expect_frame(reader) {
            Ok(IngestFrame::Batch { batch, payload }) => {
                if batch != batches {
                    return Err(fail(
                        writer,
                        format!("out-of-order batch {batch} (expected {batches})"),
                    ));
                }
                balls += payload.arrivals.len() as u64;
                alloc.ingest(&payload);
                batches += 1;
                send_frame(
                    writer,
                    &IngestFrame::Ack {
                        batch,
                        resident: alloc.resident(),
                        max_load: alloc.bin_state().max_load(),
                    },
                )?;
            }
            Ok(IngestFrame::Done) => break,
            Ok(other) => {
                return Err(fail(
                    writer,
                    format!("expected batch or done, got {other:?}"),
                ))
            }
            Err(e) => return Err(fail(writer, e)),
        }
    }
    let summary = IngestSummary {
        batches,
        balls,
        resident: alloc.resident(),
        max_load: alloc.bin_state().max_load(),
        gap: alloc.bin_state().gap(),
    };
    send_frame(
        writer,
        &IngestFrame::Summary {
            batches: summary.batches,
            balls: summary.balls,
            resident: summary.resident,
            max_load: summary.max_load,
            gap: summary.gap,
        },
    )?;
    Ok(summary)
}

/// Client side: ship `batches` batches of `traffic` to a listening
/// server, verifying every ack arrives in order, and return the server's
/// final summary.
pub fn drive_ingest(
    reader: &mut impl Read,
    writer: &mut impl Write,
    hello: &IngestFrame,
    traffic: &mut Workload,
    batches: u64,
) -> Result<IngestSummary, String> {
    send_frame(writer, hello)?;
    match expect_frame(reader)? {
        IngestFrame::HelloOk => {}
        other => return Err(format!("expected hello_ok, got {other:?}")),
    }
    for t in 0..batches {
        let payload = traffic.next_batch();
        send_frame(writer, &IngestFrame::Batch { batch: t, payload })?;
        match expect_frame(reader)? {
            IngestFrame::Ack { batch, .. } if batch == t => {}
            other => return Err(format!("expected ack for batch {t}, got {other:?}")),
        }
    }
    send_frame(writer, &IngestFrame::Done)?;
    match expect_frame(reader)? {
        IngestFrame::Summary {
            batches,
            balls,
            resident,
            max_load,
            gap,
        } => Ok(IngestSummary {
            batches,
            balls,
            resident,
            max_load,
            gap,
        }),
        other => Err(format!("expected summary, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::workload::WorkloadCfg;

    #[test]
    fn every_ingest_frame_roundtrips() {
        let frames = [
            IngestFrame::Hello {
                n: 128,
                seed: (1 << 60) + 7,
                policy: "batched-two-choice".into(),
            },
            IngestFrame::HelloOk,
            IngestFrame::Batch {
                batch: 3,
                payload: Batch {
                    arrivals: vec![Ball::unit(100), Ball::weighted(101, 4), Ball::unit(90)],
                    departures: vec![5, 17, 2],
                },
            },
            IngestFrame::Ack {
                batch: 3,
                resident: 40,
                max_load: 6,
            },
            IngestFrame::Done,
            IngestFrame::Summary {
                batches: 8,
                balls: 1024,
                resident: 900,
                max_load: 9,
                gap: 2,
            },
            IngestFrame::Error {
                detail: "no".into(),
            },
        ];
        for f in &frames {
            let bytes = f.encode();
            assert_eq!(&IngestFrame::decode(&bytes).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn delta_coding_keeps_ascending_ids_compact() {
        let payload = Batch {
            arrivals: (0..1000).map(|i| Ball::unit(500_000 + i)).collect(),
            departures: (0..100).map(|i| 400_000 + 3 * i).collect(),
        };
        let bytes = IngestFrame::Batch { batch: 1, payload }.encode();
        // ~2 bytes per arrival (delta 1 + weight 1) plus departures and
        // framing; far below the 8+ bytes per id of fixed-width coding.
        assert!(bytes.len() < 3000, "batch frame is {} bytes", bytes.len());
    }

    #[test]
    fn corrupt_ingest_frames_are_rejected() {
        let good = IngestFrame::Batch {
            batch: 2,
            payload: Batch {
                arrivals: vec![Ball::unit(7), Ball::unit(8)],
                departures: vec![1],
            },
        }
        .encode();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            assert!(
                IngestFrame::decode(&bad).is_err(),
                "flip in byte {byte} went undetected"
            );
        }
        for len in 0..good.len() {
            assert!(IngestFrame::decode(&good[..len]).is_err());
        }
    }

    #[test]
    fn socket_free_conversation_matches_local_replay() {
        // Pipe the client's bytes through in-memory buffers: the server's
        // allocator must land exactly where a local ingest run lands.
        let (n, seed, batches) = (64u32, 11u64, 5u64);
        let cfg = WorkloadCfg::uniform(256).with_churn(0.3);

        let mut reference = StreamAllocator::new(n, seed, PolicyKind::BatchedTwoChoice);
        let mut traffic = Workload::new(cfg, seed);
        for _ in 0..batches {
            reference.ingest(&traffic.next_batch());
        }

        let mut server = StreamAllocator::new(n, seed, PolicyKind::BatchedTwoChoice);
        let hello = IngestFrame::Hello {
            n,
            seed,
            policy: "batched-two-choice".into(),
        };
        // Half-duplex means one pass per direction suffices: record the
        // client's sends, serve them, then let the client check replies.
        let mut client_out: Vec<u8> = Vec::new();
        let mut traffic = Workload::new(cfg, seed);
        send_frame(&mut client_out, &hello).unwrap();
        for t in 0..batches {
            let payload = traffic.next_batch();
            send_frame(&mut client_out, &IngestFrame::Batch { batch: t, payload }).unwrap();
        }
        send_frame(&mut client_out, &IngestFrame::Done).unwrap();

        let mut server_out: Vec<u8> = Vec::new();
        let summary =
            serve_ingest(&mut client_out.as_slice(), &mut server_out, &mut server).unwrap();
        assert_eq!(summary.batches, batches);
        assert_eq!(summary.resident, reference.resident());
        assert_eq!(summary.max_load, reference.bin_state().max_load());
        assert_eq!(
            server.bin_state().load_vector(),
            reference.bin_state().load_vector(),
            "socket ingestion must be bit-identical to local ingestion"
        );
    }

    #[test]
    fn mismatched_pairing_is_rejected_with_a_diagnostic() {
        let mut server = StreamAllocator::new(64, 1, PolicyKind::OneChoice);
        let mut client_out: Vec<u8> = Vec::new();
        send_frame(
            &mut client_out,
            &IngestFrame::Hello {
                n: 128,
                seed: 1,
                policy: "one-choice".into(),
            },
        )
        .unwrap();
        let mut server_out: Vec<u8> = Vec::new();
        let err =
            serve_ingest(&mut client_out.as_slice(), &mut server_out, &mut server).unwrap_err();
        assert!(err.contains("pairing mismatch"), "{err}");
        // The client sees the same diagnostic as an error frame.
        match recv_frame(&mut server_out.as_slice()).unwrap() {
            Some(IngestFrame::Error { detail }) => assert!(detail.contains("128")),
            other => panic!("expected error frame, got {other:?}"),
        }
    }
}
