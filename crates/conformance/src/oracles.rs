//! The registered claim oracles, one per guarded experiment family.
//!
//! Every oracle follows the same shape: seeded replicated runs with the
//! in-engine invariant checker armed, a bound whose tolerance comes from
//! `pba-analysis` (exact binomial quantiles, the DKW inequality, Chernoff
//! deviations) rather than hand-tuned constants, and a verdict that flips
//! to [`Verdict::Refuted`] if *any* replicate breaks the bound or errors.

use pba_analysis::binomial::expected_max_load_single_choice;
use pba_analysis::chernoff::{upper_deviation_for, whp_target};
use pba_analysis::{dkw_epsilon, Binomial, LinearFit, Summary};
use pba_core::mathutil::log_log2;
use pba_core::{
    MessageTracking, ProblemSpec, Result, RoundProtocol, RunConfig, RunOutcome, Simulator,
};
use pba_protocols::par::kd_choice::park_window;
use pba_protocols::{
    AdlerGreedy, Collision, EstimatedAverage, KdChoice, SingleChoice, StemannHeavy, ThresholdHeavy,
};
use pba_stream::{PolicyKind, StreamAllocator, Workload, WorkloadCfg};

use crate::{Claim, ClaimReport, Verdict, VerifyOptions, VerifyScale};

/// Salt separating oracle seeds from experiment seeds.
const SEED_SALT: u64 = 0xC0F0_0000;

/// One validated run of `protocol`, with the miswire plan armed if set.
fn run_one<P: RoundProtocol>(
    protocol: P,
    spec: ProblemSpec,
    seed: u64,
    opts: &VerifyOptions,
    tracking: MessageTracking,
) -> Result<RunOutcome> {
    let mut cfg = RunConfig::seeded(seed)
        .with_validation(true)
        .with_trace(false)
        .with_tracking(tracking);
    if let Some(plan) = opts.miswire {
        cfg = cfg.with_faults(plan);
    }
    Simulator::new(spec, cfg).run(protocol)
}

/// Shared accumulator: per-replicate headline statistics plus the bound
/// violations encountered along the way.
struct Measurement {
    stats: Vec<f64>,
    failures: Vec<String>,
    notes: Vec<String>,
}

impl Measurement {
    fn new() -> Self {
        Self {
            stats: Vec::new(),
            failures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Record a bound violation (flips the verdict).
    fn fail(&mut self, detail: String) {
        self.failures.push(detail);
    }

    /// Fold into a report: verdict is Confirmed iff no failure fired, the
    /// observed column carries the mean with its 95% CI, and failures are
    /// appended to the notes.
    fn finish(mut self, claim: &dyn Claim, bound: String, stat_label: &str) -> ClaimReport {
        let (mean, ci) = if self.stats.is_empty() {
            (f64::NAN, (f64::NAN, f64::NAN))
        } else {
            let summary = Summary::from_values(self.stats.clone());
            (summary.mean(), summary.mean_ci(0.95))
        };
        let verdict = if self.failures.is_empty() && !self.stats.is_empty() {
            Verdict::Confirmed
        } else {
            Verdict::Refuted
        };
        let observed = if mean.is_nan() {
            format!("{stat_label}: no data")
        } else {
            format!(
                "{stat_label} {:.3} (95% CI [{:.3}, {:.3}], n={})",
                mean,
                ci.0,
                ci.1,
                self.stats.len()
            )
        };
        let mut notes = std::mem::take(&mut self.notes);
        notes.extend(self.failures.iter().map(|f| format!("violation: {f}")));
        ClaimReport {
            id: claim.id(),
            experiment: claim.experiment(),
            title: claim.title(),
            bound,
            observed,
            mean,
            ci,
            verdict,
            notes,
        }
    }
}

/// Honest lattice KS distance between integer per-bin loads and a
/// reference distribution's CDF: `sup_k |F̂(k) − F(k)|` evaluated at
/// every lattice point (the generic sorted-sample statistic would
/// compare `F(k)` against `F̂(k−1)` on ties, inflating the distance by
/// up to one atom's mass).
fn lattice_ks(loads: &[u32], cdf: impl Fn(u64) -> f64) -> f64 {
    let max = loads.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max + 1];
    for &l in loads {
        hist[l as usize] += 1;
    }
    let n = loads.len() as f64;
    let mut cum = 0u64;
    let mut d = 0.0f64;
    for (k, &h) in hist.iter().enumerate() {
        cum += h;
        d = d.max((cum as f64 / n - cdf(k as u64)).abs());
    }
    d
}

fn spec(m: u64, n: u32) -> ProblemSpec {
    ProblemSpec::new(m, n).expect("oracle spec is valid")
}

// ---------------------------------------------------------------------------
// E1: single-choice per-bin loads follow the binomial null.
// ---------------------------------------------------------------------------

/// KS test of single-choice per-bin loads against `Bin(m, 1/n)`, with
/// the DKW inequality supplying the tolerance.
pub(crate) struct E01BinomialKs;

impl Claim for E01BinomialKs {
    fn id(&self) -> &'static str {
        "e01-ks"
    }
    fn experiment(&self) -> &'static str {
        "e01"
    }
    fn title(&self) -> &'static str {
        "single-choice per-bin loads are Bin(m, 1/n): KS distance within the DKW bound"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 10,
            VerifyScale::Full => 1 << 12,
        };
        let m = 16 * n as u64;
        let s = spec(m, n);
        let bin = Binomial::new(m, 1.0 / n as f64);
        // One ECDF per replicate, n bins each; grant each replicate
        // failure mass 1e-6 under the (negatively associated, hence
        // conservative) independent-sample DKW bound.
        let eps = dkw_epsilon(n as usize, 1e-6);
        let mut meas = Measurement::new();
        for rep in 0..opts.scale.reps() {
            let seed = SEED_SALT + 100 + rep as u64;
            match run_one(SingleChoice::new(s), s, seed, opts, MessageTracking::Totals) {
                Ok(out) => {
                    let d = lattice_ks(&out.loads, |k| bin.cdf(k));
                    meas.stats.push(d);
                    if d > eps {
                        meas.fail(format!("rep {rep}: KS distance {d:.4} > DKW ε {eps:.4}"));
                    }
                }
                Err(e) => meas.fail(format!("rep {rep}: run failed: {e}")),
            }
        }
        meas.notes.push(format!(
            "null: Bin({m}, 1/{n}); ε = √(ln(2/α)/2n) at α = 1e-6 per replicate"
        ));
        meas.finish(self, format!("KS(F̂, Bin) ≤ {eps:.4}"), "KS distance")
    }
}

/// Single-choice max load stays below the exact binomial union-bound
/// quantile.
pub(crate) struct E01MaxLoad;

impl Claim for E01MaxLoad {
    fn id(&self) -> &'static str {
        "e01-max"
    }
    fn experiment(&self) -> &'static str {
        "e01"
    }
    fn title(&self) -> &'static str {
        "single-choice max load is within the exact binomial union-bound quantile"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 10,
            VerifyScale::Full => 1 << 12,
        };
        let m = 16 * n as u64;
        let s = spec(m, n);
        let bin = Binomial::new(m, 1.0 / n as f64);
        // P[max > q] ≤ n · P[X > q] ≤ α with α = 1e-4 per replicate.
        let q = bin.quantile(1.0 - 1e-4 / n as f64);
        let mut meas = Measurement::new();
        for rep in 0..opts.scale.reps() {
            let seed = SEED_SALT + 200 + rep as u64;
            match run_one(SingleChoice::new(s), s, seed, opts, MessageTracking::Totals) {
                Ok(out) => {
                    let max = out.max_load();
                    meas.stats.push(max as f64);
                    if max as u64 > q {
                        meas.fail(format!("rep {rep}: max load {max} > quantile {q}"));
                    }
                }
                Err(e) => meas.fail(format!("rep {rep}: run failed: {e}")),
            }
        }
        meas.notes.push(format!(
            "first-moment estimate of E[max]: {:.2}",
            expected_max_load_single_choice(m, n)
        ));
        meas.finish(self, format!("max load ≤ {q}"), "max load")
    }
}

// ---------------------------------------------------------------------------
// E3: threshold-heavy gap is m/n + O(1).
// ---------------------------------------------------------------------------

/// Threshold-heavy (A_heavy) final gap stays within the paper's additive
/// constant at heavy load.
pub(crate) struct E03Gap;

impl Claim for E03Gap {
    fn id(&self) -> &'static str {
        "e03-gap"
    }
    fn experiment(&self) -> &'static str {
        "e03"
    }
    fn title(&self) -> &'static str {
        "threshold-heavy allocates m ≫ n balls with gap ≤ 2 (Theorem 1's m/n + O(1))"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 10,
            VerifyScale::Full => 1 << 12,
        };
        let ratio = 128u64;
        let s = spec(ratio * n as u64, n);
        let mut meas = Measurement::new();
        for rep in 0..opts.scale.reps() {
            let seed = SEED_SALT + 300 + rep as u64;
            match run_one(
                ThresholdHeavy::new(s),
                s,
                seed,
                opts,
                MessageTracking::Totals,
            ) {
                Ok(out) => {
                    let gap = out.gap();
                    meas.stats.push(gap as f64);
                    if gap > 2 {
                        meas.fail(format!("rep {rep}: gap {gap} > 2"));
                    }
                }
                Err(e) => meas.fail(format!("rep {rep}: run failed: {e}")),
            }
        }
        // Context: what a Chernoff-null single-choice allocation would
        // concede at the same ratio — the claim is precisely that the
        // protocol beats this √(m/n)-scale deviation with a constant.
        let naive = upper_deviation_for(ratio as f64, whp_target(n as u64, 1.0));
        meas.notes.push(format!(
            "binomial-null gap at m/n = {ratio} would be ≈ {naive:.1} (Chernoff); \
             the protocol's thresholds pin it at ≤ 2"
        ));
        meas.finish(self, "gap ≤ 2".to_string(), "gap")
    }
}

// ---------------------------------------------------------------------------
// E7: c-collision max load and round count.
// ---------------------------------------------------------------------------

/// Stemann's c-collision protocol: load capped at `c` and rounds growing
/// like `log log n`.
pub(crate) struct E07CollisionLoad;

impl Claim for E07CollisionLoad {
    fn id(&self) -> &'static str {
        "e07-load"
    }
    fn experiment(&self) -> &'static str {
        "e07"
    }
    fn title(&self) -> &'static str {
        "c-collision at m = n: max load ≤ c and rounds O(log log n)"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let ns: &[u32] = match opts.scale {
            VerifyScale::Ci => &[1 << 10, 1 << 12],
            VerifyScale::Full => &[1 << 10, 1 << 13, 1 << 16],
        };
        let c = 2u32;
        let mut meas = Measurement::new();
        for (i, &n) in ns.iter().enumerate() {
            let s = spec(n as u64, n);
            let rounds_cap = (4.0 * log_log2(n as f64) + 4.0).floor() as u32;
            let mut rounds_seen = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 700 + (i * 64 + rep) as u64;
                match run_one(
                    Collision::with_params(s, 2, c),
                    s,
                    seed,
                    opts,
                    MessageTracking::Totals,
                ) {
                    Ok(out) => {
                        if out.max_load() > c {
                            meas.fail(format!(
                                "n = {n} rep {rep}: max load {} > c = {c}",
                                out.max_load()
                            ));
                        }
                        if out.rounds > rounds_cap {
                            meas.fail(format!(
                                "n = {n} rep {rep}: {} rounds > cap {rounds_cap}",
                                out.rounds
                            ));
                        }
                        rounds_seen.push(out.rounds as f64);
                        if n == *ns.last().unwrap() {
                            meas.stats.push(out.rounds as f64);
                        }
                    }
                    Err(e) => meas.fail(format!("n = {n} rep {rep}: run failed: {e}")),
                }
            }
            if !rounds_seen.is_empty() {
                meas.notes.push(format!(
                    "n = {n}: mean rounds {:.2} vs 4·log₂log₂ n + 4 = {rounds_cap}",
                    Summary::from_values(rounds_seen).mean()
                ));
            }
        }
        meas.finish(
            self,
            format!("max load ≤ {c}; rounds ≤ 4·log₂log₂ n + 4"),
            "rounds (largest n)",
        )
    }
}

// ---------------------------------------------------------------------------
// E8: Stemann heavy load grows linearly in m/n.
// ---------------------------------------------------------------------------

/// Stemann-heavy max load is `O(m/n)`: a least-squares fit of max load
/// against m/n must be strongly linear with bounded slope, and every run
/// stays under a Chernoff ceiling.
pub(crate) struct E08LoadLinear;

impl Claim for E08LoadLinear {
    fn id(&self) -> &'static str {
        "e08-linear"
    }
    fn experiment(&self) -> &'static str {
        "e08"
    }
    fn title(&self) -> &'static str {
        "stemann-heavy max load is O(m/n): linear in the ratio with bounded slope"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let (n, ratios): (u32, &[u64]) = match opts.scale {
            VerifyScale::Ci => (1 << 9, &[8, 16, 32, 64]),
            VerifyScale::Full => (1 << 10, &[8, 16, 32, 64, 128]),
        };
        let mut meas = Measurement::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, &ratio) in ratios.iter().enumerate() {
            let s = spec(ratio * n as u64, n);
            // Chernoff ceiling: even a *naive* allocation stays below
            // mean + upper deviation w.h.p.; O(m/n) must too.
            let ceiling =
                ratio as f64 + upper_deviation_for(ratio as f64, whp_target(n as u64, 2.0)) + 2.0;
            let mut maxima = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 800 + (i * 64 + rep) as u64;
                match run_one(StemannHeavy::new(s), s, seed, opts, MessageTracking::Totals) {
                    Ok(out) => {
                        let max = out.max_load() as f64;
                        maxima.push(max);
                        if max > ceiling {
                            meas.fail(format!(
                                "m/n = {ratio} rep {rep}: max load {max} > Chernoff ceiling {ceiling:.1}"
                            ));
                        }
                        if ratio == *ratios.last().unwrap() {
                            meas.stats.push(max / ratio as f64);
                        }
                    }
                    Err(e) => meas.fail(format!("m/n = {ratio} rep {rep}: run failed: {e}")),
                }
            }
            if !maxima.is_empty() {
                let mean = Summary::from_values(maxima).mean();
                xs.push(ratio as f64);
                ys.push(mean);
                meas.notes
                    .push(format!("m/n = {ratio}: mean max load {mean:.2}"));
            }
        }
        if xs.len() >= 2 {
            let fit = LinearFit::fit(&xs, &ys);
            meas.notes.push(format!(
                "fit: max ≈ {:.3}·(m/n) + {:.2}, R² = {:.4}",
                fit.slope, fit.intercept, fit.r_squared
            ));
            if !(0.8..=2.5).contains(&fit.slope) {
                meas.fail(format!("slope {:.3} outside [0.8, 2.5]", fit.slope));
            }
            if fit.r_squared < 0.95 {
                meas.fail(format!(
                    "R² {:.4} < 0.95 — growth is not linear",
                    fit.r_squared
                ));
            }
        } else {
            meas.fail("fewer than two ratios measured — no fit possible".to_string());
        }
        meas.finish(
            self,
            "slope ∈ [0.8, 2.5], R² ≥ 0.95, max ≤ m/n + Chernoff deviation".to_string(),
            "max/(m/n) (largest ratio)",
        )
    }
}

// ---------------------------------------------------------------------------
// E9: r-round GREEDY finishes within its declared round budget.
// ---------------------------------------------------------------------------

/// Adler et al. r-round GREEDY: completes in at most `r` rounds with
/// concentrated round counts, and more rounds never hurt the load.
pub(crate) struct E09GreedyRounds;

impl Claim for E09GreedyRounds {
    fn id(&self) -> &'static str {
        "e09-rounds"
    }
    fn experiment(&self) -> &'static str {
        "e09"
    }
    fn title(&self) -> &'static str {
        "r-round GREEDY completes in ≤ r rounds, concentrated, with load monotone in r"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 12,
            VerifyScale::Full => 1 << 14,
        };
        let s = spec(n as u64, n);
        let rs = [2u32, 4u32];
        let mut mean_max = Vec::new();
        let mut meas = Measurement::new();
        for (i, &r) in rs.iter().enumerate() {
            let mut rounds_seen = Vec::new();
            let mut maxima = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 900 + (i * 64 + rep) as u64;
                match run_one(
                    AdlerGreedy::new(s, 2, r),
                    s,
                    seed,
                    opts,
                    MessageTracking::Totals,
                ) {
                    Ok(out) => {
                        if out.rounds > r {
                            meas.fail(format!("r = {r} rep {rep}: took {} rounds", out.rounds));
                        }
                        if !out.is_complete() {
                            meas.fail(format!(
                                "r = {r} rep {rep}: {} balls unallocated",
                                out.unallocated
                            ));
                        }
                        rounds_seen.push(out.rounds as f64);
                        maxima.push(out.max_load() as f64);
                        if r == *rs.last().unwrap() {
                            meas.stats.push(out.rounds as f64);
                        }
                    }
                    Err(e) => meas.fail(format!("r = {r} rep {rep}: run failed: {e}")),
                }
            }
            if !rounds_seen.is_empty() {
                let rounds = Summary::from_values(rounds_seen);
                let spread = rounds.max() - rounds.min();
                if spread > 2.0 {
                    meas.fail(format!(
                        "r = {r}: round counts spread over {spread} — not concentrated"
                    ));
                }
                let max_summary = Summary::from_values(maxima);
                mean_max.push(max_summary.mean());
                meas.notes.push(format!(
                    "r = {r}: rounds {:.2} ± {:.2}, mean max load {:.2}",
                    rounds.mean(),
                    rounds.stddev(),
                    max_summary.mean()
                ));
            }
        }
        if mean_max.len() == 2 && mean_max[1] > mean_max[0] + 0.5 {
            meas.fail(format!(
                "mean max load grew with r: {:.2} (r=2) -> {:.2} (r=4)",
                mean_max[0], mean_max[1]
            ));
        }
        meas.finish(
            self,
            "rounds ≤ r, complete, spread ≤ 2; load non-increasing in r".to_string(),
            "rounds (r = 4)",
        )
    }
}

// ---------------------------------------------------------------------------
// E10: message budget.
// ---------------------------------------------------------------------------

/// Threshold-heavy message complexity: O(1) messages per ball on
/// average, O(log n) for the unluckiest ball.
pub(crate) struct E10MessageBudget;

impl Claim for E10MessageBudget {
    fn id(&self) -> &'static str {
        "e10-msgs"
    }
    fn experiment(&self) -> &'static str {
        "e10"
    }
    fn title(&self) -> &'static str {
        "threshold-heavy message budget: O(1) per ball mean, O(log n) per-ball max"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 10,
            VerifyScale::Full => 1 << 12,
        };
        let m = 64 * n as u64;
        let s = spec(m, n);
        let per_ball_cap = 4.0;
        let max_cap = 4 * (n as f64).log2() as u32;
        let mut meas = Measurement::new();
        for rep in 0..opts.scale.reps() {
            let seed = SEED_SALT + 1000 + rep as u64;
            match run_one(ThresholdHeavy::new(s), s, seed, opts, MessageTracking::Full) {
                Ok(out) => {
                    let per_ball = out.messages.sent_by_balls() as f64 / m as f64;
                    meas.stats.push(per_ball);
                    if per_ball > per_ball_cap {
                        meas.fail(format!(
                            "rep {rep}: {per_ball:.2} messages/ball > {per_ball_cap}"
                        ));
                    }
                    if let Some(worst) = out.max_ball_sent {
                        if worst > max_cap {
                            meas.fail(format!(
                                "rep {rep}: unluckiest ball sent {worst} > {max_cap} messages"
                            ));
                        }
                    }
                }
                Err(e) => meas.fail(format!("rep {rep}: run failed: {e}")),
            }
        }
        meas.finish(
            self,
            format!("mean ≤ {per_ball_cap} msgs/ball; per-ball max ≤ 4·log₂ n = {max_cap}"),
            "messages per ball",
        )
    }
}

// ---------------------------------------------------------------------------
// E15: streaming batched two-choice gap vs batch size.
// ---------------------------------------------------------------------------

/// Streaming batched two-choice: small batches keep the gap
/// logarithmic; the gap grows monotonically with batch size.
pub(crate) struct E15StreamGap;

impl Claim for E15StreamGap {
    fn id(&self) -> &'static str {
        "e15-stream"
    }
    fn experiment(&self) -> &'static str {
        "e15"
    }
    fn title(&self) -> &'static str {
        "stream batched two-choice: gap ≤ 2·log₂ n at b = n, monotone in batch size"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 9,
            VerifyScale::Full => 1 << 10,
        };
        let total_ratio = 64u64;
        let mults: [u64; 3] = [1, 8, 32];
        let small_cap = 2.0 * (n as f64).log2();
        let mut mean_gap = Vec::new();
        let mut meas = Measurement::new();
        for (i, &mult) in mults.iter().enumerate() {
            let b = mult * n as u64;
            let batches = total_ratio / mult;
            let mut gaps = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 1500 + (i * 64 + rep) as u64;
                let mut alloc = StreamAllocator::new(n, seed, PolicyKind::BatchedTwoChoice);
                if let Some(plan) = opts.miswire {
                    alloc = alloc.with_faults(plan);
                }
                let mut workload = Workload::new(WorkloadCfg::uniform(b), seed ^ 0x0057_AEA3);
                let mut gap = 0u64;
                for _ in 0..batches {
                    let batch = workload.next_batch();
                    gap = alloc.ingest(&batch).record.gap;
                }
                gaps.push(gap as f64);
                if mult == 1 {
                    meas.stats.push(gap as f64);
                    if (gap as f64) > small_cap {
                        meas.fail(format!(
                            "b = n rep {rep}: final gap {gap} > 2·log₂ n = {small_cap:.1}"
                        ));
                    }
                }
            }
            let mean = Summary::from_values(gaps).mean();
            mean_gap.push(mean);
            meas.notes
                .push(format!("b = {mult}n: mean final gap {mean:.2}"));
        }
        // Monotone growth with batch size (the trade-off E15 reproduces);
        // half-ball slack absorbs replication noise.
        for w in mean_gap.windows(2) {
            if w[1] < w[0] - 0.5 {
                meas.fail(format!(
                    "gap decreased with batch size: {:.2} -> {:.2}",
                    w[0], w[1]
                ));
            }
        }
        meas.finish(
            self,
            format!("gap(b=n) ≤ {small_cap:.1}; mean gap non-decreasing in b"),
            "final gap (b = n)",
        )
    }
}

// ---------------------------------------------------------------------------
// E24: (k,d)-choice max load sits inside the Park window.
// ---------------------------------------------------------------------------

/// Park's (k,d)-choice: every ball lands `k` replicas, loads conserve to
/// `k·m`, and the max load stays within `k·m/n + ln ln n / ln(d/k) + O(1)`
/// while the run terminates in `O(log log n)`-style round counts.
pub(crate) struct E24KdLoad;

/// Rounds any clean (k,d)-choice run may take at oracle sizes. Clean runs
/// finish well before probe escalation saturates; a faulted engine (the
/// miswire negative control) blows through this long before the round
/// budget errors out.
const KD_ROUNDS_CAP: u32 = 48;

impl Claim for E24KdLoad {
    fn id(&self) -> &'static str {
        "e24-kd-load"
    }
    fn experiment(&self) -> &'static str {
        "e24"
    }
    fn title(&self) -> &'static str {
        "(k,d)-choice: k·m conservation, max load within the Park window k·m/n + lnln n/ln(d/k)"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let n: u32 = match opts.scale {
            VerifyScale::Ci => 1 << 10,
            VerifyScale::Full => 1 << 12,
        };
        let grid: &[(u32, u32)] = match opts.scale {
            VerifyScale::Ci => &[(2, 4), (3, 6)],
            VerifyScale::Full => &[(2, 4), (2, 6), (3, 6), (4, 8)],
        };
        let m = 4 * n as u64;
        let s = spec(m, n);
        let mut meas = Measurement::new();
        for (i, &(k, d)) in grid.iter().enumerate() {
            let window = park_window(n, k, d);
            let target = (k as u64 * m).div_ceil(n as u64);
            let mut gaps = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 2400 + (i * 64 + rep) as u64;
                match run_one(
                    KdChoice::with_params(s, k, d),
                    s,
                    seed,
                    opts,
                    MessageTracking::Totals,
                ) {
                    Ok(out) => {
                        let total: u64 = out.loads.iter().map(|&l| l as u64).sum();
                        if total != k as u64 * m {
                            meas.fail(format!(
                                "(k,d)=({k},{d}) rep {rep}: loads sum to {total}, want k·m = {}",
                                k as u64 * m
                            ));
                        }
                        if !out.is_complete() {
                            meas.fail(format!(
                                "(k,d)=({k},{d}) rep {rep}: {} balls unallocated",
                                out.unallocated
                            ));
                        }
                        let gap = out.gap();
                        gaps.push(gap as f64);
                        if gap > window + 2 {
                            meas.fail(format!(
                                "(k,d)=({k},{d}) rep {rep}: gap {gap} > window {window} + 2"
                            ));
                        }
                        if out.rounds > KD_ROUNDS_CAP {
                            meas.fail(format!(
                                "(k,d)=({k},{d}) rep {rep}: {} rounds > {KD_ROUNDS_CAP}",
                                out.rounds
                            ));
                        }
                        if (k, d) == *grid.last().unwrap() {
                            meas.stats.push(gap as f64);
                        }
                    }
                    Err(e) => meas.fail(format!("(k,d)=({k},{d}) rep {rep}: run failed: {e}")),
                }
            }
            if !gaps.is_empty() {
                meas.notes.push(format!(
                    "(k,d)=({k},{d}): target ⌈k·m/n⌉ = {target}, window {window}, mean gap {:.2}",
                    Summary::from_values(gaps).mean()
                ));
            }
        }
        meas.finish(
            self,
            format!("Σ loads = k·m; gap ≤ ⌈lnln n/ln(d/k)⌉ + 2; rounds ≤ {KD_ROUNDS_CAP}"),
            "gap (last grid point)",
        )
    }
}

// ---------------------------------------------------------------------------
// E25: estimated-average retries are expected-constant.
// ---------------------------------------------------------------------------

/// Like [`run_one`] but with the per-round trace recorded — the retry
/// statistic is `Σ_r active_before / m − 1`, which needs round records.
fn run_traced<P: RoundProtocol>(
    protocol: P,
    spec: ProblemSpec,
    seed: u64,
    opts: &VerifyOptions,
) -> Result<RunOutcome> {
    let mut cfg = RunConfig::seeded(seed)
        .with_validation(true)
        .with_trace(true)
        .with_tracking(MessageTracking::Totals);
    if let Some(plan) = opts.miswire {
        cfg = cfg.with_faults(plan);
    }
    Simulator::new(spec, cfg).run(protocol)
}

/// Estimated-average retry loop: completed runs are perfectly balanced
/// (`max = ⌈m/n⌉` exactly) and the mean retry count per ball is a small
/// constant that does not grow with `n`.
pub(crate) struct E25Retries;

/// Mean retries per ball any clean run may incur. The sample-mean gate
/// rejects roughly half of above-average candidates, so the clean mean
/// sits near 1; growth past this cap means the retry loop degenerated.
const RETRY_MEAN_CAP: f64 = 3.0;

/// Allowed drift of mean retries from the smallest to the largest `n` —
/// the "expected-constant, flat in n" part of the claim.
const RETRY_FLATNESS_SLACK: f64 = 1.0;

impl Claim for E25Retries {
    fn id(&self) -> &'static str {
        "e25-retries"
    }
    fn experiment(&self) -> &'static str {
        "e25"
    }
    fn title(&self) -> &'static str {
        "estimated-average: perfect ⌈m/n⌉ balance with expected-constant retries, flat in n"
    }

    fn check(&self, opts: &VerifyOptions) -> ClaimReport {
        let ns: &[u32] = match opts.scale {
            VerifyScale::Ci => &[1 << 9, 1 << 11],
            VerifyScale::Full => &[1 << 9, 1 << 11, 1 << 13],
        };
        let mut meas = Measurement::new();
        let mut mean_by_n = Vec::new();
        for (i, &n) in ns.iter().enumerate() {
            let m = 4 * n as u64;
            let s = spec(m, n);
            let mut retries_seen = Vec::new();
            for rep in 0..opts.scale.reps() {
                let seed = SEED_SALT + 2500 + (i * 64 + rep) as u64;
                match run_traced(EstimatedAverage::new(s), s, seed, opts) {
                    Ok(out) => {
                        if !out.is_complete() {
                            meas.fail(format!(
                                "n = {n} rep {rep}: {} balls unallocated",
                                out.unallocated
                            ));
                            continue;
                        }
                        if out.max_load() != s.ceil_avg() {
                            meas.fail(format!(
                                "n = {n} rep {rep}: max load {} ≠ ⌈m/n⌉ = {}",
                                out.max_load(),
                                s.ceil_avg()
                            ));
                        }
                        let trace = out.trace.as_ref().expect("trace requested");
                        let probed: u64 = trace.records().iter().map(|r| r.active_before).sum();
                        let retries = probed as f64 / m as f64 - 1.0;
                        retries_seen.push(retries);
                        if retries > RETRY_MEAN_CAP {
                            meas.fail(format!(
                                "n = {n} rep {rep}: mean retries {retries:.2} > {RETRY_MEAN_CAP}"
                            ));
                        }
                        if n == *ns.last().unwrap() {
                            meas.stats.push(retries);
                        }
                    }
                    Err(e) => meas.fail(format!("n = {n} rep {rep}: run failed: {e}")),
                }
            }
            if !retries_seen.is_empty() {
                let mean = Summary::from_values(retries_seen).mean();
                mean_by_n.push(mean);
                meas.notes
                    .push(format!("n = {n}: mean retries/ball {mean:.3}"));
            }
        }
        // Flatness: the retry constant must not grow with n.
        if let (Some(first), Some(last)) = (mean_by_n.first(), mean_by_n.last()) {
            if *last > *first + RETRY_FLATNESS_SLACK {
                meas.fail(format!(
                    "mean retries grew with n: {first:.3} -> {last:.3} (slack {RETRY_FLATNESS_SLACK})"
                ));
            }
        } else {
            meas.fail("no retry measurements collected".to_string());
        }
        meas.finish(
            self,
            format!(
                "max = ⌈m/n⌉ exactly; mean retries ≤ {RETRY_MEAN_CAP}, drift ≤ {RETRY_FLATNESS_SLACK}"
            ),
            "retries/ball (largest n)",
        )
    }
}
