//! # `pba-conformance` — statistical conformance oracles
//!
//! The experiment harness (`pba-runner`) *reports* what the protocols do;
//! this crate *judges* it. Each [`Claim`] turns one quantitative claim of
//! the source papers — max-load ≤ c for the collision protocol, gap
//! `O(m/n)` growth for the heavily-loaded family, `≤ r` rounds for
//! r-round GREEDY, `O(1)` messages per ball, stream-gap growth with batch
//! size — into an automated pass/fail oracle:
//!
//! * the **bound** is a function of `(m, n)` with tolerance derived from
//!   the analysis toolkit (Chernoff tails, exact binomial quantiles, the
//!   DKW inequality for KS distances) rather than hand-tuned constants;
//! * the **measurement** is a set of seeded replicated runs with the
//!   in-engine invariant checker armed
//!   ([`RunConfig::with_validation`][pba_core::RunConfig::with_validation]),
//!   summarized with a 95% confidence interval;
//! * the **verdict** is [`Verdict::Confirmed`] only when every replicate
//!   satisfies the bound — any engine error (round-budget exhaustion,
//!   invariant violation) refutes the claim outright.
//!
//! Oracles run at two scales: [`VerifyScale::Ci`] keeps `n ≤ 4096` and a
//! handful of replicates so the whole registry finishes in seconds;
//! [`VerifyScale::Full`] quadruples sizes and doubles replicates.
//! `pba-run verify` renders the registry as a paper-style verdict table
//! and exits nonzero on any refutation, so a miswired engine (or a
//! deliberately injected fault plan, via [`VerifyOptions::miswire`])
//! flips CI red.

mod oracles;

use pba_core::FaultPlan;

/// Outcome of one claim oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every replicate satisfied the bound.
    Confirmed,
    /// At least one replicate broke the bound (or errored).
    Refuted,
}

impl Verdict {
    /// Render as the EXPERIMENTS.md verdict vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Confirmed => "CONFIRMED",
            Verdict::Refuted => "REFUTED",
        }
    }
}

/// The sizes and replication depth an oracle runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyScale {
    /// CI scale: `n ≤ 4096`, a few seconds for the whole registry.
    Ci,
    /// Full scale: larger instances, more replicates.
    Full,
}

impl VerifyScale {
    /// Parse `"ci"` / `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Some(VerifyScale::Ci),
            "full" => Some(VerifyScale::Full),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyScale::Ci => "ci",
            VerifyScale::Full => "full",
        }
    }

    /// Seeded replicates per measurement point.
    pub fn reps(self) -> usize {
        match self {
            VerifyScale::Ci => 8,
            VerifyScale::Full => 16,
        }
    }
}

/// Options shared by every oracle run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Scale preset.
    pub scale: VerifyScale,
    /// Deliberate fault injection ("miswiring"): the plan is armed on
    /// every oracle run, so a correctly refuting registry is itself
    /// testable — this is the negative-control knob behind
    /// `pba-run verify --faults`.
    pub miswire: Option<FaultPlan>,
}

impl VerifyOptions {
    /// Clean options at `scale` (no miswiring).
    pub fn at(scale: VerifyScale) -> Self {
        Self {
            scale,
            miswire: None,
        }
    }
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self::at(VerifyScale::Ci)
    }
}

/// The result of checking one claim.
#[derive(Debug, Clone)]
pub struct ClaimReport {
    /// Oracle id (e.g. `"e07-load"`).
    pub id: &'static str,
    /// Experiment family the claim guards (e.g. `"e07"`).
    pub experiment: &'static str,
    /// One-line statement of the claim.
    pub title: &'static str,
    /// The bound checked, rendered with its derived tolerance.
    pub bound: String,
    /// The headline measurement, rendered.
    pub observed: String,
    /// Mean of the headline statistic over replicates.
    pub mean: f64,
    /// 95% confidence interval on the mean.
    pub ci: (f64, f64),
    /// The verdict.
    pub verdict: Verdict,
    /// Extra context lines (per-size observations, fit diagnostics).
    pub notes: Vec<String>,
}

impl ClaimReport {
    /// True when the claim held on every replicate.
    pub fn confirmed(&self) -> bool {
        self.verdict == Verdict::Confirmed
    }

    /// The confidence interval rendered as `[lo, hi]`.
    pub fn ci_string(&self) -> String {
        format!("[{:.3}, {:.3}]", self.ci.0, self.ci.1)
    }
}

/// One paper claim turned into an automated statistical oracle.
pub trait Claim {
    /// Stable oracle id, lowercase (e.g. `"e07-load"`).
    fn id(&self) -> &'static str;
    /// Experiment family guarded (e.g. `"e07"`).
    fn experiment(&self) -> &'static str;
    /// One-line statement of the claim.
    fn title(&self) -> &'static str;
    /// Run the measurement and judge it.
    fn check(&self, opts: &VerifyOptions) -> ClaimReport;
}

/// Every registered oracle, in experiment order.
pub fn all_claims() -> Vec<Box<dyn Claim>> {
    vec![
        Box::new(oracles::E01BinomialKs),
        Box::new(oracles::E01MaxLoad),
        Box::new(oracles::E03Gap),
        Box::new(oracles::E07CollisionLoad),
        Box::new(oracles::E08LoadLinear),
        Box::new(oracles::E09GreedyRounds),
        Box::new(oracles::E10MessageBudget),
        Box::new(oracles::E15StreamGap),
        Box::new(oracles::E24KdLoad),
        Box::new(oracles::E25Retries),
    ]
}

/// The registered oracle ids, in registry order.
pub fn claim_ids() -> Vec<&'static str> {
    all_claims().iter().map(|c| c.id()).collect()
}

/// Look up an oracle by id (case-insensitive).
pub fn claim_by_id(id: &str) -> Option<Box<dyn Claim>> {
    let id = id.to_ascii_lowercase();
    all_claims().into_iter().find(|c| c.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated_and_ids_are_unique() {
        let ids = claim_ids();
        assert!(ids.len() >= 10, "need ≥ 10 oracles, have {}", ids.len());
        assert!(ids.contains(&"e24-kd-load"), "new-family oracle missing");
        assert!(ids.contains(&"e25-retries"), "new-family oracle missing");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate oracle ids");
        for id in &ids {
            assert_eq!(*id, id.to_ascii_lowercase(), "ids are lowercase");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(claim_by_id("E07-LOAD").is_some());
        assert!(claim_by_id("no-such-claim").is_none());
    }

    #[test]
    fn scale_parses() {
        assert_eq!(VerifyScale::parse("ci"), Some(VerifyScale::Ci));
        assert_eq!(VerifyScale::parse("FULL"), Some(VerifyScale::Full));
        assert_eq!(VerifyScale::parse("huge"), None);
        assert!(VerifyScale::Full.reps() > VerifyScale::Ci.reps());
    }
}
