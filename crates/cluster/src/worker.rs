//! The shard worker: one process (or thread) owning a contiguous bin
//! range, answering the orchestrator's waves.
//!
//! The worker is the *bin side* of the papers' model: it sees only its
//! own bins' arrival counts, decides grants with the protocol's
//! `bin_grant` (via [`pba_core::exec::grant_slice`], the same kernel the
//! in-process engine runs), and follows committed state the orchestrator
//! sends back. It holds a full protocol replica and applies
//! `begin_round`/`after_round` in simulator order, so threshold schedules
//! and phase machines evolve bit-identically to the orchestrator's copy.
//!
//! Errors are fail-fast: any malformed or out-of-order frame gets an
//! `error` frame in reply and the worker exits nonzero (its caller maps
//! `Err` to a nonzero process exit).
//!
//! The worker never needs to be told which codec the orchestrator
//! speaks: every read sniffs the frame's lead byte (binary messages
//! start with `0xB5`, JSON lines with `{`), and replies are pinned to
//! the codec the `hello` frame arrived in.

use std::io::{BufRead, BufReader, Write};
#[cfg(unix)]
use std::os::unix::net::UnixListener;

use pba_core::exec::grant_slice;
use pba_core::protocol::RoundContext;
use pba_core::rng::{Rand64, SplitMix64};
use pba_core::{ProblemSpec, RoundProtocol};
use pba_protocols::{visit_protocol, ProtocolVisitor};

use crate::transport::is_unix_addr;
use crate::wire::{read_frame as sniff_frame, Frame, Hello, WireFormat};

/// Serve one orchestrator connection until `shutdown` (or an error).
///
/// On error the detail has already been written to `writer` as an
/// `error` frame (best effort); the caller should exit nonzero.
pub fn serve(mut reader: impl BufRead, mut writer: impl Write) -> Result<(), String> {
    // Until a frame arrives, error replies use the JSON compat codec —
    // garbage input is more likely to come from something line-shaped.
    let mut wire = WireFormat::Json;
    let hello = match read_frame(&mut reader) {
        Ok((Frame::Hello(h), f)) => {
            wire = f;
            h
        }
        Ok((other, f)) => {
            return fail(
                &mut writer,
                f,
                format!("expected hello, got {}", other.tag()),
            )
        }
        Err(e) => return fail(&mut writer, wire, e),
    };
    if hello.lo > hello.hi || hello.hi > hello.n {
        return fail(
            &mut writer,
            wire,
            format!(
                "bad shard range [{}, {}) of {}",
                hello.lo, hello.hi, hello.n
            ),
        );
    }
    let outcome = match hello.mode.as_str() {
        "engine" => {
            let spec = match ProblemSpec::new(hello.m, hello.n) {
                Ok(s) => s,
                Err(e) => return fail(&mut writer, wire, format!("bad spec: {e}")),
            };
            let v = EngineWorker {
                reader: &mut reader,
                writer: &mut writer,
                hello: &hello,
                spec,
                wire,
            };
            match visit_protocol(&hello.workload, spec, v) {
                Some(r) => r,
                None => Err(format!("unknown protocol '{}'", hello.workload)),
            }
        }
        "stream" => serve_stream(&mut reader, &mut writer, &hello, wire),
        other => Err(format!("unknown mode '{other}'")),
    };
    match outcome {
        Ok(()) => Ok(()),
        Err(e) => fail(&mut writer, wire, e),
    }
}

/// Serve stdin/stdout — the body of `pba-run shard-worker`.
pub fn serve_stdio() -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(stdin.lock(), stdout.lock())
}

/// Bind `addr` (a Unix-domain socket path, or `host:port` TCP), accept
/// one orchestrator connection, and serve it — the body of `pba-run
/// shard-worker --listen ADDR`.
pub fn serve_listen(addr: &str) -> Result<(), String> {
    if is_unix_addr(addr) {
        #[cfg(unix)]
        {
            let listener = UnixListener::bind(addr)
                .map_err(|e| format!("bind unix socket {addr} failed: {e}"))?;
            let (stream, _) = listener
                .accept()
                .map_err(|e| format!("accept on {addr} failed: {e}"))?;
            // The connection outlives the name; unlink now so a crashed
            // worker can't leave a stale socket behind.
            let _ = std::fs::remove_file(addr);
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("socket clone failed: {e}"))?,
            );
            serve(reader, stream)
        }
        #[cfg(not(unix))]
        {
            Err(format!(
                "cannot listen on {addr}: unix-domain sockets are not available on this platform"
            ))
        }
    } else {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("bind tcp {addr} failed: {e}"))?;
        let (stream, _) = listener
            .accept()
            .map_err(|e| format!("accept on {addr} failed: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("socket clone failed: {e}"))?,
        );
        serve(reader, stream)
    }
}

fn fail(writer: &mut impl Write, wire: WireFormat, detail: String) -> Result<(), String> {
    let frame = Frame::Error {
        detail: detail.clone(),
    };
    let _ = writer.write_all(&frame.encode_wire(wire));
    let _ = writer.flush();
    Err(detail)
}

fn read_frame(reader: &mut impl BufRead) -> Result<(Frame, WireFormat), String> {
    match sniff_frame(reader)? {
        Some((frame, _, format)) => Ok((frame, format)),
        None => Err("orchestrator closed the pipe (EOF)".into()),
    }
}

fn send_frame(writer: &mut impl Write, frame: &Frame, wire: WireFormat) -> Result<(), String> {
    writer
        .write_all(&frame.encode_wire(wire))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))
}

/// Delay-only chaos: straggle this barrier with the hello's probability,
/// drawn from a counter stream in `(fault_seed, shard, barrier)` so the
/// schedule replays. Sleeping changes nothing but wall time — replies
/// arrive late, never different.
fn maybe_straggle(hello: &Hello, barrier: u64) {
    if hello.straggle_prob <= 0.0 || hello.straggle_us == 0 {
        return;
    }
    let key = hello
        .fault_seed
        .wrapping_add(u64::from(hello.shard) << 32)
        .wrapping_add(barrier.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    let mut rng = SplitMix64::new(SplitMix64::mix(key));
    if rng.bernoulli(hello.straggle_prob) {
        std::thread::sleep(std::time::Duration::from_micros(hello.straggle_us));
    }
}

/// Engine-mode worker loop, generic over the concrete protocol the
/// registry constructs ([`visit_protocol`]'s visitor).
struct EngineWorker<'a, R, W> {
    reader: &'a mut R,
    writer: &'a mut W,
    hello: &'a Hello,
    spec: ProblemSpec,
    wire: WireFormat,
}

impl<R: BufRead, W: Write> ProtocolVisitor for EngineWorker<'_, R, W> {
    type Output = Result<(), String>;

    fn visit<P: RoundProtocol + 'static>(self, mut protocol: P) -> Self::Output {
        let EngineWorker {
            reader,
            writer,
            hello,
            spec,
            wire,
        } = self;
        let len = (hello.hi - hello.lo) as usize;
        let lo = hello.lo;
        let mut loads = vec![0u32; len];
        let mut counts = vec![0u32; len];
        let mut accept = vec![0u32; len];
        // Context of the round whose grants we answered last; `commit`
        // replays `after_round` against it.
        let mut open_round: Option<RoundContext> = None;
        send_frame(writer, &Frame::Ready { shard: hello.shard }, wire)?;
        loop {
            match read_frame(reader)?.0 {
                Frame::Grants {
                    round,
                    active,
                    placed,
                    counts: pairs,
                    crashed,
                } => {
                    let ctx = RoundContext {
                        spec,
                        round,
                        active,
                        placed,
                        seed: hello.seed,
                    };
                    protocol.begin_round(&ctx);
                    counts.fill(0);
                    for &(bin, c) in &pairs {
                        let Some(i) = in_range(bin, lo, len) else {
                            return Err(format!("arrival bin {bin} outside shard range"));
                        };
                        counts[i] = u32::try_from(c)
                            .map_err(|_| format!("arrival count for bin {bin} exceeds u32"))?;
                    }
                    maybe_straggle(hello, u64::from(round));
                    let (underloaded, unfilled) =
                        grant_slice(&protocol, &ctx, lo, &counts, &loads, &crashed, &mut accept);
                    let accept_pairs: Vec<(u32, u64)> = accept
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a > 0)
                        .map(|(i, &a)| (lo + i as u32, u64::from(a)))
                        .collect();
                    open_round = Some(ctx);
                    send_frame(
                        writer,
                        &Frame::GrantsOk {
                            round,
                            accept: accept_pairs,
                            underloaded,
                            unfilled,
                        },
                        wire,
                    )?;
                }
                Frame::Commit {
                    round,
                    loads: pairs,
                    record,
                } => {
                    let ctx = open_round
                        .take()
                        .ok_or_else(|| format!("commit for round {round} with no open round"))?;
                    if ctx.round != round {
                        return Err(format!(
                            "commit round {round} does not match open round {}",
                            ctx.round
                        ));
                    }
                    for &(bin, load) in &pairs {
                        let Some(i) = in_range(bin, lo, len) else {
                            return Err(format!("committed bin {bin} outside shard range"));
                        };
                        loads[i] = u32::try_from(load)
                            .map_err(|_| format!("load for bin {bin} exceeds u32"))?;
                    }
                    // The replica evolves exactly when the simulator's
                    // copy does; the returned Flow is the orchestrator's
                    // decision to make.
                    let _ = protocol.after_round(&ctx, &record);
                    let sum: u64 = loads.iter().map(|&l| u64::from(l)).sum();
                    send_frame(writer, &Frame::CommitOk { round, sum }, wire)?;
                }
                Frame::Drain => {
                    let dense: Vec<u64> = loads.iter().map(|&l| u64::from(l)).collect();
                    send_frame(writer, &Frame::Loads { loads: dense }, wire)?;
                }
                Frame::Shutdown => {
                    send_frame(writer, &Frame::Bye { shard: hello.shard }, wire)?;
                    return Ok(());
                }
                other => {
                    return Err(format!("unexpected {} frame in engine mode", other.tag()));
                }
            }
        }
    }
}

/// Stream-mode loop: the worker is pure bin state — it applies absolute
/// load updates for its range and answers with verification totals.
fn serve_stream(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    hello: &Hello,
    wire: WireFormat,
) -> Result<(), String> {
    let len = (hello.hi - hello.lo) as usize;
    let lo = hello.lo;
    let mut loads = vec![0u64; len];
    send_frame(writer, &Frame::Ready { shard: hello.shard }, wire)?;
    loop {
        match read_frame(reader)?.0 {
            Frame::Delta {
                batch,
                loads: pairs,
            } => {
                for &(bin, load) in &pairs {
                    let Some(i) = in_range(bin, lo, len) else {
                        return Err(format!("delta bin {bin} outside shard range"));
                    };
                    loads[i] = load;
                }
                maybe_straggle(hello, batch);
                let total: u64 = loads.iter().sum();
                let max: u64 = loads.iter().copied().max().unwrap_or(0);
                send_frame(writer, &Frame::DeltaOk { batch, total, max }, wire)?;
            }
            Frame::Drain => {
                send_frame(
                    writer,
                    &Frame::Loads {
                        loads: loads.clone(),
                    },
                    wire,
                )?;
            }
            Frame::Shutdown => {
                send_frame(writer, &Frame::Bye { shard: hello.shard }, wire)?;
                return Ok(());
            }
            other => {
                return Err(format!("unexpected {} frame in stream mode", other.tag()));
            }
        }
    }
}

/// Shard-relative index of `bin`, or `None` when outside `[lo, lo+len)`.
fn in_range(bin: u32, lo: u32, len: usize) -> Option<usize> {
    bin.checked_sub(lo).map(|d| d as usize).filter(|&i| i < len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn run_lines(lines: &[String]) -> (Result<(), String>, Vec<Frame>) {
        let input = lines.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let r = serve(BufReader::new(input.as_bytes()), &mut out);
        let frames = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Frame::decode(l).unwrap())
            .collect();
        (r, frames)
    }

    fn hello(mode: &str) -> Hello {
        Hello {
            mode: mode.into(),
            shard: 0,
            shards: 1,
            lo: 0,
            hi: 8,
            n: 8,
            m: 64,
            seed: 5,
            workload: if mode == "engine" {
                "single-choice".into()
            } else {
                "one-choice".into()
            },
            straggle_prob: 0.0,
            straggle_us: 0,
            fault_seed: 0,
        }
    }

    #[test]
    fn garbage_first_frame_yields_error_and_err() {
        let (r, frames) = run_lines(&["this is not a frame".into()]);
        assert!(r.is_err());
        assert!(matches!(&frames[..], [Frame::Error { detail }]
            if detail.contains("malformed")));
    }

    #[test]
    fn stream_worker_applies_deltas_and_drains() {
        let lines = vec![
            Frame::Hello(hello("stream")).encode(),
            Frame::Delta {
                batch: 0,
                loads: vec![(1, 5), (7, 2)],
            }
            .encode(),
            Frame::Drain.encode(),
            Frame::Shutdown.encode(),
        ];
        let (r, frames) = run_lines(&lines);
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(frames[0], Frame::Ready { shard: 0 });
        assert_eq!(
            frames[1],
            Frame::DeltaOk {
                batch: 0,
                total: 7,
                max: 5
            }
        );
        assert_eq!(
            frames[2],
            Frame::Loads {
                loads: vec![0, 5, 0, 0, 0, 0, 0, 2]
            }
        );
        assert_eq!(frames[3], Frame::Bye { shard: 0 });
    }

    #[test]
    fn engine_worker_rejects_out_of_range_bins() {
        let mut h = hello("engine");
        h.hi = 4; // shard owns [0, 4) of 8 bins
        let lines = vec![
            Frame::Hello(h).encode(),
            Frame::Grants {
                round: 0,
                active: 64,
                placed: 0,
                counts: vec![(6, 3)],
                crashed: vec![],
            }
            .encode(),
        ];
        let (r, frames) = run_lines(&lines);
        assert!(r.unwrap_err().contains("outside shard range"));
        assert!(matches!(frames.last(), Some(Frame::Error { .. })));
    }

    #[test]
    fn unknown_protocol_is_an_error_frame() {
        let mut h = hello("engine");
        h.workload = "nope".into();
        let (r, frames) = run_lines(&[Frame::Hello(h).encode()]);
        assert!(r.unwrap_err().contains("unknown protocol"));
        assert!(matches!(&frames[..], [Frame::Error { .. }]));
    }
}
