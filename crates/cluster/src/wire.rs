//! The cluster wire protocol: framed, line-delimited JSON.
//!
//! Every frame is **one JSON object on one line**, terminated by `\n`,
//! with a `"t"` key naming the frame type. Both sides use the hand-rolled
//! codec in [`pba_core::json`] — no external dependencies, and the same
//! encoder that writes the JSONL traces.
//!
//! ## Conversation (engine mode)
//!
//! ```text
//! orchestrator → worker   hello      mode, shard, range, spec, seed, …
//! worker → orchestrator   ready
//! per round:
//!   o → w   grants        round, active, placed, sparse arrival counts,
//!                         crashed bins in range
//!   w → o   grants_ok     sparse accepts, (underloaded, unfilled) totals
//!   o → w   commit        changed loads, the finished round record
//!   w → o   commit_ok     checksum (sum of the shard's loads)
//! teardown:
//!   o → w   drain         → loads (dense shard range, verification)
//!   o → w   shutdown      → bye
//! ```
//!
//! Stream mode replaces the grants/commit waves with one `delta` /
//! `delta_ok` exchange per batch (absolute loads for changed bins; the
//! reply carries the shard's total and max for verification).
//!
//! ## Precision
//!
//! Plain numeric fields ride as JSON numbers and are exact up to `2^53`
//! (the codec's documented wire limit — counts, loads, and rounds are far
//! below it). Seeds are full-width `u64` with no such guarantee, so the
//! `hello` frame carries them as **decimal strings**.
//!
//! A malformed line is a protocol error: the worker answers with an
//! `error` frame and exits nonzero; the orchestrator surfaces
//! [`CoreError::ClusterTransport`](pba_core::CoreError).

use pba_core::json::{parse, u64_array, Json, JsonObject};
use pba_core::{MessageStats, RoundRecord};

/// Everything the worker needs to set up its shard, sent first.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// `"engine"` or `"stream"`.
    pub mode: String,
    /// This worker's shard index.
    pub shard: u32,
    /// Total shard count.
    pub shards: u32,
    /// First owned bin (inclusive).
    pub lo: u32,
    /// One past the last owned bin.
    pub hi: u32,
    /// Total bins in the run.
    pub n: u32,
    /// Total balls (engine mode; 0 for stream).
    pub m: u64,
    /// Run seed (exact — strings on the wire).
    pub seed: u64,
    /// Protocol name (engine) or policy name (stream).
    pub workload: String,
    /// Per-barrier straggle probability (0 disables; delay-only chaos).
    pub straggle_prob: f64,
    /// Sleep in microseconds when a barrier straggles.
    pub straggle_us: u64,
    /// Seed of the straggle stream (exact — strings on the wire).
    pub fault_seed: u64,
}

/// One wire frame. See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Orchestrator → worker: session setup.
    Hello(Hello),
    /// Worker → orchestrator: setup done.
    Ready {
        /// Echoed shard index.
        shard: u32,
    },
    /// Orchestrator → worker: one round's request wave.
    Grants {
        /// Round index.
        round: u32,
        /// Active balls at round start.
        active: u64,
        /// Balls placed before this round.
        placed: u64,
        /// Sparse `(global bin, arrivals)` pairs within the shard range.
        counts: Vec<(u32, u64)>,
        /// Run-level crashed bins within the shard range.
        crashed: Vec<u32>,
    },
    /// Worker → orchestrator: the shard's grant decisions.
    GrantsOk {
        /// Echoed round index.
        round: u32,
        /// Sparse `(global bin, accept)` pairs (only nonzero accepts).
        accept: Vec<(u32, u64)>,
        /// Underloaded-bin count for this shard (crash-adjusted).
        underloaded: u32,
        /// Unfilled want for this shard (crash-adjusted).
        unfilled: u64,
    },
    /// Orchestrator → worker: the resolved round.
    Commit {
        /// Round index.
        round: u32,
        /// Absolute `(global bin, load)` pairs for bins that changed.
        loads: Vec<(u32, u64)>,
        /// The finished round record (drives `after_round` replicas).
        record: RoundRecord,
    },
    /// Worker → orchestrator: commit applied.
    CommitOk {
        /// Echoed round index.
        round: u32,
        /// Sum of the shard's post-commit loads (verification).
        sum: u64,
    },
    /// Orchestrator → worker: one stream batch's load changes.
    Delta {
        /// Batch sequence number.
        batch: u64,
        /// Absolute `(global bin, load)` pairs for bins that changed.
        loads: Vec<(u32, u64)>,
    },
    /// Worker → orchestrator: batch applied.
    DeltaOk {
        /// Echoed batch sequence number.
        batch: u64,
        /// Sum of the shard's loads (verification).
        total: u64,
        /// Max of the shard's loads (verification).
        max: u64,
    },
    /// Orchestrator → worker: report your full load range.
    Drain,
    /// Worker → orchestrator: dense loads for `[lo, hi)`.
    Loads {
        /// The shard's dense load vector.
        loads: Vec<u64>,
    },
    /// Orchestrator → worker: clean exit.
    Shutdown,
    /// Worker → orchestrator: exiting.
    Bye {
        /// Echoed shard index.
        shard: u32,
    },
    /// Worker → orchestrator: protocol failure (worker exits after).
    Error {
        /// What went wrong.
        detail: String,
    },
}

/// Flatten `(k, v)` pairs as `[k, v, k, v, …]`.
fn pairs_array(pairs: &[(u32, u64)]) -> String {
    let flat: Vec<u64> = pairs.iter().flat_map(|&(k, v)| [u64::from(k), v]).collect();
    u64_array(&flat)
}

/// Flatten a `u32` list through the shared `u64_array` helper.
fn u32_array(values: &[u32]) -> String {
    let wide: Vec<u64> = values.iter().map(|&v| u64::from(v)).collect();
    u64_array(&wide)
}

impl Frame {
    /// Encode as a single JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Frame::Hello(h) => JsonObject::new()
                .str("t", "hello")
                .str("mode", &h.mode)
                .u64("shard", u64::from(h.shard))
                .u64("shards", u64::from(h.shards))
                .u64("lo", u64::from(h.lo))
                .u64("hi", u64::from(h.hi))
                .u64("n", u64::from(h.n))
                .u64("m", h.m)
                .str("seed", &h.seed.to_string())
                .str("workload", &h.workload)
                .f64("straggle_prob", h.straggle_prob)
                .u64("straggle_us", h.straggle_us)
                .str("fault_seed", &h.fault_seed.to_string())
                .finish(),
            Frame::Ready { shard } => JsonObject::new()
                .str("t", "ready")
                .u64("shard", u64::from(*shard))
                .finish(),
            Frame::Grants {
                round,
                active,
                placed,
                counts,
                crashed,
            } => JsonObject::new()
                .str("t", "grants")
                .u64("round", u64::from(*round))
                .u64("active", *active)
                .u64("placed", *placed)
                .raw("counts", &pairs_array(counts))
                .raw("crashed", &u32_array(crashed))
                .finish(),
            Frame::GrantsOk {
                round,
                accept,
                underloaded,
                unfilled,
            } => JsonObject::new()
                .str("t", "grants_ok")
                .u64("round", u64::from(*round))
                .raw("accept", &pairs_array(accept))
                .u64("underloaded", u64::from(*underloaded))
                .u64("unfilled", *unfilled)
                .finish(),
            Frame::Commit {
                round,
                loads,
                record,
            } => JsonObject::new()
                .str("t", "commit")
                .u64("round", u64::from(*round))
                .raw("loads", &pairs_array(loads))
                .raw("record", &encode_record(record))
                .finish(),
            Frame::CommitOk { round, sum } => JsonObject::new()
                .str("t", "commit_ok")
                .u64("round", u64::from(*round))
                .u64("sum", *sum)
                .finish(),
            Frame::Delta { batch, loads } => JsonObject::new()
                .str("t", "delta")
                .u64("batch", *batch)
                .raw("loads", &pairs_array(loads))
                .finish(),
            Frame::DeltaOk { batch, total, max } => JsonObject::new()
                .str("t", "delta_ok")
                .u64("batch", *batch)
                .u64("total", *total)
                .u64("max", *max)
                .finish(),
            Frame::Drain => JsonObject::new().str("t", "drain").finish(),
            Frame::Loads { loads } => JsonObject::new()
                .str("t", "loads")
                .raw("loads", &u64_array(loads))
                .finish(),
            Frame::Shutdown => JsonObject::new().str("t", "shutdown").finish(),
            Frame::Bye { shard } => JsonObject::new()
                .str("t", "bye")
                .u64("shard", u64::from(*shard))
                .finish(),
            Frame::Error { detail } => JsonObject::new()
                .str("t", "error")
                .str("detail", detail)
                .finish(),
        }
    }

    /// Decode one line. Errors are human-readable descriptions suitable
    /// for an `error` frame or a transport error.
    pub fn decode(line: &str) -> Result<Frame, String> {
        let v = parse(line.trim_end()).map_err(|e| format!("malformed frame: {e}"))?;
        let t = req_str(&v, "t")?;
        Ok(match t.as_str() {
            "hello" => Frame::Hello(Hello {
                mode: req_str(&v, "mode")?,
                shard: req_u32(&v, "shard")?,
                shards: req_u32(&v, "shards")?,
                lo: req_u32(&v, "lo")?,
                hi: req_u32(&v, "hi")?,
                n: req_u32(&v, "n")?,
                m: req_u64(&v, "m")?,
                seed: req_u64_str(&v, "seed")?,
                workload: req_str(&v, "workload")?,
                straggle_prob: req_f64(&v, "straggle_prob")?,
                straggle_us: req_u64(&v, "straggle_us")?,
                fault_seed: req_u64_str(&v, "fault_seed")?,
            }),
            "ready" => Frame::Ready {
                shard: req_u32(&v, "shard")?,
            },
            "grants" => Frame::Grants {
                round: req_u32(&v, "round")?,
                active: req_u64(&v, "active")?,
                placed: req_u64(&v, "placed")?,
                counts: req_pairs(&v, "counts")?,
                crashed: req_u32s(&v, "crashed")?,
            },
            "grants_ok" => Frame::GrantsOk {
                round: req_u32(&v, "round")?,
                accept: req_pairs(&v, "accept")?,
                underloaded: req_u32(&v, "underloaded")?,
                unfilled: req_u64(&v, "unfilled")?,
            },
            "commit" => Frame::Commit {
                round: req_u32(&v, "round")?,
                loads: req_pairs(&v, "loads")?,
                record: decode_record(v.get("record").ok_or("missing key 'record'")?)?,
            },
            "commit_ok" => Frame::CommitOk {
                round: req_u32(&v, "round")?,
                sum: req_u64(&v, "sum")?,
            },
            "delta" => Frame::Delta {
                batch: req_u64(&v, "batch")?,
                loads: req_pairs(&v, "loads")?,
            },
            "delta_ok" => Frame::DeltaOk {
                batch: req_u64(&v, "batch")?,
                total: req_u64(&v, "total")?,
                max: req_u64(&v, "max")?,
            },
            "drain" => Frame::Drain,
            "loads" => Frame::Loads {
                loads: req_u64s(&v, "loads")?,
            },
            "shutdown" => Frame::Shutdown,
            "bye" => Frame::Bye {
                shard: req_u32(&v, "shard")?,
            },
            "error" => Frame::Error {
                detail: req_str(&v, "detail")?,
            },
            other => return Err(format!("unknown frame type '{other}'")),
        })
    }

    /// The frame-type tag, for error messages.
    pub fn tag(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "hello",
            Frame::Ready { .. } => "ready",
            Frame::Grants { .. } => "grants",
            Frame::GrantsOk { .. } => "grants_ok",
            Frame::Commit { .. } => "commit",
            Frame::CommitOk { .. } => "commit_ok",
            Frame::Delta { .. } => "delta",
            Frame::DeltaOk { .. } => "delta_ok",
            Frame::Drain => "drain",
            Frame::Loads { .. } => "loads",
            Frame::Shutdown => "shutdown",
            Frame::Bye { .. } => "bye",
            Frame::Error { .. } => "error",
        }
    }
}

/// The round record, flattened into one nested object (drives the
/// worker's `after_round` replica; every field is below the wire limit).
fn encode_record(r: &RoundRecord) -> String {
    JsonObject::new()
        .u64("round", u64::from(r.round))
        .u64("active_before", r.active_before)
        .u64("requests", r.requests)
        .u64("granted", r.granted)
        .u64("committed", r.committed)
        .u64("wasted_grants", r.wasted_grants)
        .u64("underloaded_bins", u64::from(r.underloaded_bins))
        .u64("unfilled_want", r.unfilled_want)
        .u64("max_load", u64::from(r.max_load))
        .u64("msg_requests", r.messages.requests)
        .u64("msg_responses", r.messages.responses)
        .u64("msg_commits", r.messages.commits)
        .finish()
}

fn decode_record(v: &Json) -> Result<RoundRecord, String> {
    Ok(RoundRecord {
        round: req_u32(v, "round")?,
        active_before: req_u64(v, "active_before")?,
        requests: req_u64(v, "requests")?,
        granted: req_u64(v, "granted")?,
        committed: req_u64(v, "committed")?,
        wasted_grants: req_u64(v, "wasted_grants")?,
        underloaded_bins: req_u32(v, "underloaded_bins")?,
        unfilled_want: req_u64(v, "unfilled_want")?,
        max_load: req_u32(v, "max_load")?,
        messages: MessageStats {
            requests: req_u64(v, "msg_requests")?,
            responses: req_u64(v, "msg_responses")?,
            commits: req_u64(v, "msg_commits")?,
        },
    })
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer key '{key}'"))
}

fn req_u32(v: &Json, key: &str) -> Result<u32, String> {
    let raw = req_u64(v, key)?;
    u32::try_from(raw).map_err(|_| format!("key '{key}' out of u32 range: {raw}"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric key '{key}'"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string key '{key}'"))
}

/// Full-width `u64` carried as a decimal string (seeds).
fn req_u64_str(v: &Json, key: &str) -> Result<u64, String> {
    let s = req_str(v, key)?;
    s.parse::<u64>()
        .map_err(|_| format!("key '{key}' is not a decimal u64: '{s}'"))
}

fn req_u64s(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array key '{key}'"))?
        .iter()
        .map(|e| {
            e.as_u64()
                .ok_or_else(|| format!("non-integer element in '{key}'"))
        })
        .collect()
}

fn req_u32s(v: &Json, key: &str) -> Result<Vec<u32>, String> {
    req_u64s(v, key)?
        .into_iter()
        .map(|raw| u32::try_from(raw).map_err(|_| format!("element of '{key}' out of u32 range")))
        .collect()
}

fn req_pairs(v: &Json, key: &str) -> Result<Vec<(u32, u64)>, String> {
    let flat = req_u64s(v, key)?;
    if flat.len() % 2 != 0 {
        return Err(format!("pair array '{key}' has odd length"));
    }
    flat.chunks_exact(2)
        .map(|kv| {
            let bin =
                u32::try_from(kv[0]).map_err(|_| format!("bin id in '{key}' out of u32 range"))?;
            Ok((bin, kv[1]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let line = f.encode();
        assert!(!line.contains('\n'), "frames must be single lines");
        let back = Frame::decode(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        assert_eq!(f, back);
    }

    #[test]
    fn every_frame_roundtrips() {
        roundtrip(Frame::Hello(Hello {
            mode: "engine".into(),
            shard: 1,
            shards: 4,
            lo: 16,
            hi: 32,
            n: 64,
            m: 4096,
            seed: u64::MAX,
            workload: "collision".into(),
            straggle_prob: 0.25,
            straggle_us: 500,
            fault_seed: 0x9E37_79B9_7F4A_7C15,
        }));
        roundtrip(Frame::Ready { shard: 3 });
        roundtrip(Frame::Grants {
            round: 2,
            active: 100,
            placed: 900,
            counts: vec![(17, 3), (30, 1)],
            crashed: vec![18],
        });
        roundtrip(Frame::GrantsOk {
            round: 2,
            accept: vec![(17, 2)],
            underloaded: 5,
            unfilled: 12,
        });
        roundtrip(Frame::Commit {
            round: 2,
            loads: vec![(17, 7), (30, 2)],
            record: RoundRecord {
                round: 2,
                active_before: 100,
                requests: 100,
                granted: 80,
                committed: 80,
                wasted_grants: 3,
                underloaded_bins: 5,
                unfilled_want: 12,
                max_load: 9,
                messages: MessageStats {
                    requests: 100,
                    responses: 80,
                    commits: 80,
                },
            },
        });
        roundtrip(Frame::CommitOk { round: 2, sum: 980 });
        roundtrip(Frame::Delta {
            batch: 9,
            loads: vec![(0, 5)],
        });
        roundtrip(Frame::DeltaOk {
            batch: 9,
            total: 55,
            max: 8,
        });
        roundtrip(Frame::Drain);
        roundtrip(Frame::Loads {
            loads: vec![1, 2, 3],
        });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::Bye { shard: 0 });
        roundtrip(Frame::Error {
            detail: "bad \"frame\"".into(),
        });
    }

    #[test]
    fn full_width_seeds_survive_the_wire() {
        let f = Frame::Hello(Hello {
            mode: "stream".into(),
            shard: 0,
            shards: 2,
            lo: 0,
            hi: 32,
            n: 64,
            m: 0,
            seed: 0xFFFF_FFFF_FFFF_FFFE,
            workload: "batched-two-choice".into(),
            straggle_prob: 0.0,
            straggle_us: 0,
            fault_seed: (1 << 60) + 7,
        });
        let Frame::Hello(h) = Frame::decode(&f.encode()).unwrap() else {
            panic!("wrong frame");
        };
        assert_eq!(h.seed, 0xFFFF_FFFF_FFFF_FFFE);
        assert_eq!(h.fault_seed, (1 << 60) + 7);
    }

    #[test]
    fn malformed_frames_are_described() {
        assert!(Frame::decode("not json").unwrap_err().contains("malformed"));
        assert!(Frame::decode("{\"x\":1}").unwrap_err().contains("'t'"));
        assert!(Frame::decode("{\"t\":\"warp\"}")
            .unwrap_err()
            .contains("unknown frame type"));
        assert!(Frame::decode("{\"t\":\"ready\"}")
            .unwrap_err()
            .contains("shard"));
        assert!(Frame::decode(
            "{\"t\":\"grants_ok\",\"round\":1,\"accept\":[1],\"underloaded\":0,\"unfilled\":0}"
        )
        .unwrap_err()
        .contains("odd length"));
    }
}
