//! The cluster wire protocol: one frame vocabulary, two codecs.
//!
//! ## Conversation (engine mode)
//!
//! ```text
//! orchestrator → worker   hello      mode, shard, range, spec, seed, …
//! worker → orchestrator   ready
//! per round:
//!   o → w   grants        round, active, placed, sparse arrival counts,
//!                         crashed bins in range
//!   w → o   grants_ok     sparse accepts, (underloaded, unfilled) totals
//!   o → w   commit        changed loads, the finished round record
//!   w → o   commit_ok     checksum (sum of the shard's loads)
//! teardown:
//!   o → w   drain         → loads (dense shard range, verification)
//!   o → w   shutdown      → bye
//! ```
//!
//! Stream mode replaces the grants/commit waves with one `delta` /
//! `delta_ok` exchange per batch (absolute loads for changed bins; the
//! reply carries the shard's total and max for verification).
//!
//! ## Codecs
//!
//! The default codec is **binary**: each frame is a
//! [`pba_core::wire`] message — one `0xB5` magic byte, a type tag, a
//! `u32` payload length, the payload, and a trailing FNV-1a 64
//! checksum. Payload integers are LEB128 varints; sparse `(bin, value)`
//! lists delta-encode the bin ids (zigzag, since routing order is not
//! guaranteed ascending); seeds are fixed-width `u64` — all 64 bits
//! survive the wire natively, no decimal-string workaround.
//!
//! The **JSON compat codec** (`--wire json`) keeps the original
//! line-delimited dialect for debugging with a text `tee`: one JSON
//! object per line with a `"t"` type key, now hardened with the same
//! FNV-1a checksum carried as a trailing `"sum"` field over the rest of
//! the object text. Seeds ride as plain JSON integers — the parser's
//! [`Json::UInt`](pba_core::json::Json) variant keeps full `u64`
//! fidelity, so the compat path is bit-identical to binary.
//!
//! A reader never needs to be told which codec a peer speaks:
//! [`read_frame`] sniffs the first byte of each frame (`0xB5` is not
//! valid ASCII, `{` starts every JSON frame) and decodes accordingly.
//!
//! A malformed, truncated, or bit-flipped frame is a protocol error
//! with a diagnostic message — never a silently wrong decode: the
//! worker answers with an `error` frame and exits nonzero; the
//! orchestrator surfaces
//! [`CoreError::ClusterTransport`](pba_core::CoreError).

use std::io::BufRead;

use pba_core::json::{parse, u64_array, Json, JsonObject};
use pba_core::wire::{self, WireError, WireReader, WireWriter};
use pba_core::{MessageStats, RoundRecord};

/// Which codec a link speaks. Binary is the default; JSON is the
/// debug/compat path. Both carry identical frame contents (enforced by
/// the cross-codec bit-identity tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Checksummed binary messages with varint payloads (default).
    Binary,
    /// Line-delimited JSON objects with a trailing checksum field.
    Json,
}

impl WireFormat {
    /// Parse a `--wire` flag value.
    pub fn parse_flag(s: &str) -> Result<Self, String> {
        match s {
            "binary" => Ok(WireFormat::Binary),
            "json" => Ok(WireFormat::Json),
            other => Err(format!("unknown wire format '{other}' (binary|json)")),
        }
    }

    /// The flag spelling, for display.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Binary => "binary",
            WireFormat::Json => "json",
        }
    }
}

/// Everything the worker needs to set up its shard, sent first.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// `"engine"` or `"stream"`.
    pub mode: String,
    /// This worker's shard index.
    pub shard: u32,
    /// Total shard count.
    pub shards: u32,
    /// First owned bin (inclusive).
    pub lo: u32,
    /// One past the last owned bin.
    pub hi: u32,
    /// Total bins in the run.
    pub n: u32,
    /// Total balls (engine mode; 0 for stream).
    pub m: u64,
    /// Run seed (full-width u64, exact on both codecs).
    pub seed: u64,
    /// Protocol name (engine) or policy name (stream).
    pub workload: String,
    /// Per-barrier straggle probability (0 disables; delay-only chaos).
    pub straggle_prob: f64,
    /// Sleep in microseconds when a barrier straggles.
    pub straggle_us: u64,
    /// Seed of the straggle stream (full-width u64, exact).
    pub fault_seed: u64,
}

/// One wire frame. See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Orchestrator → worker: session setup.
    Hello(Hello),
    /// Worker → orchestrator: setup done.
    Ready {
        /// Echoed shard index.
        shard: u32,
    },
    /// Orchestrator → worker: one round's request wave.
    Grants {
        /// Round index.
        round: u32,
        /// Active balls at round start.
        active: u64,
        /// Balls placed before this round.
        placed: u64,
        /// Sparse `(global bin, arrivals)` pairs within the shard range.
        counts: Vec<(u32, u64)>,
        /// Run-level crashed bins within the shard range.
        crashed: Vec<u32>,
    },
    /// Worker → orchestrator: the shard's grant decisions.
    GrantsOk {
        /// Echoed round index.
        round: u32,
        /// Sparse `(global bin, accept)` pairs (only nonzero accepts).
        accept: Vec<(u32, u64)>,
        /// Underloaded-bin count for this shard (crash-adjusted).
        underloaded: u32,
        /// Unfilled want for this shard (crash-adjusted).
        unfilled: u64,
    },
    /// Orchestrator → worker: the resolved round.
    Commit {
        /// Round index.
        round: u32,
        /// Absolute `(global bin, load)` pairs for bins that changed.
        loads: Vec<(u32, u64)>,
        /// The finished round record (drives `after_round` replicas).
        record: RoundRecord,
    },
    /// Worker → orchestrator: commit applied.
    CommitOk {
        /// Echoed round index.
        round: u32,
        /// Sum of the shard's post-commit loads (verification).
        sum: u64,
    },
    /// Orchestrator → worker: one stream batch's load changes.
    Delta {
        /// Batch sequence number.
        batch: u64,
        /// Absolute `(global bin, load)` pairs for bins that changed.
        loads: Vec<(u32, u64)>,
    },
    /// Worker → orchestrator: batch applied.
    DeltaOk {
        /// Echoed batch sequence number.
        batch: u64,
        /// Sum of the shard's loads (verification).
        total: u64,
        /// Max of the shard's loads (verification).
        max: u64,
    },
    /// Orchestrator → worker: report your full load range.
    Drain,
    /// Worker → orchestrator: dense loads for `[lo, hi)`.
    Loads {
        /// The shard's dense load vector.
        loads: Vec<u64>,
    },
    /// Orchestrator → worker: clean exit.
    Shutdown,
    /// Worker → orchestrator: exiting.
    Bye {
        /// Echoed shard index.
        shard: u32,
    },
    /// Worker → orchestrator: protocol failure (worker exits after).
    Error {
        /// What went wrong.
        detail: String,
    },
}

// Binary frame type tags. Tag 0 is reserved so an all-zero header never
// looks like a valid frame.
const TAG_HELLO: u8 = 1;
const TAG_READY: u8 = 2;
const TAG_GRANTS: u8 = 3;
const TAG_GRANTS_OK: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_COMMIT_OK: u8 = 6;
const TAG_DELTA: u8 = 7;
const TAG_DELTA_OK: u8 = 8;
const TAG_DRAIN: u8 = 9;
const TAG_LOADS: u8 = 10;
const TAG_SHUTDOWN: u8 = 11;
const TAG_BYE: u8 = 12;
const TAG_ERROR: u8 = 13;

/// Flatten `(k, v)` pairs as `[k, v, k, v, …]` (JSON codec).
fn pairs_array(pairs: &[(u32, u64)]) -> String {
    let flat: Vec<u64> = pairs.iter().flat_map(|&(k, v)| [u64::from(k), v]).collect();
    u64_array(&flat)
}

/// Flatten a `u32` list through the shared `u64_array` helper.
fn u32_array(values: &[u32]) -> String {
    let wide: Vec<u64> = values.iter().map(|&v| u64::from(v)).collect();
    u64_array(&wide)
}

/// Sparse `(bin, value)` pairs, binary layout: varint count, then per
/// pair a zigzag-varint bin delta from the previous bin (routing order
/// is usually ascending, so deltas stay small, but it is not a format
/// requirement) and a varint value.
fn write_pairs(w: &mut WireWriter, pairs: &[(u32, u64)]) {
    w.varint(pairs.len() as u64);
    let mut prev: i64 = 0;
    for &(bin, v) in pairs {
        w.varint_signed(i64::from(bin) - prev);
        w.varint(v);
        prev = i64::from(bin);
    }
}

fn read_pairs(r: &mut WireReader<'_>) -> Result<Vec<(u32, u64)>, WireError> {
    let count = r.varint()?;
    let mut out = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let bin = prev + r.varint_signed()?;
        let bin = u32::try_from(bin)
            .map_err(|_| WireError::Malformed(format!("pair bin id out of u32 range: {bin}")))?;
        out.push((bin, r.varint()?));
        prev = i64::from(bin);
    }
    Ok(out)
}

/// A `u32` id list, binary layout: varint count + zigzag bin deltas.
fn write_u32s(w: &mut WireWriter, values: &[u32]) {
    w.varint(values.len() as u64);
    let mut prev: i64 = 0;
    for &v in values {
        w.varint_signed(i64::from(v) - prev);
        prev = i64::from(v);
    }
}

fn read_u32s(r: &mut WireReader<'_>) -> Result<Vec<u32>, WireError> {
    let count = r.varint()?;
    let mut out = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let v = prev + r.varint_signed()?;
        let v = u32::try_from(v)
            .map_err(|_| WireError::Malformed(format!("id out of u32 range: {v}")))?;
        out.push(v);
        prev = i64::from(v);
    }
    Ok(out)
}

impl Frame {
    /// Encode in the given format, ready for the wire: binary frames
    /// are self-delimiting, JSON frames end with `\n`.
    pub fn encode_wire(&self, format: WireFormat) -> Vec<u8> {
        match format {
            WireFormat::Binary => self.encode_binary(),
            WireFormat::Json => {
                let mut line = self.encode().into_bytes();
                line.push(b'\n');
                line
            }
        }
    }

    /// Encode as a single checksummed JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let body = self.encode_json_body();
        let sum = wire::fnv1a(body.as_bytes());
        // Splice the checksum in as the last field: the sum covers the
        // complete object text *without* it, so the decoder can strip
        // the fixed-width suffix and verify what remains.
        format!("{},\"sum\":\"{sum:016x}\"}}", &body[..body.len() - 1])
    }

    fn encode_json_body(&self) -> String {
        match self {
            Frame::Hello(h) => JsonObject::new()
                .str("t", "hello")
                .str("mode", &h.mode)
                .u64("shard", u64::from(h.shard))
                .u64("shards", u64::from(h.shards))
                .u64("lo", u64::from(h.lo))
                .u64("hi", u64::from(h.hi))
                .u64("n", u64::from(h.n))
                .u64("m", h.m)
                .u64("seed", h.seed)
                .str("workload", &h.workload)
                .f64("straggle_prob", h.straggle_prob)
                .u64("straggle_us", h.straggle_us)
                .u64("fault_seed", h.fault_seed)
                .finish(),
            Frame::Ready { shard } => JsonObject::new()
                .str("t", "ready")
                .u64("shard", u64::from(*shard))
                .finish(),
            Frame::Grants {
                round,
                active,
                placed,
                counts,
                crashed,
            } => JsonObject::new()
                .str("t", "grants")
                .u64("round", u64::from(*round))
                .u64("active", *active)
                .u64("placed", *placed)
                .raw("counts", &pairs_array(counts))
                .raw("crashed", &u32_array(crashed))
                .finish(),
            Frame::GrantsOk {
                round,
                accept,
                underloaded,
                unfilled,
            } => JsonObject::new()
                .str("t", "grants_ok")
                .u64("round", u64::from(*round))
                .raw("accept", &pairs_array(accept))
                .u64("underloaded", u64::from(*underloaded))
                .u64("unfilled", *unfilled)
                .finish(),
            Frame::Commit {
                round,
                loads,
                record,
            } => JsonObject::new()
                .str("t", "commit")
                .u64("round", u64::from(*round))
                .raw("loads", &pairs_array(loads))
                .raw("record", &encode_record(record))
                .finish(),
            Frame::CommitOk { round, sum } => JsonObject::new()
                .str("t", "commit_ok")
                .u64("round", u64::from(*round))
                .u64("sum", *sum)
                .finish(),
            Frame::Delta { batch, loads } => JsonObject::new()
                .str("t", "delta")
                .u64("batch", *batch)
                .raw("loads", &pairs_array(loads))
                .finish(),
            Frame::DeltaOk { batch, total, max } => JsonObject::new()
                .str("t", "delta_ok")
                .u64("batch", *batch)
                .u64("total", *total)
                .u64("max", *max)
                .finish(),
            Frame::Drain => JsonObject::new().str("t", "drain").finish(),
            Frame::Loads { loads } => JsonObject::new()
                .str("t", "loads")
                .raw("loads", &u64_array(loads))
                .finish(),
            Frame::Shutdown => JsonObject::new().str("t", "shutdown").finish(),
            Frame::Bye { shard } => JsonObject::new()
                .str("t", "bye")
                .u64("shard", u64::from(*shard))
                .finish(),
            Frame::Error { detail } => JsonObject::new()
                .str("t", "error")
                .str("detail", detail)
                .finish(),
        }
    }

    /// Decode one JSON line. The trailing `"sum"` checksum field is
    /// mandatory and verified before the object is parsed. Errors are
    /// human-readable descriptions suitable for an `error` frame or a
    /// transport error.
    pub fn decode(line: &str) -> Result<Frame, String> {
        let line = line.trim_end();
        // `,"sum":"<16 hex>"}` is a fixed-width 26-char suffix.
        const SUFFIX: usize = 26;
        let body = if line.len() >= SUFFIX
            && line.ends_with("\"}")
            && line.is_char_boundary(line.len() - SUFFIX)
        {
            let (head, tail) = line.split_at(line.len() - SUFFIX);
            let sum = tail
                .strip_prefix(",\"sum\":\"")
                .and_then(|t| t.strip_suffix("\"}"))
                .ok_or_else(|| {
                    "malformed frame: missing checksum (no trailing sum field)".to_string()
                })?;
            let sum = u64::from_str_radix(sum, 16)
                .map_err(|_| format!("frame checksum is not 16 hex digits: '{sum}'"))?;
            let body = format!("{head}}}");
            if wire::fnv1a(body.as_bytes()) != sum {
                return Err("frame checksum mismatch: bytes corrupted".into());
            }
            body
        } else {
            return Err("malformed frame: missing checksum (no trailing sum field)".into());
        };
        let v = parse(&body).map_err(|e| format!("malformed frame: {e}"))?;
        Self::from_json(&v)
    }

    fn from_json(v: &Json) -> Result<Frame, String> {
        let t = req_str(v, "t")?;
        Ok(match t.as_str() {
            "hello" => Frame::Hello(Hello {
                mode: req_str(v, "mode")?,
                shard: req_u32(v, "shard")?,
                shards: req_u32(v, "shards")?,
                lo: req_u32(v, "lo")?,
                hi: req_u32(v, "hi")?,
                n: req_u32(v, "n")?,
                m: req_u64(v, "m")?,
                seed: req_u64(v, "seed")?,
                workload: req_str(v, "workload")?,
                straggle_prob: req_f64(v, "straggle_prob")?,
                straggle_us: req_u64(v, "straggle_us")?,
                fault_seed: req_u64(v, "fault_seed")?,
            }),
            "ready" => Frame::Ready {
                shard: req_u32(v, "shard")?,
            },
            "grants" => Frame::Grants {
                round: req_u32(v, "round")?,
                active: req_u64(v, "active")?,
                placed: req_u64(v, "placed")?,
                counts: req_pairs(v, "counts")?,
                crashed: req_u32s(v, "crashed")?,
            },
            "grants_ok" => Frame::GrantsOk {
                round: req_u32(v, "round")?,
                accept: req_pairs(v, "accept")?,
                underloaded: req_u32(v, "underloaded")?,
                unfilled: req_u64(v, "unfilled")?,
            },
            "commit" => Frame::Commit {
                round: req_u32(v, "round")?,
                loads: req_pairs(v, "loads")?,
                record: decode_record(v.get("record").ok_or("missing key 'record'")?)?,
            },
            "commit_ok" => Frame::CommitOk {
                round: req_u32(v, "round")?,
                sum: req_u64(v, "sum")?,
            },
            "delta" => Frame::Delta {
                batch: req_u64(v, "batch")?,
                loads: req_pairs(v, "loads")?,
            },
            "delta_ok" => Frame::DeltaOk {
                batch: req_u64(v, "batch")?,
                total: req_u64(v, "total")?,
                max: req_u64(v, "max")?,
            },
            "drain" => Frame::Drain,
            "loads" => Frame::Loads {
                loads: req_u64s(v, "loads")?,
            },
            "shutdown" => Frame::Shutdown,
            "bye" => Frame::Bye {
                shard: req_u32(v, "shard")?,
            },
            "error" => Frame::Error {
                detail: req_str(v, "detail")?,
            },
            other => return Err(format!("unknown frame type '{other}'")),
        })
    }

    /// Encode as one self-delimiting checksummed binary message.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = WireWriter::unframed();
        let tag = match self {
            Frame::Hello(h) => {
                w.str(&h.mode);
                w.varint(u64::from(h.shard));
                w.varint(u64::from(h.shards));
                w.varint(u64::from(h.lo));
                w.varint(u64::from(h.hi));
                w.varint(u64::from(h.n));
                w.varint(h.m);
                w.u64(h.seed);
                w.str(&h.workload);
                w.f64(h.straggle_prob);
                w.varint(h.straggle_us);
                w.u64(h.fault_seed);
                TAG_HELLO
            }
            Frame::Ready { shard } => {
                w.varint(u64::from(*shard));
                TAG_READY
            }
            Frame::Grants {
                round,
                active,
                placed,
                counts,
                crashed,
            } => {
                w.varint(u64::from(*round));
                w.varint(*active);
                w.varint(*placed);
                write_pairs(&mut w, counts);
                write_u32s(&mut w, crashed);
                TAG_GRANTS
            }
            Frame::GrantsOk {
                round,
                accept,
                underloaded,
                unfilled,
            } => {
                w.varint(u64::from(*round));
                write_pairs(&mut w, accept);
                w.varint(u64::from(*underloaded));
                w.varint(*unfilled);
                TAG_GRANTS_OK
            }
            Frame::Commit {
                round,
                loads,
                record,
            } => {
                w.varint(u64::from(*round));
                write_pairs(&mut w, loads);
                write_record(&mut w, record);
                TAG_COMMIT
            }
            Frame::CommitOk { round, sum } => {
                w.varint(u64::from(*round));
                w.varint(*sum);
                TAG_COMMIT_OK
            }
            Frame::Delta { batch, loads } => {
                w.varint(*batch);
                write_pairs(&mut w, loads);
                TAG_DELTA
            }
            Frame::DeltaOk { batch, total, max } => {
                w.varint(*batch);
                w.varint(*total);
                w.varint(*max);
                TAG_DELTA_OK
            }
            Frame::Drain => TAG_DRAIN,
            Frame::Loads { loads } => {
                w.varint(loads.len() as u64);
                for &v in loads {
                    w.varint(v);
                }
                TAG_LOADS
            }
            Frame::Shutdown => TAG_SHUTDOWN,
            Frame::Bye { shard } => {
                w.varint(u64::from(*shard));
                TAG_BYE
            }
            Frame::Error { detail } => {
                w.str(detail);
                TAG_ERROR
            }
        };
        wire::encode_msg(tag, &w.finish())
    }

    /// Decode one complete binary message (envelope included).
    pub fn decode_binary(bytes: &[u8]) -> Result<Frame, String> {
        let (tag, payload) = wire::decode_msg(bytes).map_err(|e| e.to_string())?;
        Self::from_binary_payload(tag, payload)
    }

    fn from_binary_payload(tag: u8, payload: &[u8]) -> Result<Frame, String> {
        let mut r = WireReader::unframed(payload);
        let frame = Self::read_binary_fields(tag, &mut r).map_err(|e| e.to_string())?;
        r.finish().map_err(|e| format!("frame tag {tag}: {e}"))?;
        Ok(frame)
    }

    fn read_binary_fields(tag: u8, r: &mut WireReader<'_>) -> Result<Frame, WireError> {
        Ok(match tag {
            TAG_HELLO => Frame::Hello(Hello {
                mode: r.str()?.to_owned(),
                shard: varint_u32(r)?,
                shards: varint_u32(r)?,
                lo: varint_u32(r)?,
                hi: varint_u32(r)?,
                n: varint_u32(r)?,
                m: r.varint()?,
                seed: r.u64()?,
                workload: r.str()?.to_owned(),
                straggle_prob: r.f64()?,
                straggle_us: r.varint()?,
                fault_seed: r.u64()?,
            }),
            TAG_READY => Frame::Ready {
                shard: varint_u32(r)?,
            },
            TAG_GRANTS => Frame::Grants {
                round: varint_u32(r)?,
                active: r.varint()?,
                placed: r.varint()?,
                counts: read_pairs(r)?,
                crashed: read_u32s(r)?,
            },
            TAG_GRANTS_OK => Frame::GrantsOk {
                round: varint_u32(r)?,
                accept: read_pairs(r)?,
                underloaded: varint_u32(r)?,
                unfilled: r.varint()?,
            },
            TAG_COMMIT => Frame::Commit {
                round: varint_u32(r)?,
                loads: read_pairs(r)?,
                record: read_record(r)?,
            },
            TAG_COMMIT_OK => Frame::CommitOk {
                round: varint_u32(r)?,
                sum: r.varint()?,
            },
            TAG_DELTA => Frame::Delta {
                batch: r.varint()?,
                loads: read_pairs(r)?,
            },
            TAG_DELTA_OK => Frame::DeltaOk {
                batch: r.varint()?,
                total: r.varint()?,
                max: r.varint()?,
            },
            TAG_DRAIN => Frame::Drain,
            TAG_LOADS => {
                let count = r.varint()?;
                let mut loads = Vec::with_capacity(count.min(1 << 24) as usize);
                for _ in 0..count {
                    loads.push(r.varint()?);
                }
                Frame::Loads { loads }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_BYE => Frame::Bye {
                shard: varint_u32(r)?,
            },
            TAG_ERROR => Frame::Error {
                detail: r.str()?.to_owned(),
            },
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown binary frame tag {other}"
                )))
            }
        })
    }

    /// The frame-type tag, for error messages.
    pub fn tag(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "hello",
            Frame::Ready { .. } => "ready",
            Frame::Grants { .. } => "grants",
            Frame::GrantsOk { .. } => "grants_ok",
            Frame::Commit { .. } => "commit",
            Frame::CommitOk { .. } => "commit_ok",
            Frame::Delta { .. } => "delta",
            Frame::DeltaOk { .. } => "delta_ok",
            Frame::Drain => "drain",
            Frame::Loads { .. } => "loads",
            Frame::Shutdown => "shutdown",
            Frame::Bye { .. } => "bye",
            Frame::Error { .. } => "error",
        }
    }
}

/// Read one frame from a buffered stream, sniffing the codec from the
/// first byte: `0xB5` starts a binary message, anything else is read as
/// one JSON line. Returns the frame, the bytes consumed (wire
/// accounting), and the codec it arrived in; `Ok(None)` on clean EOF at
/// a frame boundary.
pub fn read_frame(
    reader: &mut (impl BufRead + ?Sized),
) -> Result<Option<(Frame, usize, WireFormat)>, String> {
    let lead = loop {
        match reader.fill_buf() {
            Ok(buf) => break buf.first().copied(),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("transport read failed: {e}")),
        }
    };
    match lead {
        None => Ok(None),
        Some(wire::MSG_MAGIC) => {
            let (tag, payload) = match wire::read_msg(reader) {
                Ok(Some(msg)) => msg,
                Ok(None) => return Ok(None),
                Err(e) => return Err(e.to_string()),
            };
            let bytes = wire::MSG_OVERHEAD + payload.len();
            let frame = Frame::from_binary_payload(tag, &payload)?;
            Ok(Some((frame, bytes, WireFormat::Binary)))
        }
        Some(_) => {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("transport read failed: {e}"))?;
            if n == 0 {
                return Ok(None);
            }
            let frame = Frame::decode(&line)?;
            Ok(Some((frame, n, WireFormat::Json)))
        }
    }
}

fn varint_u32(r: &mut WireReader<'_>) -> Result<u32, WireError> {
    let raw = r.varint()?;
    u32::try_from(raw).map_err(|_| WireError::Malformed(format!("value out of u32 range: {raw}")))
}

/// The round record, flattened into one nested object (drives the
/// worker's `after_round` replica; every field is below the wire limit).
fn encode_record(r: &RoundRecord) -> String {
    JsonObject::new()
        .u64("round", u64::from(r.round))
        .u64("active_before", r.active_before)
        .u64("requests", r.requests)
        .u64("granted", r.granted)
        .u64("committed", r.committed)
        .u64("wasted_grants", r.wasted_grants)
        .u64("underloaded_bins", u64::from(r.underloaded_bins))
        .u64("unfilled_want", r.unfilled_want)
        .u64("max_load", u64::from(r.max_load))
        .u64("msg_requests", r.messages.requests)
        .u64("msg_responses", r.messages.responses)
        .u64("msg_commits", r.messages.commits)
        .finish()
}

fn decode_record(v: &Json) -> Result<RoundRecord, String> {
    Ok(RoundRecord {
        round: req_u32(v, "round")?,
        active_before: req_u64(v, "active_before")?,
        requests: req_u64(v, "requests")?,
        granted: req_u64(v, "granted")?,
        committed: req_u64(v, "committed")?,
        wasted_grants: req_u64(v, "wasted_grants")?,
        underloaded_bins: req_u32(v, "underloaded_bins")?,
        unfilled_want: req_u64(v, "unfilled_want")?,
        max_load: req_u32(v, "max_load")?,
        messages: MessageStats {
            requests: req_u64(v, "msg_requests")?,
            responses: req_u64(v, "msg_responses")?,
            commits: req_u64(v, "msg_commits")?,
        },
    })
}

/// The round record, binary layout: the same 12 fields as varints in
/// declaration order.
fn write_record(w: &mut WireWriter, r: &RoundRecord) {
    w.varint(u64::from(r.round));
    w.varint(r.active_before);
    w.varint(r.requests);
    w.varint(r.granted);
    w.varint(r.committed);
    w.varint(r.wasted_grants);
    w.varint(u64::from(r.underloaded_bins));
    w.varint(r.unfilled_want);
    w.varint(u64::from(r.max_load));
    w.varint(r.messages.requests);
    w.varint(r.messages.responses);
    w.varint(r.messages.commits);
}

fn read_record(r: &mut WireReader<'_>) -> Result<RoundRecord, WireError> {
    Ok(RoundRecord {
        round: varint_u32(r)?,
        active_before: r.varint()?,
        requests: r.varint()?,
        granted: r.varint()?,
        committed: r.varint()?,
        wasted_grants: r.varint()?,
        underloaded_bins: varint_u32(r)?,
        unfilled_want: r.varint()?,
        max_load: varint_u32(r)?,
        messages: MessageStats {
            requests: r.varint()?,
            responses: r.varint()?,
            commits: r.varint()?,
        },
    })
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer key '{key}'"))
}

fn req_u32(v: &Json, key: &str) -> Result<u32, String> {
    let raw = req_u64(v, key)?;
    u32::try_from(raw).map_err(|_| format!("key '{key}' out of u32 range: {raw}"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric key '{key}'"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string key '{key}'"))
}

fn req_u64s(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array key '{key}'"))?
        .iter()
        .map(|e| {
            e.as_u64()
                .ok_or_else(|| format!("non-integer element in '{key}'"))
        })
        .collect()
}

fn req_u32s(v: &Json, key: &str) -> Result<Vec<u32>, String> {
    req_u64s(v, key)?
        .into_iter()
        .map(|raw| u32::try_from(raw).map_err(|_| format!("element of '{key}' out of u32 range")))
        .collect()
}

fn req_pairs(v: &Json, key: &str) -> Result<Vec<(u32, u64)>, String> {
    let flat = req_u64s(v, key)?;
    if flat.len() % 2 != 0 {
        return Err(format!("pair array '{key}' has odd length"));
    }
    flat.chunks_exact(2)
        .map(|kv| {
            let bin =
                u32::try_from(kv[0]).map_err(|_| format!("bin id in '{key}' out of u32 range"))?;
            Ok((bin, kv[1]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                mode: "engine".into(),
                shard: 1,
                shards: 4,
                lo: 16,
                hi: 32,
                n: 64,
                m: 4096,
                seed: u64::MAX,
                workload: "collision".into(),
                straggle_prob: 0.25,
                straggle_us: 500,
                fault_seed: 0x9E37_79B9_7F4A_7C15,
            }),
            Frame::Ready { shard: 3 },
            Frame::Grants {
                round: 2,
                active: 100,
                placed: 900,
                counts: vec![(17, 3), (30, 1), (19, 2)],
                crashed: vec![18, 25],
            },
            Frame::GrantsOk {
                round: 2,
                accept: vec![(17, 2)],
                underloaded: 5,
                unfilled: 12,
            },
            Frame::Commit {
                round: 2,
                loads: vec![(17, 7), (30, 2)],
                record: RoundRecord {
                    round: 2,
                    active_before: 100,
                    requests: 100,
                    granted: 80,
                    committed: 80,
                    wasted_grants: 3,
                    underloaded_bins: 5,
                    unfilled_want: 12,
                    max_load: 9,
                    messages: MessageStats {
                        requests: 100,
                        responses: 80,
                        commits: 80,
                    },
                },
            },
            Frame::CommitOk { round: 2, sum: 980 },
            Frame::Delta {
                batch: 9,
                loads: vec![(0, 5)],
            },
            Frame::DeltaOk {
                batch: 9,
                total: 55,
                max: 8,
            },
            Frame::Drain,
            Frame::Loads {
                loads: vec![1, 2, 3],
            },
            Frame::Shutdown,
            Frame::Bye { shard: 0 },
            Frame::Error {
                detail: "bad \"frame\"".into(),
            },
        ]
    }

    #[test]
    fn every_frame_roundtrips_on_both_codecs() {
        for f in sample_frames() {
            let line = f.encode();
            assert!(!line.contains('\n'), "frames must be single lines");
            let back = Frame::decode(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
            assert_eq!(f, back, "json codec mangled {}", f.tag());

            let bytes = f.encode_binary();
            let back = Frame::decode_binary(&bytes)
                .unwrap_or_else(|e| panic!("{e} decoding binary {}", f.tag()));
            assert_eq!(f, back, "binary codec mangled {}", f.tag());
        }
    }

    #[test]
    fn read_frame_sniffs_the_codec_per_frame() {
        let frames = sample_frames();
        let mut mixed = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let format = if i % 2 == 0 {
                WireFormat::Binary
            } else {
                WireFormat::Json
            };
            mixed.extend_from_slice(&f.encode_wire(format));
        }
        let mut reader = std::io::BufReader::new(&mixed[..]);
        let mut total = 0usize;
        for (i, want) in frames.iter().enumerate() {
            let (got, bytes, format) = read_frame(&mut reader)
                .unwrap_or_else(|e| panic!("frame {i}: {e}"))
                .expect("frame present");
            assert_eq!(&got, want);
            assert_eq!(
                format,
                if i % 2 == 0 {
                    WireFormat::Binary
                } else {
                    WireFormat::Json
                }
            );
            total += bytes;
        }
        assert_eq!(total, mixed.len(), "byte accounting must be exact");
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn binary_is_smaller_than_json_for_wave_frames() {
        for f in sample_frames() {
            if matches!(
                f,
                Frame::Grants { .. } | Frame::Commit { .. } | Frame::Delta { .. }
            ) {
                let json = f.encode_wire(WireFormat::Json).len();
                let binary = f.encode_wire(WireFormat::Binary).len();
                assert!(
                    binary * 3 <= json,
                    "{}: binary {binary}B not ≥3× smaller than json {json}B",
                    f.tag()
                );
            }
        }
    }

    #[test]
    fn full_width_seeds_survive_both_codecs() {
        let f = Frame::Hello(Hello {
            mode: "stream".into(),
            shard: 0,
            shards: 2,
            lo: 0,
            hi: 32,
            n: 64,
            m: 0,
            seed: 0xFFFF_FFFF_FFFF_FFFE,
            workload: "batched-two-choice".into(),
            straggle_prob: 0.0,
            straggle_us: 0,
            fault_seed: (1 << 60) + 7,
        });
        for bytes in [
            f.encode_wire(WireFormat::Json),
            f.encode_wire(WireFormat::Binary),
        ] {
            let mut reader = std::io::BufReader::new(&bytes[..]);
            let (got, _, _) = read_frame(&mut reader).unwrap().expect("frame");
            let Frame::Hello(h) = got else {
                panic!("wrong frame");
            };
            assert_eq!(h.seed, 0xFFFF_FFFF_FFFF_FFFE);
            assert_eq!(h.fault_seed, (1 << 60) + 7);
        }
    }

    #[test]
    fn malformed_frames_are_described() {
        assert!(Frame::decode("not json").unwrap_err().contains("checksum"));
        assert!(Frame::decode("{\"x\":1}").unwrap_err().contains("checksum"));
        // With a valid checksum spliced on, content errors surface.
        let stamp = |body: &str| {
            let sum = wire::fnv1a(body.as_bytes());
            format!("{},\"sum\":\"{sum:016x}\"}}", &body[..body.len() - 1])
        };
        assert!(Frame::decode(&stamp("{\"x\":1}"))
            .unwrap_err()
            .contains("'t'"));
        assert!(Frame::decode(&stamp("{\"t\":\"warp\"}"))
            .unwrap_err()
            .contains("unknown frame type"));
        assert!(Frame::decode(&stamp("{\"t\":\"ready\"}"))
            .unwrap_err()
            .contains("shard"));
        assert!(Frame::decode(&stamp(
            "{\"t\":\"grants_ok\",\"round\":1,\"accept\":[1],\"underloaded\":0,\"unfilled\":0}"
        ))
        .unwrap_err()
        .contains("odd length"));
        // Tampering with a checksummed line is caught by the sum, not
        // the parser.
        let good = Frame::CommitOk { round: 2, sum: 980 }.encode();
        let tampered = good.replace("980", "981");
        assert!(Frame::decode(&tampered).unwrap_err().contains("checksum"));
    }

    #[test]
    fn binary_frame_corruption_is_always_rejected() {
        let good = Frame::Grants {
            round: 3,
            active: 64,
            placed: 1000,
            counts: vec![(5, 2), (9, 1)],
            crashed: vec![],
        }
        .encode_binary();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Frame::decode_binary(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
        for len in 0..good.len() {
            assert!(
                Frame::decode_binary(&good[..len]).is_err(),
                "truncation to {len} went undetected"
            );
        }
    }
}
