//! The cluster orchestrator: drives shard workers through round/batch
//! waves and stays bit-identical to the single-process engine.
//!
//! ## Determinism argument
//!
//! The orchestrator keeps the *ball side* of every protocol — gather,
//! arrival ranks, resolve, fault machinery — inside the ordinary
//! in-process engine, and externalizes only the *bin side* through the
//! [`GrantDelegate`] seam. Each worker runs
//! [`grant_slice`](pba_core::exec::grant_slice) — the same kernel the
//! local grant phase uses — over its own dense slice, and replies are
//! merged in shard order, so every merged quantity equals the local
//! computation term for term. Streaming runs keep an authoritative local
//! [`StreamAllocator`] mirror (placement decisions never depend on worker
//! state) and ship absolute load updates outward. Both modes are
//! therefore bit-identical to `--shards 1` and to the in-process paths
//! by construction; the drain wave and per-wave checksums *verify* it on
//! every run.
//!
//! ## Chaos
//!
//! [`ClusterConfig::with_kill`] schedules a real kill: the shard process
//! dies before the given batch, the next wave's send/recv to it fails,
//! and the orchestrator routes around it via the fault layer's
//! [`dead-domain`](FaultPlan::with_dead_domain) redirect — the same
//! pure-function redirect an in-process run with the same plan performs,
//! which is what the equivalence tests pin.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use pba_core::protocol::RoundContext;
use pba_core::trace::RoundRecord;
use pba_core::{
    ClusterMeta, ClusterShardRecord, CoreError, FaultPlan, GrantDelegate, MetricsSink, ProblemSpec,
    Result, RoundProtocol, RunConfig, RunOutcome, Simulator,
};
use pba_protocols::{visit_protocol, ProtocolVisitor};
use pba_stream::{PolicyKind, StreamAllocator, Workload, WorkloadCfg};

use crate::transport::ShardLink;
use crate::wire::{Frame, Hello, WireFormat};

/// First bin of shard `s` among `n` bins and `shards` shards.
///
/// The partition is chosen to coincide with the fault layer's
/// [`FaultPlan::domain_of`] striping (`domain_of(b) = ⌊b·S/n⌋`), so when
/// `shards == domains`, killing fault domain `d` kills exactly shard
/// `d`'s bins — the chaos harness depends on this alignment.
pub fn shard_lo(s: u32, n: u32, shards: u32) -> u32 {
    ((u64::from(s) * u64::from(n)).div_ceil(u64::from(shards))) as u32
}

/// The shard owning bin `b` (inverse of [`shard_lo`]).
pub fn shard_of(b: u32, n: u32, shards: u32) -> u32 {
    ((u64::from(b) * u64::from(shards)) / u64::from(n)) as u32
}

/// What workload the cluster executes.
enum ModeCfg {
    /// A round-synchronous engine protocol by registry name.
    Engine { protocol: String, spec: ProblemSpec },
    /// A streaming policy over a synthetic workload.
    Stream {
        policy: PolicyKind,
        bins: u32,
        workload: WorkloadCfg,
        batches: u64,
    },
}

/// Builder for a cluster run. See the crate docs for examples.
pub struct ClusterConfig {
    mode: ModeCfg,
    seed: u64,
    shards: u32,
    metrics: Option<Arc<dyn MetricsSink>>,
    faults: Option<FaultPlan>,
    kill: Option<(u32, u64)>,
    worker_exe: Option<PathBuf>,
    validate: bool,
    wire: WireFormat,
    overlap: bool,
}

/// What a cluster run produced.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// `"engine"` or `"stream"`.
    pub mode: &'static str,
    /// Protocol or policy name.
    pub workload: &'static str,
    /// Final per-bin loads (authoritative, drain-verified).
    pub loads: Vec<u64>,
    /// The full engine outcome (engine mode only).
    pub run: Option<RunOutcome>,
    /// Batches ingested (stream mode only).
    pub batches: u64,
    /// Per-shard wire totals (also delivered to the sink's `on_cluster`).
    pub shard_records: Vec<ClusterShardRecord>,
}

impl ClusterOutcome {
    /// Total frames exchanged, both directions, all shards.
    pub fn total_frames(&self) -> u64 {
        self.shard_records
            .iter()
            .map(|r| r.frames_sent + r.frames_recv)
            .sum()
    }

    /// Total bytes exchanged, both directions, all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shard_records
            .iter()
            .map(|r| r.bytes_sent + r.bytes_recv)
            .sum()
    }
}

impl ClusterConfig {
    /// A cluster run of the named registry protocol (engine mode).
    pub fn engine(protocol: &str, spec: ProblemSpec, seed: u64) -> Self {
        Self {
            mode: ModeCfg::Engine {
                protocol: protocol.to_owned(),
                spec,
            },
            seed,
            shards: 1,
            metrics: None,
            faults: None,
            kill: None,
            worker_exe: None,
            validate: false,
            wire: WireFormat::Binary,
            overlap: true,
        }
    }

    /// A cluster run of a streaming policy over a uniform unit-weight
    /// workload of `batches` batches × `batch_size` arrivals
    /// (stream mode). Refine with [`ClusterConfig::with_workload`].
    pub fn stream(policy: PolicyKind, bins: u32, seed: u64, batches: u64, batch_size: u64) -> Self {
        Self {
            mode: ModeCfg::Stream {
                policy,
                bins,
                workload: WorkloadCfg::uniform(batch_size),
                batches,
            },
            seed,
            shards: 1,
            metrics: None,
            faults: None,
            kill: None,
            worker_exe: None,
            validate: false,
            wire: WireFormat::Binary,
            overlap: true,
        }
    }

    /// Replace the stream workload (no effect in engine mode).
    pub fn with_workload(mut self, cfg: WorkloadCfg) -> Self {
        if let ModeCfg::Stream { workload, .. } = &mut self.mode {
            *workload = cfg;
        }
        self
    }

    /// Split the bin space over `shards` workers (1..=bins).
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "at least one shard");
        self.shards = shards;
        self
    }

    /// Attach a metrics sink: engine rounds/run flow through it as usual,
    /// plus one `cluster` event per shard at teardown.
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Arm deterministic fault injection (see [`RunConfig::with_faults`]
    /// and `StreamAllocator::with_faults`; stragglers additionally delay
    /// real worker replies).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Chaos harness (stream mode): really kill shard `shard`'s worker
    /// before batch `batch` and route around the dead pipe via the fault
    /// layer's dead-domain redirect. Requires the fault plan's domain
    /// count (default: the shard count) to equal the shard count.
    pub fn with_kill(mut self, shard: u32, batch: u64) -> Self {
        self.kill = Some((shard, batch));
        self
    }

    /// Arm the in-engine invariant checker for engine-mode runs.
    pub fn with_validation(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Path of the worker executable for [`ClusterConfig::run_process`]
    /// (defaults to the current executable — correct for `pba-run`).
    pub fn with_worker_exe(mut self, exe: PathBuf) -> Self {
        self.worker_exe = Some(exe);
        self
    }

    /// Pick the frame codec: [`WireFormat::Binary`] (default) or
    /// [`WireFormat::Json`] as the debug/compat path. Runs are
    /// bit-identical either way; only the bytes on the wire differ.
    pub fn with_wire(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Enable/disable overlapped sends (default on). When on, each link
    /// serializes and writes wave `k+1` on a dedicated sender thread
    /// (bounded [`crate::transport::SEND_QUEUE_DEPTH`]-slot queue) while
    /// the worker still runs wave `k`, and ack collection is deferred one
    /// wave. Barrier semantics and results are unchanged — only wall
    /// time moves. `false` restores strict send-all-then-wait waves.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    fn bins(&self) -> u32 {
        match &self.mode {
            ModeCfg::Engine { spec, .. } => spec.bins(),
            ModeCfg::Stream { bins, .. } => *bins,
        }
    }

    fn exe(&self) -> Result<PathBuf> {
        match &self.worker_exe {
            Some(p) => Ok(p.clone()),
            None => std::env::current_exe().map_err(|e| CoreError::ClusterTransport {
                shard: 0,
                detail: format!("cannot locate worker executable: {e}"),
            }),
        }
    }

    /// Run with every shard as a thread in this process (in-memory
    /// pipes, identical wire protocol). The default for tests and the
    /// baseline the process transport is verified against.
    pub fn run_local(self) -> Result<ClusterOutcome> {
        let links = (0..self.shards)
            .map(|s| ShardLink::local(s, self.wire, self.overlap))
            .collect();
        self.run(links)
    }

    /// Run with every shard as a real child process (`pba-run
    /// shard-worker` over stdin/stdout pipes).
    pub fn run_process(self) -> Result<ClusterOutcome> {
        let exe = self.exe()?;
        let links = (0..self.shards)
            .map(|s| ShardLink::process(s, &exe, self.wire, self.overlap))
            .collect::<Result<Vec<_>>>()?;
        self.run(links)
    }

    /// Run with every shard as a managed child listening on its own
    /// Unix-domain socket (`pba-run shard-worker --listen PATH`): same
    /// protocol as [`ClusterConfig::run_process`], real sockets instead
    /// of stdio pipes.
    pub fn run_socket(self) -> Result<ClusterOutcome> {
        let exe = self.exe()?;
        let links = (0..self.shards)
            .map(|s| ShardLink::socket(s, &exe, self.wire, self.overlap))
            .collect::<Result<Vec<_>>>()?;
        self.run(links)
    }

    /// Run against already-listening workers, one address (TCP
    /// `host:port` or Unix-socket path) per shard, in shard order. The
    /// workers are *not* managed: they must have been started with
    /// `pba-run shard-worker --listen ADDR` beforehand, and each serves
    /// exactly one run.
    pub fn run_connect(self, addrs: &[String]) -> Result<ClusterOutcome> {
        if addrs.len() != self.shards as usize {
            return Err(CoreError::InvalidSpec {
                reason: format!(
                    "need one worker address per shard ({} addresses for {} shards)",
                    addrs.len(),
                    self.shards
                ),
            });
        }
        let links = addrs
            .iter()
            .enumerate()
            .map(|(s, addr)| ShardLink::socket_connect(s as u32, addr, self.wire, self.overlap))
            .collect::<Result<Vec<_>>>()?;
        self.run(links)
    }

    fn run(self, links: Vec<ShardLink>) -> Result<ClusterOutcome> {
        let n = self.bins();
        assert!(
            self.shards >= 1 && self.shards <= n,
            "shards must be in 1..=bins"
        );
        match &self.mode {
            ModeCfg::Engine { protocol, spec } => {
                let (protocol, spec) = (protocol.clone(), *spec);
                self.run_engine(&protocol, spec, links)
            }
            ModeCfg::Stream {
                policy,
                bins,
                workload,
                batches,
            } => {
                let (policy, bins, workload, batches) = (*policy, *bins, *workload, *batches);
                self.run_stream(policy, bins, workload, batches, links)
            }
        }
    }

    /// The hello frame for shard `s`.
    fn hello(&self, s: u32, mode: &str, workload: &str, n: u32, m: u64) -> Frame {
        let (straggle_prob, straggle_us) = match self.faults.as_ref().and_then(|p| p.stragglers) {
            Some(sp) => (sp.prob, 500),
            None => (0.0, 0),
        };
        Frame::Hello(Hello {
            mode: mode.to_owned(),
            shard: s,
            shards: self.shards,
            lo: shard_lo(s, n, self.shards),
            hi: shard_lo(s + 1, n, self.shards),
            n,
            m,
            seed: self.seed,
            workload: workload.to_owned(),
            straggle_prob,
            straggle_us,
            fault_seed: self.faults.map_or(0, |p| p.seed),
        })
    }

    /// Hello wave: greet every shard, await every `ready` (a barrier).
    fn handshake(
        &self,
        links: &mut [ShardLink],
        mode: &str,
        workload: &str,
        n: u32,
        m: u64,
    ) -> Result<()> {
        for link in links.iter_mut() {
            let s = link.shard();
            link.send(&self.hello(s, mode, workload, n, m))?;
        }
        for link in links.iter_mut() {
            match link.recv()? {
                Frame::Ready { shard } if shard == link.shard() => {}
                other => {
                    return Err(CoreError::ClusterTransport {
                        shard: link.shard(),
                        detail: format!("expected ready, got {}", other.tag()),
                    });
                }
            }
        }
        Ok(())
    }

    /// Teardown: optional drain verification against `expect`, clean
    /// shutdown of live shards, and one `cluster` metrics event per
    /// shard.
    fn teardown(
        &self,
        mut links: Vec<ShardLink>,
        expect: &[u64],
        mode: &'static str,
        workload: &'static str,
        barriers: u64,
        started: Instant,
    ) -> Result<Vec<ClusterShardRecord>> {
        let n = self.bins();
        for link in links.iter_mut().filter(|l| l.is_alive()) {
            link.send(&Frame::Drain)?;
            let s = link.shard();
            let (lo, hi) = (
                shard_lo(s, n, self.shards) as usize,
                shard_lo(s + 1, n, self.shards) as usize,
            );
            match link.recv()? {
                Frame::Loads { loads } => {
                    if loads != expect[lo..hi] {
                        return Err(CoreError::ClusterTransport {
                            shard: s,
                            detail: format!(
                                "drain mismatch: shard loads diverged from orchestrator \
                                 over bins [{lo}, {hi})"
                            ),
                        });
                    }
                }
                other => {
                    return Err(CoreError::ClusterTransport {
                        shard: s,
                        detail: format!("expected loads, got {}", other.tag()),
                    });
                }
            }
        }
        let wall_nanos = started.elapsed().as_nanos() as u64;
        let mut records = Vec::with_capacity(links.len());
        for link in links.iter_mut() {
            link.finish()?;
            let s = link.shard();
            records.push(ClusterShardRecord {
                shard: s,
                lo: shard_lo(s, n, self.shards),
                hi: shard_lo(s + 1, n, self.shards),
                frames_sent: link.frames_sent,
                frames_recv: link.frames_recv,
                bytes_sent: link.bytes_sent,
                bytes_recv: link.bytes_recv,
                barriers,
                wall_nanos,
                killed: link.killed,
            });
        }
        if let Some(sink) = &self.metrics {
            let meta = ClusterMeta {
                bins: n,
                seed: self.seed,
                shards: self.shards,
                mode,
                workload,
            };
            for rec in &records {
                sink.on_cluster(&meta, rec);
            }
        }
        Ok(records)
    }

    fn run_engine(
        self,
        protocol: &str,
        spec: ProblemSpec,
        mut links: Vec<ShardLink>,
    ) -> Result<ClusterOutcome> {
        let started = Instant::now();
        let n = spec.bins();
        self.handshake(&mut links, "engine", protocol, n, spec.balls())?;
        let mut config = RunConfig::seeded(self.seed).with_validation(self.validate);
        if let Some(sink) = &self.metrics {
            config = config.with_metrics(sink.clone());
        }
        if let Some(plan) = self.faults {
            config = config.with_faults(plan);
        }
        let sim = Simulator::new(spec, config);
        let delegate = EngineDelegate {
            links,
            n,
            shards: self.shards,
            shadow: vec![0u32; n as usize],
            barriers: 1, // the hello wave
            overlap: self.overlap,
            pending_commit: None,
        };
        let visitor = ClusterRunVisitor { sim, delegate };
        let Some((run, mut delegate)) = visit_protocol(protocol, spec, visitor) else {
            return Err(CoreError::InvalidSpec {
                reason: format!("unknown protocol '{protocol}'"),
            });
        };
        let run = run?;
        // Overlap defers the last round's commit acks; settle them
        // before the drain wave reuses the links.
        delegate.collect_pending_commit()?;
        let loads: Vec<u64> = run.loads.iter().map(|&l| u64::from(l)).collect();
        let shard_records = self.teardown(
            delegate.links,
            &loads,
            "engine",
            run.protocol,
            delegate.barriers + 1, // + the drain wave
            started,
        )?;
        Ok(ClusterOutcome {
            mode: "engine",
            workload: run.protocol,
            loads,
            run: Some(run),
            batches: 0,
            shard_records,
        })
    }

    fn run_stream(
        self,
        policy: PolicyKind,
        bins: u32,
        workload_cfg: WorkloadCfg,
        batches: u64,
        mut links: Vec<ShardLink>,
    ) -> Result<ClusterOutcome> {
        let started = Instant::now();
        self.handshake(&mut links, "stream", policy.name(), bins, 0)?;
        // A kill maps fault domains onto shards 1:1; default a kill-only
        // plan when none was armed.
        let mut plan = self.faults;
        if let Some((shard, batch)) = self.kill {
            let base = plan.unwrap_or_else(|| FaultPlan::new(self.seed));
            let base = if base.domains == 0 {
                base.with_shard_failures(self.shards, 0.0)
            } else {
                base
            };
            if base.domains != self.shards {
                return Err(CoreError::InvalidSpec {
                    reason: format!(
                        "--kill needs fault domains == shards ({} != {})",
                        base.domains, self.shards
                    ),
                });
            }
            if shard >= self.shards {
                return Err(CoreError::InvalidSpec {
                    reason: format!("--kill shard {shard} out of range 0..{}", self.shards),
                });
            }
            plan = Some(base.with_dead_domain(shard, batch));
        }
        // The authoritative mirror: placements are decided here, by the
        // exact in-process allocator a `--shards 1` run uses.
        let mut mirror = StreamAllocator::new(bins, self.seed, policy);
        if let Some(p) = plan {
            mirror = mirror.with_faults(p);
        }
        if let Some(sink) = &self.metrics {
            mirror = mirror.with_metrics(sink.clone());
        }
        let mut workload = Workload::new(workload_cfg, self.seed);
        let mut shadow = vec![0u64; bins as usize];
        let mut barriers = 1u64; // the hello wave
                                 // Per-shard delta ack still owed from the previous batch
                                 // (overlap mode defers collection one batch).
        let mut pending: Vec<Option<PendingDelta>> = (0..links.len()).map(|_| None).collect();
        for t in 0..batches {
            if let Some((shard, batch)) = self.kill {
                if t == batch {
                    // A real kill: the pipe dies under the worker, so any
                    // ack still in flight is unrecoverable — drop it
                    // rather than verify against a severed pipe.
                    links[shard as usize].kill();
                    pending[shard as usize] = None;
                }
            }
            let batch = workload.next_batch();
            mirror.ingest(&batch);
            let loads = mirror.bin_state().load_vector();
            // Route changed bins to their shards.
            let mut per: Vec<Vec<(u32, u64)>> = vec![Vec::new(); links.len()];
            for (b, (&new, old)) in loads.iter().zip(shadow.iter_mut()).enumerate() {
                if new != *old {
                    per[shard_of(b as u32, bins, self.shards) as usize].push((b as u32, new));
                    *old = new;
                }
            }
            // Settle the previous batch's acks only now — the workers
            // chewed on batch t-1 while the mirror ingested and routed
            // batch t above. (Without overlap this is a no-op: acks were
            // collected inside the previous wave.)
            collect_delta_acks(&mut links, &mut pending)?;
            // Delta wave out. A just-killed shard is discovered here:
            // the send fails on the dead pipe and the shard is marked
            // dead; placements already route around its bins via the
            // dead-domain redirect, so its (empty) delta is dropped.
            for (s, link) in links.iter_mut().enumerate() {
                if !link.is_alive() {
                    continue;
                }
                let s32 = s as u32;
                let expect_dead = self.kill.is_some_and(|(ks, kb)| s32 == ks && t >= kb);
                let frame = Frame::Delta {
                    batch: t,
                    loads: std::mem::take(&mut per[s]),
                };
                match link.send(&frame) {
                    Ok(()) => {
                        let (lo, hi) = (
                            shard_lo(s32, bins, self.shards) as usize,
                            shard_lo(s32 + 1, bins, self.shards) as usize,
                        );
                        pending[s] = Some(PendingDelta {
                            batch: t,
                            want_total: loads[lo..hi].iter().sum(),
                            want_max: loads[lo..hi].iter().copied().max().unwrap_or(0),
                            expect_dead,
                        });
                    }
                    Err(e) if expect_dead => {
                        // The scheduled kill, observed as a dead pipe.
                        let _ = e;
                        pending[s] = None;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !self.overlap {
                // Strict waves: block on this batch's acks right away.
                collect_delta_acks(&mut links, &mut pending)?;
            }
            barriers += 1;
        }
        // Overlap leaves the final batch's acks outstanding.
        collect_delta_acks(&mut links, &mut pending)?;
        let loads = mirror.bin_state().load_vector();
        let shard_records = self.teardown(
            links,
            &loads,
            "stream",
            policy.name(),
            barriers + 1, // + the drain wave
            started,
        )?;
        Ok(ClusterOutcome {
            mode: "stream",
            workload: policy.name(),
            loads,
            run: None,
            batches,
            shard_records,
        })
    }
}

/// A delta ack owed by a shard for an already-sent batch.
struct PendingDelta {
    batch: u64,
    want_total: u64,
    want_max: u64,
    /// The shard is scheduled to die this batch or earlier — a failed
    /// ack is the expected chaos outcome, not an error.
    expect_dead: bool,
}

/// Collect every outstanding delta ack, verifying each shard's reported
/// (total, max) against the expectations recorded at send time.
fn collect_delta_acks(links: &mut [ShardLink], pending: &mut [Option<PendingDelta>]) -> Result<()> {
    for (s, link) in links.iter_mut().enumerate() {
        let Some(p) = pending[s].take() else { continue };
        match link.recv() {
            Ok(Frame::DeltaOk { batch, total, max }) => {
                if batch != p.batch || total != p.want_total || max != p.want_max {
                    return Err(CoreError::ClusterTransport {
                        shard: s as u32,
                        detail: format!(
                            "batch {} verification failed: shard reported \
                             total {total}/max {max}, orchestrator has {}/{}",
                            p.batch, p.want_total, p.want_max
                        ),
                    });
                }
            }
            Ok(other) => {
                return Err(CoreError::ClusterTransport {
                    shard: s as u32,
                    detail: format!("expected delta_ok, got {}", other.tag()),
                });
            }
            Err(e) if p.expect_dead => {
                // The scheduled kill, observed as a dead pipe.
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Adapts the cluster's shard links to the engine's [`GrantDelegate`]
/// seam: request/reply/commit waves with a barrier per wave.
struct EngineDelegate {
    links: Vec<ShardLink>,
    n: u32,
    shards: u32,
    /// Loads as last shipped to the workers; commit diffs against it.
    shadow: Vec<u32>,
    barriers: u64,
    /// Defer commit acks one wave (collected while the next round's
    /// grants are already on the wire).
    overlap: bool,
    /// Outstanding commit wave: `(round, expected per-shard load sums)`.
    pending_commit: Option<(u32, Vec<u64>)>,
}

impl EngineDelegate {
    /// Collect commit acks for `round`, verifying each shard's load-sum
    /// checksum against the orchestrator's own slice sums.
    fn collect_commit_acks(&mut self, round: u32, wants: &[u64]) -> Result<()> {
        for link in self.links.iter_mut() {
            let s = link.shard();
            match link.recv()? {
                Frame::CommitOk { round: r, sum } if r == round => {
                    let want = wants[s as usize];
                    if sum != want {
                        return Err(CoreError::ClusterTransport {
                            shard: s,
                            detail: format!(
                                "round {round} checksum mismatch: shard sums {sum}, \
                                 orchestrator {want}"
                            ),
                        });
                    }
                }
                other => {
                    return Err(CoreError::ClusterTransport {
                        shard: s,
                        detail: format!(
                            "expected commit_ok for round {round}, got {}",
                            other.tag()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Settle the deferred commit wave, if one is outstanding.
    fn collect_pending_commit(&mut self) -> Result<()> {
        match self.pending_commit.take() {
            Some((round, wants)) => self.collect_commit_acks(round, &wants),
            None => Ok(()),
        }
    }
}

impl GrantDelegate for EngineDelegate {
    fn round_grants(
        &mut self,
        ctx: &RoundContext,
        counts: &[u32],
        hot_bins: &[u32],
        crashed: &[u32],
        accept: &mut [u32],
    ) -> Result<(u32, u64)> {
        // Route the sparse arrival counts and crashed ids to their shards.
        let mut per_counts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.links.len()];
        for &b in hot_bins {
            per_counts[shard_of(b, self.n, self.shards) as usize]
                .push((b, u64::from(counts[b as usize])));
        }
        let mut per_crashed: Vec<Vec<u32>> = vec![Vec::new(); self.links.len()];
        for &b in crashed {
            per_crashed[shard_of(b, self.n, self.shards) as usize].push(b);
        }
        // Request wave out…
        for (s, link) in self.links.iter_mut().enumerate() {
            link.send(&Frame::Grants {
                round: ctx.round,
                active: ctx.active,
                placed: ctx.placed,
                counts: std::mem::take(&mut per_counts[s]),
                crashed: std::mem::take(&mut per_crashed[s]),
            })?;
        }
        // Settle the previous round's deferred commit acks only now —
        // this round's requests were routed and serialized while the
        // workers were still applying that commit.
        self.collect_pending_commit()?;
        // …replies back, merged in shard order (the barrier).
        let mut underloaded = 0u32;
        let mut unfilled = 0u64;
        for link in self.links.iter_mut() {
            match link.recv()? {
                Frame::GrantsOk {
                    round,
                    accept: pairs,
                    underloaded: ub,
                    unfilled: uw,
                } if round == ctx.round => {
                    for (bin, a) in pairs {
                        let slot = accept.get_mut(bin as usize).ok_or_else(|| {
                            CoreError::ClusterTransport {
                                shard: link.shard(),
                                detail: format!("grant for bin {bin} out of range"),
                            }
                        })?;
                        *slot = u32::try_from(a).map_err(|_| CoreError::ClusterTransport {
                            shard: link.shard(),
                            detail: format!("grant for bin {bin} exceeds u32"),
                        })?;
                    }
                    underloaded += ub;
                    unfilled += uw;
                }
                other => {
                    return Err(CoreError::ClusterTransport {
                        shard: link.shard(),
                        detail: format!(
                            "expected grants_ok for round {}, got {}",
                            ctx.round,
                            other.tag()
                        ),
                    });
                }
            }
        }
        self.barriers += 1;
        Ok((underloaded, unfilled))
    }

    fn round_commit(
        &mut self,
        ctx: &RoundContext,
        record: &RoundRecord,
        loads: &[u32],
    ) -> Result<()> {
        // Ship only the bins that changed since the last commit.
        let mut per: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.links.len()];
        for (b, (&new, old)) in loads.iter().zip(self.shadow.iter_mut()).enumerate() {
            if new != *old {
                per[shard_of(b as u32, self.n, self.shards) as usize]
                    .push((b as u32, u64::from(new)));
                *old = new;
            }
        }
        for (s, link) in self.links.iter_mut().enumerate() {
            link.send(&Frame::Commit {
                round: ctx.round,
                loads: std::mem::take(&mut per[s]),
                record: *record,
            })?;
        }
        let wants: Vec<u64> = (0..self.shards)
            .map(|s| {
                let (lo, hi) = (
                    shard_lo(s, self.n, self.shards) as usize,
                    shard_lo(s + 1, self.n, self.shards) as usize,
                );
                loads[lo..hi].iter().map(|&l| u64::from(l)).sum()
            })
            .collect();
        if self.overlap {
            // Defer the ack barrier one wave: the workers apply this
            // commit while the engine resolves the next round.
            self.pending_commit = Some((ctx.round, wants));
        } else {
            self.collect_commit_acks(ctx.round, &wants)?;
        }
        self.barriers += 1;
        Ok(())
    }
}

/// Runs the registry-constructed protocol through the simulator with the
/// cluster delegate attached, handing the delegate (and its links) back.
struct ClusterRunVisitor {
    sim: Simulator,
    delegate: EngineDelegate,
}

impl ProtocolVisitor for ClusterRunVisitor {
    type Output = (Result<RunOutcome>, EngineDelegate);

    fn visit<P: RoundProtocol + 'static>(mut self, mut protocol: P) -> Self::Output {
        let run = self
            .sim
            .run_mut_with_delegate(&mut protocol, Some(&mut self.delegate));
        (run, self.delegate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_and_matches_domain_striping() {
        for &(n, s) in &[(10u32, 4u32), (64, 1), (64, 2), (7, 7), (100, 3), (64, 64)] {
            assert_eq!(shard_lo(0, n, s), 0);
            assert_eq!(shard_lo(s, n, s), n);
            let plan = FaultPlan::new(0).with_shard_failures(s.min(64), 0.1);
            for b in 0..n {
                let owner = shard_of(b, n, s);
                assert!(shard_lo(owner, n, s) <= b && b < shard_lo(owner + 1, n, s));
                if s <= 64 {
                    assert_eq!(owner, plan.domain_of(b, n), "bin {b} of {n} over {s}");
                }
            }
        }
    }

    #[test]
    fn engine_cluster_matches_single_process_run() {
        let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
        let single = Simulator::new(spec, RunConfig::seeded(11))
            .run_mut_with_delegate(
                &mut pba_protocols::Collision::with_params(
                    spec,
                    2,
                    2 * spec.ceil_avg().saturating_add(2).min(u32::MAX / 2),
                ),
                None,
            )
            .unwrap();
        for shards in [1u32, 3] {
            let out = ClusterConfig::engine("collision", spec, 11)
                .with_shards(shards)
                .run_local()
                .unwrap();
            let run = out.run.expect("engine outcome");
            assert_eq!(run.loads, single.loads, "{shards} shards");
            assert_eq!(run.rounds, single.rounds);
            assert_eq!(run.messages, single.messages);
        }
    }

    #[test]
    fn stream_cluster_matches_in_process_allocator() {
        let batches = 6u64;
        let mut reference = StreamAllocator::new(48, 9, PolicyKind::BatchedTwoChoice);
        let mut w = Workload::new(WorkloadCfg::uniform(96), 9);
        for _ in 0..batches {
            reference.ingest(&w.next_batch());
        }
        let out = ClusterConfig::stream(PolicyKind::BatchedTwoChoice, 48, 9, batches, 96)
            .with_shards(4)
            .run_local()
            .unwrap();
        assert_eq!(out.loads, reference.bin_state().load_vector());
        assert_eq!(out.batches, batches);
    }
}
