//! Shard transports: one [`Transport`] trait, three ways to reach a
//! worker, one overlapped send path.
//!
//! A [`ShardLink`] is the orchestrator's channel to one shard worker.
//! It speaks either wire codec (see [`crate::wire`]) over any
//! transport:
//!
//! * [`LocalTransport`] — run [`crate::worker::serve`] on a thread over
//!   in-memory byte pipes with pipe semantics (blocking reads, EOF on
//!   writer drop, `BrokenPipe` after a kill). `std::io::pipe` landed in
//!   Rust 1.87; the workspace floor is 1.85, so the pipes are
//!   hand-rolled on `Mutex` + `Condvar`.
//! * [`PipeTransport`] — spawn a real OS process (the `pba-run
//!   shard-worker` child mode) and speak over its stdin/stdout pipes.
//! * [`SocketTransport`] — connect to a worker over TCP or a
//!   Unix-domain socket. The orchestrator can manage the worker itself
//!   (spawn `pba-run shard-worker --listen <path>` and connect) or
//!   attach to pre-started workers at given addresses.
//!
//! Every transport surfaces the same failure mode: killing the peer
//! makes subsequent sends/receives fail, which the orchestrator detects
//! as a dead link — that detection, not any bookkeeping flag, is what
//! drives the chaos-path redirect.
//!
//! ## Overlapped send
//!
//! By default each link owns a **sender thread** behind a bounded
//! two-slot queue: [`ShardLink::send`] serializes the frame, enqueues
//! the bytes, and returns immediately, so the orchestrator can
//! serialize wave *k+1* (and run its own half of the kernel) while wave
//! *k* is still being written to the OS. The queue preserves FIFO
//! order, so barrier semantics are untouched — replies are still
//! awaited in shard order, one wave behind at most (see the deferred
//! ack collection in `orchestrator.rs`). Write failures park in an
//! error slot and surface at the next `send`/`recv` on the link.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pba_core::{CoreError, Result};

use crate::wire::{read_frame, Frame, WireFormat};
use crate::worker;

/// Depth of the per-link send queue: the wave in flight plus one being
/// serialized. Two is enough to hide serialization behind the kernel
/// without letting the orchestrator run unboundedly ahead.
pub const SEND_QUEUE_DEPTH: usize = 2;

/// Shared state of one in-memory pipe direction.
#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    /// Writer dropped: reads drain the buffer, then return EOF.
    closed: bool,
    /// Peer killed: reads and writes fail with `BrokenPipe` immediately.
    broken: bool,
}

/// One unidirectional in-memory pipe.
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    fn sever(&self) {
        let mut st = self.state.lock().unwrap();
        st.broken = true;
        self.readable.notify_all();
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.readable.notify_all();
    }
}

/// Write half of an in-memory pipe.
pub struct PipeWriter(Arc<Pipe>);

/// Read half of an in-memory pipe.
pub struct PipeReader(Arc<Pipe>);

/// A connected in-memory pipe pair.
pub fn mem_pipe() -> (PipeWriter, PipeReader) {
    let p = Arc::new(Pipe::default());
    (PipeWriter(p.clone()), PipeReader(p))
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap();
        if st.broken {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe severed"));
        }
        st.buf.extend(data);
        self.0.readable.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let take = st.buf.len().min(out.len());
                for slot in out.iter_mut().take(take) {
                    *slot = st.buf.pop_front().expect("len checked");
                }
                return Ok(take);
            }
            if st.broken {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe severed"));
            }
            if st.closed {
                return Ok(0);
            }
            st = self.0.readable.wait(st).unwrap();
        }
    }
}

/// A live duplex channel to one shard worker. Implementations hand the
/// two halves to the [`ShardLink`] once; `kill` must make both halves
/// fail (and wake any blocked peer), because the write half may be
/// owned by a sender thread at that point.
pub trait Transport: Send {
    /// Transport name for diagnostics: `"local"`, `"pipe"`, `"socket"`.
    fn kind(&self) -> &'static str;

    /// Take the write half. Called exactly once, before any I/O.
    fn take_writer(&mut self) -> Box<dyn Write + Send>;

    /// Take the buffered read half. Called exactly once, before any I/O.
    fn take_reader(&mut self) -> Box<dyn BufRead + Send>;

    /// Forcibly sever the channel: subsequent operations on the taken
    /// halves fail, a blocked peer wakes up, a managed peer is killed.
    fn kill(&mut self);

    /// Reap the peer after the conversation ended (or after `kill`).
    /// Idempotent. `killed` suppresses exit-status complaints — a
    /// killed worker dying messily is the expected chaos outcome.
    fn reap(&mut self, killed: bool) -> std::result::Result<(), String>;
}

/// Worker thread over in-memory pipes.
pub struct LocalTransport {
    handle: Option<JoinHandle<std::result::Result<(), String>>>,
    to_worker: Arc<Pipe>,
    from_worker: Arc<Pipe>,
    writer: Option<PipeWriter>,
    reader: Option<PipeReader>,
}

impl LocalTransport {
    /// Spawn [`worker::serve`] on a thread connected by in-memory pipes.
    pub fn spawn(shard: u32) -> Self {
        let (orch_w, worker_r) = mem_pipe();
        let (worker_w, orch_r) = mem_pipe();
        let to_worker = worker_r.0.clone();
        let from_worker = orch_r.0.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pba-shard-{shard}"))
            .spawn(move || worker::serve(BufReader::new(worker_r), worker_w))
            .expect("spawn shard worker thread");
        LocalTransport {
            handle: Some(handle),
            to_worker,
            from_worker,
            writer: Some(orch_w),
            reader: Some(orch_r),
        }
    }
}

impl Transport for LocalTransport {
    fn kind(&self) -> &'static str {
        "local"
    }

    fn take_writer(&mut self) -> Box<dyn Write + Send> {
        Box::new(self.writer.take().expect("writer taken once"))
    }

    fn take_reader(&mut self) -> Box<dyn BufRead + Send> {
        Box::new(BufReader::new(
            self.reader.take().expect("reader taken once"),
        ))
    }

    fn kill(&mut self) {
        self.to_worker.sever();
        self.from_worker.sever();
    }

    fn reap(&mut self, killed: bool) -> std::result::Result<(), String> {
        if let Some(h) = self.handle.take() {
            let outcome = h.join().map_err(|_| "worker thread panicked".to_string())?;
            if let (Err(detail), false) = (outcome, killed) {
                return Err(format!("worker exited with error: {detail}"));
            }
        }
        Ok(())
    }
}

/// Real child process over stdin/stdout pipes.
pub struct PipeTransport {
    child: Option<Child>,
    stdin: Option<Box<dyn Write + Send>>,
    stdout: Option<Box<dyn BufRead + Send>>,
}

impl PipeTransport {
    /// Spawn `exe shard-worker` piped on stdin/stdout (stderr passes
    /// through for diagnostics).
    pub fn spawn(shard: u32, exe: &Path) -> Result<Self> {
        let mut child = Command::new(exe)
            .arg("shard-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| CoreError::ClusterTransport {
                shard,
                detail: format!("failed to spawn worker {}: {e}", exe.display()),
            })?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        Ok(PipeTransport {
            child: Some(child),
            stdin: Some(Box::new(stdin)),
            stdout: Some(Box::new(BufReader::new(stdout))),
        })
    }
}

impl Transport for PipeTransport {
    fn kind(&self) -> &'static str {
        "pipe"
    }

    fn take_writer(&mut self) -> Box<dyn Write + Send> {
        self.stdin.take().expect("writer taken once")
    }

    fn take_reader(&mut self) -> Box<dyn BufRead + Send> {
        self.stdout.take().expect("reader taken once")
    }

    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn reap(&mut self, killed: bool) -> std::result::Result<(), String> {
        if let Some(mut child) = self.child.take() {
            let status = child.wait().map_err(|e| format!("wait failed: {e}"))?;
            if !status.success() && !killed {
                return Err(format!("worker exited with {status}"));
            }
        }
        Ok(())
    }
}

/// Either flavor of stream socket, unified for the read/write halves.
enum SocketStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl SocketStream {
    fn connect(addr: &str) -> io::Result<SocketStream> {
        if is_unix_addr(addr) {
            #[cfg(unix)]
            return Ok(SocketStream::Unix(UnixStream::connect(addr)?));
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            ));
        }
        Ok(SocketStream::Tcp(TcpStream::connect(addr)?))
    }

    fn split(&self) -> io::Result<(Box<dyn Write + Send>, Box<dyn BufRead + Send>)> {
        match self {
            SocketStream::Tcp(s) => {
                let w = s.try_clone()?;
                let r = s.try_clone()?;
                Ok((Box::new(w), Box::new(BufReader::new(r))))
            }
            #[cfg(unix)]
            SocketStream::Unix(s) => {
                let w = s.try_clone()?;
                let r = s.try_clone()?;
                Ok((Box::new(w), Box::new(BufReader::new(r))))
            }
        }
    }

    fn shutdown(&self) {
        match self {
            SocketStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            SocketStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

/// An address names a Unix-domain socket when it looks like a path;
/// anything else is `host:port` TCP.
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/') || addr.starts_with('.')
}

/// Worker over a TCP or Unix-domain stream socket — either a child this
/// transport spawned with `shard-worker --listen`, or a pre-started
/// worker it merely connected to.
pub struct SocketTransport {
    stream: SocketStream,
    write_half: Option<Box<dyn Write + Send>>,
    read_half: Option<Box<dyn BufRead + Send>>,
    child: Option<Child>,
    /// Socket file to clean up (managed Unix-domain workers).
    path: Option<PathBuf>,
}

impl SocketTransport {
    /// Spawn `exe shard-worker --listen <socket>` on a fresh Unix-domain
    /// socket path and connect to it (retrying while the child binds).
    pub fn spawn(shard: u32, exe: &Path) -> Result<Self> {
        let sock =
            std::env::temp_dir().join(format!("pba-worker-{}-{shard}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let child = Command::new(exe)
            .arg("shard-worker")
            .arg("--listen")
            .arg(&sock)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| CoreError::ClusterTransport {
                shard,
                detail: format!("failed to spawn socket worker {}: {e}", exe.display()),
            })?;
        let mut child = Some(child);
        let addr = sock.to_string_lossy().into_owned();
        // The child needs a moment to bind; a dead child means we stop
        // retrying immediately instead of timing out.
        let mut last_err = String::new();
        for _ in 0..250 {
            match SocketStream::connect(&addr) {
                Ok(stream) => {
                    return Self::from_stream(shard, stream, child, Some(sock));
                }
                Err(e) => last_err = e.to_string(),
            }
            if let Some(c) = &mut child {
                if let Ok(Some(status)) = c.try_wait() {
                    let _ = std::fs::remove_file(&sock);
                    return Err(CoreError::ClusterTransport {
                        shard,
                        detail: format!("socket worker exited with {status} before accepting"),
                    });
                }
            }
            std::thread::sleep(Duration::from_millis(4));
        }
        if let Some(mut c) = child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_file(&sock);
        Err(CoreError::ClusterTransport {
            shard,
            detail: format!("socket worker never accepted on {addr}: {last_err}"),
        })
    }

    /// Connect to a pre-started worker listening at `addr` (a `/`-ful
    /// path means Unix-domain, anything else `host:port` TCP).
    pub fn connect(shard: u32, addr: &str) -> Result<Self> {
        let stream = SocketStream::connect(addr).map_err(|e| CoreError::ClusterTransport {
            shard,
            detail: format!("connect to worker at {addr} failed: {e}"),
        })?;
        Self::from_stream(shard, stream, None, None)
    }

    fn from_stream(
        shard: u32,
        stream: SocketStream,
        child: Option<Child>,
        path: Option<PathBuf>,
    ) -> Result<Self> {
        let (write_half, read_half) = stream.split().map_err(|e| CoreError::ClusterTransport {
            shard,
            detail: format!("socket clone failed: {e}"),
        })?;
        Ok(SocketTransport {
            stream,
            write_half: Some(write_half),
            read_half: Some(read_half),
            child,
            path,
        })
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> &'static str {
        "socket"
    }

    fn take_writer(&mut self) -> Box<dyn Write + Send> {
        self.write_half.take().expect("writer taken once")
    }

    fn take_reader(&mut self) -> Box<dyn BufRead + Send> {
        self.read_half.take().expect("reader taken once")
    }

    fn kill(&mut self) {
        self.stream.shutdown();
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn reap(&mut self, killed: bool) -> std::result::Result<(), String> {
        let outcome = if let Some(mut child) = self.child.take() {
            let status = child.wait().map_err(|e| format!("wait failed: {e}"))?;
            if !status.success() && !killed {
                Err(format!("worker exited with {status}"))
            } else {
                Ok(())
            }
        } else {
            Ok(())
        };
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
        outcome
    }
}

/// The write side of a link: either direct blocking writes, or the
/// bounded overlapped sender thread.
enum SendHalf {
    Sync(Box<dyn Write + Send>),
    Overlapped {
        tx: Option<SyncSender<Vec<u8>>>,
        err: Arc<Mutex<Option<String>>>,
        handle: Option<JoinHandle<()>>,
    },
    Closed,
}

/// The orchestrator's channel to one shard worker, with wire accounting.
pub struct ShardLink {
    shard: u32,
    wire: WireFormat,
    sender: SendHalf,
    reader: Box<dyn BufRead + Send>,
    transport: Box<dyn Transport>,
    alive: bool,
    /// Frames the orchestrator sent over this link.
    pub frames_sent: u64,
    /// Frames the orchestrator received over this link.
    pub frames_recv: u64,
    /// Bytes sent (complete frames, envelope/newline included).
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// True once [`ShardLink::kill`] ran.
    pub killed: bool,
}

impl ShardLink {
    /// Wrap a connected transport. `overlap` arms the two-slot sender
    /// thread; without it every send is a blocking write.
    pub fn new(
        shard: u32,
        mut transport: Box<dyn Transport>,
        wire: WireFormat,
        overlap: bool,
    ) -> ShardLink {
        let mut writer = transport.take_writer();
        let reader = transport.take_reader();
        let sender = if overlap {
            let err = Arc::new(Mutex::new(None::<String>));
            let err_slot = err.clone();
            let (tx, rx) = sync_channel::<Vec<u8>>(SEND_QUEUE_DEPTH);
            let handle = std::thread::Builder::new()
                .name(format!("pba-send-{shard}"))
                .spawn(move || {
                    let mut failed = false;
                    // Keep draining after a failure so enqueuers never
                    // block on a dead link; the error is already parked.
                    for buf in rx {
                        if failed {
                            continue;
                        }
                        if let Err(e) = writer.write_all(&buf).and_then(|()| writer.flush()) {
                            *err_slot.lock().unwrap() = Some(e.to_string());
                            failed = true;
                        }
                    }
                    // Dropping the writer here closes the worker's stdin
                    // (EOF) once everything queued has been written.
                })
                .expect("spawn link sender thread");
            SendHalf::Overlapped {
                tx: Some(tx),
                err,
                handle: Some(handle),
            }
        } else {
            SendHalf::Sync(writer)
        };
        ShardLink {
            shard,
            wire,
            sender,
            reader,
            transport,
            alive: true,
            frames_sent: 0,
            frames_recv: 0,
            bytes_sent: 0,
            bytes_recv: 0,
            killed: false,
        }
    }

    /// Worker thread over in-memory pipes (tests, `--local` runs).
    pub fn local(shard: u32, wire: WireFormat, overlap: bool) -> ShardLink {
        ShardLink::new(shard, Box::new(LocalTransport::spawn(shard)), wire, overlap)
    }

    /// Worker child process over stdin/stdout pipes.
    pub fn process(shard: u32, exe: &Path, wire: WireFormat, overlap: bool) -> Result<ShardLink> {
        Ok(ShardLink::new(
            shard,
            Box::new(PipeTransport::spawn(shard, exe)?),
            wire,
            overlap,
        ))
    }

    /// Managed socket worker: spawn `exe shard-worker --listen` on a
    /// fresh Unix-domain socket and connect.
    pub fn socket(shard: u32, exe: &Path, wire: WireFormat, overlap: bool) -> Result<ShardLink> {
        Ok(ShardLink::new(
            shard,
            Box::new(SocketTransport::spawn(shard, exe)?),
            wire,
            overlap,
        ))
    }

    /// Pre-started socket worker at `addr` (TCP `host:port`, or a
    /// Unix-domain socket path).
    pub fn socket_connect(
        shard: u32,
        addr: &str,
        wire: WireFormat,
        overlap: bool,
    ) -> Result<ShardLink> {
        Ok(ShardLink::new(
            shard,
            Box::new(SocketTransport::connect(shard, addr)?),
            wire,
            overlap,
        ))
    }

    /// This link's shard index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The codec this link speaks.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// The transport flavor ("local", "pipe", "socket").
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// True until [`ShardLink::kill`] or an observed transport failure.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    fn transport_err(&self, detail: String) -> CoreError {
        CoreError::ClusterTransport {
            shard: self.shard,
            detail,
        }
    }

    /// A write failure parked by the sender thread, if any.
    fn parked_error(&self) -> Option<String> {
        match &self.sender {
            SendHalf::Overlapped { err, .. } => err.lock().unwrap().clone(),
            _ => None,
        }
    }

    /// Send one frame: serialize, then either write through (sync) or
    /// enqueue on the sender thread (overlapped — returns as soon as a
    /// queue slot is free, at most [`SEND_QUEUE_DEPTH`] waves ahead).
    pub fn send(&mut self, frame: &Frame) -> Result<()> {
        let bytes = frame.encode_wire(self.wire);
        let len = bytes.len();
        match &mut self.sender {
            SendHalf::Sync(writer) => {
                writer
                    .write_all(&bytes)
                    .and_then(|()| writer.flush())
                    .map_err(|e| {
                        self.alive = false;
                        CoreError::ClusterTransport {
                            shard: self.shard,
                            detail: format!("send {} failed: {e}", frame.tag()),
                        }
                    })?;
            }
            SendHalf::Overlapped { tx, err, .. } => {
                let parked = err.lock().unwrap().clone();
                if let Some(detail) = parked {
                    self.alive = false;
                    return Err(CoreError::ClusterTransport {
                        shard: self.shard,
                        detail: format!("send {} failed: {detail}", frame.tag()),
                    });
                }
                let sent = tx
                    .as_ref()
                    .map(|tx| tx.send(bytes).is_ok())
                    .unwrap_or(false);
                if !sent {
                    self.alive = false;
                    return Err(CoreError::ClusterTransport {
                        shard: self.shard,
                        detail: format!("send {} failed: sender gone", frame.tag()),
                    });
                }
            }
            SendHalf::Closed => {
                self.alive = false;
                return Err(CoreError::ClusterTransport {
                    shard: self.shard,
                    detail: format!("send {} on closed link", frame.tag()),
                });
            }
        }
        self.frames_sent += 1;
        self.bytes_sent += len as u64;
        Ok(())
    }

    /// Receive one frame (either codec — the lead byte disambiguates).
    /// EOF, unreadable frames, and worker-reported `error` frames all
    /// surface as [`CoreError::ClusterTransport`].
    pub fn recv(&mut self) -> Result<Frame> {
        let got = read_frame(self.reader.as_mut()).map_err(|e| {
            self.alive = false;
            let parked = self
                .parked_error()
                .map(|p| format!(" (send side: {p})"))
                .unwrap_or_default();
            CoreError::ClusterTransport {
                shard: self.shard,
                detail: format!("unreadable reply: {e}{parked}"),
            }
        })?;
        let Some((frame, bytes, _)) = got else {
            self.alive = false;
            let parked = self
                .parked_error()
                .map(|p| format!(" (send side: {p})"))
                .unwrap_or_default();
            return Err(self.transport_err(format!("shard closed the pipe (EOF){parked}")));
        };
        self.frames_recv += 1;
        self.bytes_recv += bytes as u64;
        if let Frame::Error { detail } = frame {
            self.alive = false;
            return Err(self.transport_err(format!("worker error: {detail}")));
        }
        Ok(frame)
    }

    /// Kill the shard: sever the transport (and any managed peer). The
    /// next send/recv observes a dead link; a blocked sender thread
    /// fails out and parks its error.
    pub fn kill(&mut self) {
        self.transport.kill();
        self.killed = true;
        self.alive = false;
    }

    /// Drop the send half: joins the sender thread (flushing anything
    /// queued) and closes the peer's input so it sees EOF.
    fn close_sender(&mut self) {
        match &mut self.sender {
            SendHalf::Overlapped { tx, handle, .. } => {
                tx.take();
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
            }
            SendHalf::Sync(_) | SendHalf::Closed => {}
        }
        self.sender = SendHalf::Closed;
    }

    /// Clean teardown: `shutdown` → `bye`, then reap the worker. Errors
    /// are reported (a worker that fails to exit cleanly is a bug), but
    /// a killed link just reaps.
    pub fn finish(&mut self) -> Result<()> {
        if self.alive {
            self.send(&Frame::Shutdown)?;
            match self.recv()? {
                Frame::Bye { .. } => {}
                other => {
                    return Err(self.transport_err(format!("expected bye, got {}", other.tag())));
                }
            }
            self.alive = false;
        }
        self.close_sender();
        self.transport
            .reap(self.killed)
            .map_err(|detail| CoreError::ClusterTransport {
                shard: self.shard,
                detail,
            })
    }
}

impl Drop for ShardLink {
    fn drop(&mut self) {
        // Never leave a live worker behind on an error path.
        if self.alive {
            self.kill();
        }
        self.close_sender();
        let _ = self.transport.reap(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pipe_delivers_lines_in_order() {
        let (mut w, r) = mem_pipe();
        let t = std::thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(r).lines() {
                lines.push(line.unwrap());
            }
            lines
        });
        w.write_all(b"one\ntwo\n").unwrap();
        drop(w); // EOF
        assert_eq!(t.join().unwrap(), vec!["one", "two"]);
    }

    #[test]
    fn severed_pipe_breaks_both_ends() {
        let (mut w, mut r) = mem_pipe();
        w.0.sever();
        assert_eq!(w.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn blocked_reader_wakes_on_sever() {
        let (w, mut r) = mem_pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            r.read(&mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.0.sever();
        assert_eq!(
            t.join().unwrap().unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn unix_addr_detection() {
        assert!(is_unix_addr("/tmp/worker.sock"));
        assert!(is_unix_addr("./worker.sock"));
        assert!(!is_unix_addr("127.0.0.1:9000"));
        assert!(!is_unix_addr("localhost:9000"));
    }

    #[test]
    fn overlapped_sender_parks_write_errors() {
        // A local link whose pipes are severed under the sender thread:
        // the enqueue succeeds, the error surfaces on the next call.
        let mut link = ShardLink::local(0, WireFormat::Binary, true);
        link.transport.kill();
        link.send(&Frame::Drain).ok(); // may or may not observe it yet
        let mut saw_error = false;
        for _ in 0..100 {
            if link.send(&Frame::Drain).is_err() {
                saw_error = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(saw_error, "severed link never surfaced the write error");
        link.killed = true; // suppress exit-status complaints in Drop
    }
}
