//! Shard transports: framed lines over real pipes.
//!
//! A [`ShardLink`] is the orchestrator's half-duplex channel to one shard
//! worker. Two transports exist:
//!
//! * [`ShardLink::process`] — spawn a real OS process (the `pba-run
//!   shard-worker` child mode) and speak over its stdin/stdout pipes.
//! * [`ShardLink::local`] — run [`crate::worker::serve`] on a thread over
//!   in-memory byte pipes with pipe semantics (blocking reads, EOF on
//!   writer drop, `BrokenPipe` after a kill). `std::io::pipe` landed in
//!   Rust 1.87; the workspace floor is 1.85, so the pipes are hand-rolled
//!   on `Mutex` + `Condvar`.
//!
//! Both transports surface the same failure mode: killing the peer makes
//! subsequent sends/receives fail, which the orchestrator detects as a
//! dead pipe — that detection, not any bookkeeping flag, is what drives
//! the chaos-path redirect.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pba_core::{CoreError, Result};

use crate::wire::Frame;
use crate::worker;

/// Shared state of one in-memory pipe direction.
#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    /// Writer dropped: reads drain the buffer, then return EOF.
    closed: bool,
    /// Peer killed: reads and writes fail with `BrokenPipe` immediately.
    broken: bool,
}

/// One unidirectional in-memory pipe.
#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    fn sever(&self) {
        let mut st = self.state.lock().unwrap();
        st.broken = true;
        self.readable.notify_all();
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.readable.notify_all();
    }
}

/// Write half of an in-memory pipe.
pub struct PipeWriter(Arc<Pipe>);

/// Read half of an in-memory pipe.
pub struct PipeReader(Arc<Pipe>);

/// A connected in-memory pipe pair.
pub fn mem_pipe() -> (PipeWriter, PipeReader) {
    let p = Arc::new(Pipe::default());
    (PipeWriter(p.clone()), PipeReader(p))
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap();
        if st.broken {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe severed"));
        }
        st.buf.extend(data);
        self.0.readable.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let take = st.buf.len().min(out.len());
                for slot in out.iter_mut().take(take) {
                    *slot = st.buf.pop_front().expect("len checked");
                }
                return Ok(take);
            }
            if st.broken {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe severed"));
            }
            if st.closed {
                return Ok(0);
            }
            st = self.0.readable.wait(st).unwrap();
        }
    }
}

/// What backs a [`ShardLink`].
enum LinkKind {
    /// Worker thread over in-memory pipes. The pipe handles let
    /// [`ShardLink::kill`] sever both directions.
    Local {
        handle: Option<JoinHandle<std::result::Result<(), String>>>,
        to_worker: Arc<Pipe>,
        from_worker: Arc<Pipe>,
    },
    /// Real child process over stdin/stdout.
    Process { child: Child },
}

/// The orchestrator's channel to one shard worker, with wire accounting.
pub struct ShardLink {
    shard: u32,
    writer: Box<dyn Write + Send>,
    reader: Box<dyn BufRead + Send>,
    kind: LinkKind,
    alive: bool,
    /// Frames the orchestrator sent over this link.
    pub frames_sent: u64,
    /// Frames the orchestrator received over this link.
    pub frames_recv: u64,
    /// Bytes sent (framed lines, newline included).
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// True once [`ShardLink::kill`] ran.
    pub killed: bool,
}

impl ShardLink {
    /// Spawn [`worker::serve`] on a thread connected by in-memory pipes.
    pub fn local(shard: u32) -> ShardLink {
        let (orch_w, worker_r) = mem_pipe();
        let (worker_w, orch_r) = mem_pipe();
        let to_worker = worker_r.0.clone();
        let from_worker = orch_r.0.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pba-shard-{shard}"))
            .spawn(move || worker::serve(BufReader::new(worker_r), worker_w))
            .expect("spawn shard worker thread");
        ShardLink {
            shard,
            writer: Box::new(orch_w),
            reader: Box::new(BufReader::new(orch_r)),
            kind: LinkKind::Local {
                handle: Some(handle),
                to_worker,
                from_worker,
            },
            alive: true,
            frames_sent: 0,
            frames_recv: 0,
            bytes_sent: 0,
            bytes_recv: 0,
            killed: false,
        }
    }

    /// Spawn `exe shard-worker` as a child process piped on stdin/stdout
    /// (stderr passes through for diagnostics).
    pub fn process(shard: u32, exe: &Path) -> Result<ShardLink> {
        let mut child = Command::new(exe)
            .arg("shard-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| CoreError::ClusterTransport {
                shard,
                detail: format!("failed to spawn worker {}: {e}", exe.display()),
            })?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        Ok(ShardLink {
            shard,
            writer: Box::new(stdin),
            reader: Box::new(BufReader::new(stdout)),
            kind: LinkKind::Process { child },
            alive: true,
            frames_sent: 0,
            frames_recv: 0,
            bytes_sent: 0,
            bytes_recv: 0,
            killed: false,
        })
    }

    /// This link's shard index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// True until [`ShardLink::kill`] or an observed transport failure.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    fn transport_err(&self, detail: String) -> CoreError {
        CoreError::ClusterTransport {
            shard: self.shard,
            detail,
        }
    }

    /// Send one frame (line-framed, flushed).
    pub fn send(&mut self, frame: &Frame) -> Result<()> {
        let mut line = frame.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| {
                self.alive = false;
                self.transport_err(format!("send {} failed: {e}", frame.tag()))
            })?;
        self.frames_sent += 1;
        self.bytes_sent += line.len() as u64;
        Ok(())
    }

    /// Receive one frame. EOF, unreadable lines, and worker-reported
    /// `error` frames all surface as
    /// [`CoreError::ClusterTransport`].
    pub fn recv(&mut self) -> Result<Frame> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line).map_err(|e| {
            self.alive = false;
            self.transport_err(format!("recv failed: {e}"))
        })?;
        if read == 0 {
            self.alive = false;
            return Err(self.transport_err("shard closed the pipe (EOF)".into()));
        }
        self.frames_recv += 1;
        self.bytes_recv += read as u64;
        let frame = Frame::decode(&line)
            .map_err(|e| self.transport_err(format!("unreadable reply: {e}")))?;
        if let Frame::Error { detail } = frame {
            self.alive = false;
            return Err(self.transport_err(format!("worker error: {detail}")));
        }
        Ok(frame)
    }

    /// Kill the shard: sever the pipes (local) or kill the process. The
    /// next send/recv observes a dead pipe.
    pub fn kill(&mut self) {
        match &mut self.kind {
            LinkKind::Local {
                to_worker,
                from_worker,
                ..
            } => {
                to_worker.sever();
                from_worker.sever();
            }
            LinkKind::Process { child } => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        self.killed = true;
        self.alive = false;
    }

    /// Clean teardown: `shutdown` → `bye`, then reap the worker. Errors
    /// are reported (a worker that fails to exit cleanly is a bug), but
    /// a killed link just reaps.
    pub fn finish(&mut self) -> Result<()> {
        if self.alive {
            self.send(&Frame::Shutdown)?;
            match self.recv()? {
                Frame::Bye { .. } => {}
                other => {
                    return Err(self.transport_err(format!("expected bye, got {}", other.tag())));
                }
            }
            self.alive = false;
        }
        match &mut self.kind {
            LinkKind::Local { handle, .. } => {
                if let Some(h) = handle.take() {
                    // A killed worker exits with a pipe error; that is the
                    // expected chaos outcome, not a failure.
                    let outcome = h.join().map_err(|_| CoreError::ClusterTransport {
                        shard: self.shard,
                        detail: "worker thread panicked".into(),
                    })?;
                    if let (Err(detail), false) = (outcome, self.killed) {
                        return Err(CoreError::ClusterTransport {
                            shard: self.shard,
                            detail: format!("worker exited with error: {detail}"),
                        });
                    }
                }
            }
            LinkKind::Process { child } => {
                let status = child.wait().map_err(|e| CoreError::ClusterTransport {
                    shard: self.shard,
                    detail: format!("wait failed: {e}"),
                })?;
                if !status.success() && !self.killed {
                    return Err(CoreError::ClusterTransport {
                        shard: self.shard,
                        detail: format!("worker exited with {status}"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Drop for ShardLink {
    fn drop(&mut self) {
        // Never leave a live worker behind on an error path.
        if self.alive {
            self.kill();
        }
        if let LinkKind::Local { handle, .. } = &mut self.kind {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pipe_delivers_lines_in_order() {
        let (mut w, r) = mem_pipe();
        let t = std::thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(r).lines() {
                lines.push(line.unwrap());
            }
            lines
        });
        w.write_all(b"one\ntwo\n").unwrap();
        drop(w); // EOF
        assert_eq!(t.join().unwrap(), vec!["one", "two"]);
    }

    #[test]
    fn severed_pipe_breaks_both_ends() {
        let (mut w, mut r) = mem_pipe();
        w.0.sever();
        assert_eq!(w.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn blocked_reader_wakes_on_sever() {
        let (w, mut r) = mem_pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            r.read(&mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        w.0.sever();
        assert_eq!(
            t.join().unwrap().unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
