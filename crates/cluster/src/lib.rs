//! # `pba-cluster` — multi-process cluster mode
//!
//! Distributes a balanced-allocation run over shard workers that own
//! disjoint, contiguous bin ranges and communicate over **real message
//! passing**: checksummed binary frames (default) or line-delimited JSON
//! (`--wire json`, the debug/compat path) over stdin/stdout pipes (child
//! processes), TCP/Unix-domain sockets (`shard-worker --listen`), or
//! in-memory pipes with identical semantics (threads). The papers'
//! synchronous-rounds model becomes literal: each round is a request
//! wave, a reply wave, and a commit wave, with a barrier at the
//! orchestrator between waves — and with overlapped sends (default on),
//! wave `k+1` is serialized and written while the workers still chew on
//! wave `k`, without moving any barrier.
//!
//! * [`wire`] — the frame vocabulary and its two codecs (binary frames
//!   on [`pba_core::wire`], JSON lines on [`pba_core::json`]; both
//!   checksummed, no external dependencies).
//! * [`transport`] — the [`Transport`] trait (local threads, child
//!   processes, sockets) and [`ShardLink`]: wire accounting, overlapped
//!   sender threads, and real dead-pipe failure modes.
//! * [`worker`] — the shard side: [`worker::serve`] answers waves using
//!   the same [`grant_slice`](pba_core::exec::grant_slice) kernel the
//!   in-process engine runs.
//! * [`orchestrator`] — [`ClusterConfig`]: the builder that spawns
//!   shards, drives the waves through the engine's
//!   [`GrantDelegate`](pba_core::GrantDelegate) seam (engine mode) or an
//!   authoritative local mirror (stream mode), verifies checksums and
//!   drains, and emits `cluster` metrics events.
//!
//! ## Bit-identity
//!
//! A cluster run is **bit-identical** to the single-process run with the
//! same seed: same final loads, same rounds, same message counts, same
//! fault decisions, for every shard count. See the determinism argument
//! in the [`orchestrator`] docs; the equivalence is enforced by tests
//! and by per-wave checksums plus a drain verification on every run.
//!
//! ## Example
//!
//! ```
//! use pba_core::ProblemSpec;
//! use pba_cluster::ClusterConfig;
//!
//! let spec = ProblemSpec::new(1 << 10, 1 << 5).unwrap();
//! let out = ClusterConfig::engine("collision", spec, 7)
//!     .with_shards(2)
//!     .run_local()
//!     .unwrap();
//! assert!(out.total_frames() > 0);
//! assert!(out.run.unwrap().is_complete());
//! ```

pub mod orchestrator;
pub mod transport;
pub mod wire;
pub mod worker;

pub use orchestrator::{shard_lo, shard_of, ClusterConfig, ClusterOutcome};
pub use transport::{ShardLink, Transport};
pub use wire::{Frame, Hello, WireFormat};
