//! # `pba-runner` — experiment harness
//!
//! Regenerates every reproduced result (experiments E1–E19 of
//! `DESIGN.md`): workload construction, parameter sweeps, seed
//! replication, theory-vs-measured tables, fault-injection specs, and
//! the `pba-run` CLI.
//!
//! ```text
//! pba-run list                 # all experiments with one-line claims
//! pba-run all --scale default  # run everything, print markdown tables
//! pba-run e03 --scale full     # one experiment at full scale
//! pba-run protocol collision --m 65536 --n 65536
//! pba-run stream --policy batched-two-choice --batch 8n
//! ```
//!
//! Every experiment implements [`Experiment`]: it owns its workload
//! definition and returns an [`ExperimentReport`] whose table contains a
//! `paper` column (the theory prediction / scale) next to each `measured`
//! column, so the claim-vs-measurement comparison that `EXPERIMENTS.md`
//! records is produced mechanically.

pub mod experiment;
pub mod experiments;
pub mod faultspec;
pub mod json;
pub mod replicate;
pub mod table;

pub use experiment::{
    all_experiments, experiment_by_id, Experiment, ExperimentReport, PerfSummary, RunOptions, Scale,
};
pub use faultspec::{describe_fault_plan, parse_fault_spec};
pub use json::JsonlTrace;
pub use replicate::{replicate, replicate_outcomes, replicate_outcomes_with, run_once_with};
pub use table::Table;
