//! Minimal hand-rolled JSON emission.
//!
//! The default workspace builds with **zero external dependencies** (no
//! serde), so the runner writes its machine-readable artifacts — the
//! `--trace` JSONL stream and the `pba-run bench` `BENCH_*.json` files —
//! through this tiny escaping/formatting helper instead.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use pba_core::metrics::{
    BatchRecord, MetricsSink, Phase, RoundTiming, RunMeta, RunSummary, StreamMeta,
};
use pba_core::trace::RoundRecord;
use pba_core::{ExecutorKind, FaultRecord};
use pba_par::PoolStats;

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Incremental `{"k": v, …}` builder; keys are emitted in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.buf.is_empty() {
            self.buf.push('{');
        } else {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped = escape(value);
        let buf = self.key(key);
        buf.push('"');
        buf.push_str(&escaped);
        buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key).push_str(&value.to_string());
        self
    }

    /// Add a float field (`null` when not finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let rendered = number(value);
        self.key(key).push_str(&rendered);
        self
    }

    /// Add a pre-rendered JSON value (array, object, literal) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key).push_str(value);
        self
    }

    /// Close the object and return its text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// Render a slice of `u64` as a JSON array.
pub fn u64_array(values: &[u64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// Stable textual form of an executor for JSON fields.
pub fn executor_str(executor: ExecutorKind) -> String {
    match executor {
        ExecutorKind::Sequential => "sequential".into(),
        ExecutorKind::Parallel => "parallel".into(),
        ExecutorKind::ParallelWith(lanes) => format!("parallel({lanes})"),
    }
}

/// Shared meta fields prefixed to every JSONL event.
fn meta_fields(event: &str, meta: &RunMeta) -> JsonObject {
    JsonObject::new()
        .str("event", event)
        .str("protocol", meta.protocol)
        .u64("seed", meta.seed)
        .u64("m", meta.spec.balls())
        .u64("n", meta.spec.bins() as u64)
        .str("executor", &executor_str(meta.executor))
        .u64("lanes", meta.lanes as u64)
}

/// A [`MetricsSink`] that streams every engine event as one JSON object
/// per line (JSON Lines), the format behind `pba-run … --trace out.jsonl`.
///
/// Five event kinds share a file, discriminated by the `"event"` field:
///
/// * `"round"` — the full [`RoundRecord`] plus per-phase nanoseconds
///   (`gather_nanos`, `count_scan_nanos`, `grant_nanos`,
///   `resolve_commit_nanos`, `total_nanos`);
/// * `"fault"` — injected-fault counts for one round ([`FaultRecord`],
///   fault-injected runs only, emitted immediately before that round's
///   `"round"` line and only when at least one fault fired);
/// * `"run"` — end-of-run totals ([`RunSummary`]);
/// * `"pool"` — thread-pool utilization delta ([`PoolStats`], parallel
///   executors only);
/// * `"batch"` — one streaming batch ([`BatchRecord`], `pba-run stream`
///   and the streaming experiments E15–E19).
///
/// Every line carries the run identity (`protocol`, `seed`, `m`, `n`,
/// `executor`, `lanes` — or `policy`, `seed`, `n`, `shards` for batch
/// events), so traces of replicated runs interleave safely.
pub struct JsonlTrace {
    out: Mutex<BufWriter<File>>,
}

impl JsonlTrace {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        // A trace write failing mid-run (disk full) should not abort the
        // simulation; the final flush() reports the error.
        let _ = writeln!(out, "{line}");
    }

    /// Flush buffered lines to disk, surfacing any deferred write error.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl MetricsSink for JsonlTrace {
    fn on_round(&self, meta: &RunMeta, record: &RoundRecord, timing: &RoundTiming) {
        let line = meta_fields("round", meta)
            .u64("round", record.round as u64)
            .u64("active_before", record.active_before)
            .u64("requests", record.requests)
            .u64("granted", record.granted)
            .u64("committed", record.committed)
            .u64("wasted_grants", record.wasted_grants)
            .u64("underloaded_bins", record.underloaded_bins as u64)
            .u64("unfilled_want", record.unfilled_want)
            .u64("max_load", record.max_load as u64)
            .u64("msg_requests", record.messages.requests)
            .u64("msg_responses", record.messages.responses)
            .u64("msg_commits", record.messages.commits)
            .u64("gather_nanos", timing.phase(Phase::Gather))
            .u64("count_scan_nanos", timing.phase(Phase::CountScan))
            .u64("grant_nanos", timing.phase(Phase::Grant))
            .u64("resolve_commit_nanos", timing.phase(Phase::ResolveCommit))
            .u64("total_nanos", timing.total_nanos)
            .finish();
        self.write_line(&line);
    }

    fn on_fault(&self, meta: &RunMeta, record: &FaultRecord) {
        let line = meta_fields("fault", meta)
            .u64("round", record.round as u64)
            .u64("dropped_requests", record.dropped_requests)
            .u64("crash_redraws", record.crash_redraws)
            .u64("crash_lost", record.crash_lost)
            .u64("straggler_balls", record.straggler_balls)
            .u64("deferred_balls", record.deferred_balls)
            .u64("backoff_escalations", record.backoff_escalations)
            .finish();
        self.write_line(&line);
    }

    fn on_run(&self, meta: &RunMeta, summary: &RunSummary) {
        let line = meta_fields("run", meta)
            .u64("rounds", summary.rounds as u64)
            .u64("placed", summary.placed)
            .u64("unallocated", summary.unallocated)
            .u64("wall_nanos", summary.wall_nanos)
            .finish();
        self.write_line(&line);
    }

    fn on_pool(&self, meta: &RunMeta, stats: &PoolStats) {
        let line = meta_fields("pool", meta)
            .u64("jobs", stats.jobs)
            .u64("tasks", stats.tasks)
            .u64("busy_nanos_total", stats.total_busy_nanos())
            .raw("busy_nanos", &u64_array(&stats.busy_nanos))
            .finish();
        self.write_line(&line);
    }

    fn on_batch(&self, meta: &StreamMeta, record: &BatchRecord) {
        let line = JsonObject::new()
            .str("event", "batch")
            .str("policy", meta.policy)
            .u64("seed", meta.seed)
            .u64("n", meta.bins as u64)
            .u64("shards", meta.shards as u64)
            .u64("batch", record.batch)
            .u64("arrivals", record.arrivals)
            .u64("departures", record.departures)
            .u64("arrival_weight", record.arrival_weight)
            .u64("resident", record.resident)
            .u64("max_load", record.max_load)
            .u64("gap", record.gap)
            .u64("wall_nanos", record.wall_nanos)
            .raw("shard_touches", &u64_array(&record.shard_touches))
            .u64("failed_domains", record.failed_domains)
            .u64("fault_redirects", record.fault_redirects)
            .finish();
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::ProblemSpec;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builder_renders_valid_json() {
        let s = JsonObject::new()
            .str("name", "x\"y")
            .u64("count", 3)
            .f64("rate", 1.5)
            .f64("bad", f64::NAN)
            .raw("arr", &u64_array(&[1, 2]))
            .finish();
        assert_eq!(
            s,
            r#"{"name":"x\"y","count":3,"rate":1.5,"bad":null,"arr":[1,2]}"#
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn jsonl_trace_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("pba_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        let sink = JsonlTrace::create(&path).unwrap();
        let meta = RunMeta {
            spec: ProblemSpec::new(100, 10).unwrap(),
            seed: 1,
            protocol: "test",
            executor: ExecutorKind::Sequential,
            lanes: 1,
        };
        sink.on_round(&meta, &RoundRecord::default(), &RoundTiming::default());
        sink.on_fault(
            &meta,
            &FaultRecord {
                round: 2,
                dropped_requests: 5,
                ..Default::default()
            },
        );
        sink.on_run(&meta, &RunSummary::default());
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""event":"round""#));
        assert!(lines[0].contains(r#""gather_nanos":0"#));
        assert!(lines[1].contains(r#""event":"fault""#));
        assert!(lines[1].contains(r#""dropped_requests":5"#));
        assert!(lines[2].contains(r#""event":"run""#));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }
}
