//! JSON artifacts for the runner: re-exported codec plus the JSONL sink.
//!
//! The escaping/formatting/parsing primitives themselves live in
//! [`pba_core::json`] (they started here, then moved down so the cluster
//! wire protocol in `pba-cluster` could share them without a dependency
//! cycle); this module re-exports them so existing
//! `pba_runner::json::{escape, JsonObject, …}` imports keep working, and
//! adds the runner-specific [`JsonlTrace`] sink behind `--trace`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use pba_core::metrics::{
    BatchRecord, ClusterMeta, ClusterShardRecord, MetricsSink, Phase, RoundTiming, RunMeta,
    RunSummary, ServiceMeta, ServiceRecord, StreamMeta,
};
use pba_core::trace::RoundRecord;
use pba_core::{ExecutorKind, FaultRecord};
use pba_par::PoolStats;

pub use pba_core::json::{escape, number, parse, u64_array, Json, JsonObject, ParseError};

/// Stable textual form of an executor for JSON fields.
pub fn executor_str(executor: ExecutorKind) -> String {
    match executor {
        ExecutorKind::Sequential => "sequential".into(),
        ExecutorKind::Parallel => "parallel".into(),
        ExecutorKind::ParallelWith(lanes) => format!("parallel({lanes})"),
    }
}

/// Shared meta fields prefixed to every JSONL event.
fn meta_fields(event: &str, meta: &RunMeta) -> JsonObject {
    JsonObject::new()
        .str("event", event)
        .str("protocol", meta.protocol)
        .u64("seed", meta.seed)
        .u64("m", meta.spec.balls())
        .u64("n", meta.spec.bins() as u64)
        .str("executor", &executor_str(meta.executor))
        .u64("lanes", meta.lanes as u64)
}

/// A [`MetricsSink`] that streams every engine event as one JSON object
/// per line (JSON Lines), the format behind `pba-run … --trace out.jsonl`.
///
/// Seven event kinds share a file, discriminated by the `"event"` field:
///
/// * `"round"` — the full [`RoundRecord`] plus per-phase nanoseconds
///   (`gather_nanos`, `count_scan_nanos`, `grant_nanos`,
///   `resolve_commit_nanos`, `total_nanos`);
/// * `"fault"` — injected-fault counts for one round ([`FaultRecord`],
///   fault-injected runs only, emitted immediately before that round's
///   `"round"` line and only when at least one fault fired);
/// * `"run"` — end-of-run totals ([`RunSummary`]);
/// * `"pool"` — thread-pool utilization delta ([`PoolStats`], parallel
///   executors only);
/// * `"batch"` — one streaming batch ([`BatchRecord`], `pba-run stream`
///   and the streaming experiments E15–E19);
/// * `"cluster"` — one shard process's wire totals at the end of a
///   `pba-run cluster` run ([`ClusterShardRecord`]: frames/bytes each
///   way, barrier count, wall time, kill flag);
/// * `"service"` — one replay-service checkpoint window
///   ([`ServiceRecord`], `pba-run serve`): latency percentiles
///   (`p50_nanos`/`p99_nanos`/`p999_nanos`/`max_nanos`), gap, resident
///   count, and the snapshot size when one was taken in the window.
///
/// Every line carries the run identity (`protocol`, `seed`, `m`, `n`,
/// `executor`, `lanes` — or `policy`, `seed`, `n`, `shards` for batch
/// events), so traces of replicated runs interleave safely.
pub struct JsonlTrace {
    out: Mutex<BufWriter<File>>,
}

impl JsonlTrace {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        // A trace write failing mid-run (disk full) should not abort the
        // simulation; the final flush() reports the error.
        let _ = writeln!(out, "{line}");
    }

    /// Flush buffered lines to disk, surfacing any deferred write error.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl MetricsSink for JsonlTrace {
    fn on_round(&self, meta: &RunMeta, record: &RoundRecord, timing: &RoundTiming) {
        let line = meta_fields("round", meta)
            .u64("round", record.round as u64)
            .u64("active_before", record.active_before)
            .u64("requests", record.requests)
            .u64("granted", record.granted)
            .u64("committed", record.committed)
            .u64("wasted_grants", record.wasted_grants)
            .u64("underloaded_bins", record.underloaded_bins as u64)
            .u64("unfilled_want", record.unfilled_want)
            .u64("max_load", record.max_load as u64)
            .u64("msg_requests", record.messages.requests)
            .u64("msg_responses", record.messages.responses)
            .u64("msg_commits", record.messages.commits)
            .u64("gather_nanos", timing.phase(Phase::Gather))
            .u64("count_scan_nanos", timing.phase(Phase::CountScan))
            .u64("grant_nanos", timing.phase(Phase::Grant))
            .u64("resolve_commit_nanos", timing.phase(Phase::ResolveCommit))
            .u64("total_nanos", timing.total_nanos)
            .finish();
        self.write_line(&line);
    }

    fn on_fault(&self, meta: &RunMeta, record: &FaultRecord) {
        let line = meta_fields("fault", meta)
            .u64("round", record.round as u64)
            .u64("dropped_requests", record.dropped_requests)
            .u64("crash_redraws", record.crash_redraws)
            .u64("crash_lost", record.crash_lost)
            .u64("straggler_balls", record.straggler_balls)
            .u64("deferred_balls", record.deferred_balls)
            .u64("backoff_escalations", record.backoff_escalations)
            .finish();
        self.write_line(&line);
    }

    fn on_run(&self, meta: &RunMeta, summary: &RunSummary) {
        let line = meta_fields("run", meta)
            .u64("rounds", summary.rounds as u64)
            .u64("placed", summary.placed)
            .u64("unallocated", summary.unallocated)
            .u64("wall_nanos", summary.wall_nanos)
            .finish();
        self.write_line(&line);
    }

    fn on_pool(&self, meta: &RunMeta, stats: &PoolStats) {
        let line = meta_fields("pool", meta)
            .u64("jobs", stats.jobs)
            .u64("tasks", stats.tasks)
            .u64("busy_nanos_total", stats.total_busy_nanos())
            .raw("busy_nanos", &u64_array(&stats.busy_nanos))
            .finish();
        self.write_line(&line);
    }

    fn on_batch(&self, meta: &StreamMeta, record: &BatchRecord) {
        let line = JsonObject::new()
            .str("event", "batch")
            .str("policy", meta.policy)
            .u64("seed", meta.seed)
            .u64("n", meta.bins as u64)
            .u64("shards", meta.shards as u64)
            .u64("batch", record.batch)
            .u64("arrivals", record.arrivals)
            .u64("departures", record.departures)
            .u64("arrival_weight", record.arrival_weight)
            .u64("resident", record.resident)
            .u64("max_load", record.max_load)
            .u64("gap", record.gap)
            .u64("wall_nanos", record.wall_nanos)
            .raw("shard_touches", &u64_array(&record.shard_touches))
            .u64("failed_domains", record.failed_domains)
            .u64("fault_redirects", record.fault_redirects)
            .finish();
        self.write_line(&line);
    }

    fn on_cluster(&self, meta: &ClusterMeta, record: &ClusterShardRecord) {
        let line = JsonObject::new()
            .str("event", "cluster")
            .str("mode", meta.mode)
            .str("workload", meta.workload)
            .u64("seed", meta.seed)
            .u64("n", meta.bins as u64)
            .u64("shards", meta.shards as u64)
            .u64("shard", record.shard as u64)
            .u64("lo", record.lo as u64)
            .u64("hi", record.hi as u64)
            .u64("frames_sent", record.frames_sent)
            .u64("frames_recv", record.frames_recv)
            .u64("bytes_sent", record.bytes_sent)
            .u64("bytes_recv", record.bytes_recv)
            .u64("barriers", record.barriers)
            .u64("wall_nanos", record.wall_nanos)
            .u64("killed", record.killed as u64)
            .finish();
        self.write_line(&line);
    }

    fn on_service(&self, meta: &ServiceMeta, record: &ServiceRecord) {
        let line = JsonObject::new()
            .str("event", "service")
            .str("policy", meta.policy)
            .u64("seed", meta.seed)
            .u64("n", meta.bins as u64)
            .u64("shards", meta.shards as u64)
            .u64("queue", meta.queue as u64)
            .f64("rate", meta.rate)
            .u64("checkpoint", record.checkpoint)
            .u64("batches", record.batches)
            .u64("balls", record.balls)
            .u64("resident", record.resident)
            .u64("max_load", record.max_load)
            .u64("gap", record.gap)
            .u64("p50_nanos", record.p50_nanos)
            .u64("p99_nanos", record.p99_nanos)
            .u64("p999_nanos", record.p999_nanos)
            .u64("max_nanos", record.max_nanos)
            .u64("wall_nanos", record.wall_nanos)
            .u64("snapshot_bytes", record.snapshot_bytes)
            .finish();
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_core::ProblemSpec;

    #[test]
    fn reexported_codec_is_the_core_one() {
        // The runner path and the core path must be the same items; a
        // round-trip through both proves the re-export is live.
        let s = JsonObject::new().str("k", "v\n").finish();
        let parsed = pba_core::json::parse(&s).unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some("v\n"));
    }

    #[test]
    fn jsonl_trace_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("pba_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        let sink = JsonlTrace::create(&path).unwrap();
        let meta = RunMeta {
            spec: ProblemSpec::new(100, 10).unwrap(),
            seed: 1,
            protocol: "test",
            executor: ExecutorKind::Sequential,
            lanes: 1,
        };
        sink.on_round(&meta, &RoundRecord::default(), &RoundTiming::default());
        sink.on_fault(
            &meta,
            &FaultRecord {
                round: 2,
                dropped_requests: 5,
                ..Default::default()
            },
        );
        sink.on_run(&meta, &RunSummary::default());
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""event":"round""#));
        assert!(lines[0].contains(r#""gather_nanos":0"#));
        assert!(lines[1].contains(r#""event":"fault""#));
        assert!(lines[1].contains(r#""dropped_requests":5"#));
        assert!(lines[2].contains(r#""event":"run""#));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }
}
