//! The [`Experiment`] trait and registry.

use crate::experiments;
use crate::table::Table;

/// How large and how replicated an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes, 2 seeds — used by the integration tests.
    Smoke,
    /// Moderate sizes, ~5 seeds — seconds per experiment.
    Default,
    /// Paper-style sizes, ~15 seeds — the numbers in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Standard replication count at this scale.
    pub fn reps(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 5,
            Scale::Full => 15,
        }
    }
}

/// The output of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"e03"`.
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// The paper claim being reproduced (one paragraph).
    pub claim: &'static str,
    /// Result tables (usually one).
    pub tables: Vec<Table>,
    /// Free-form observations (shape checks, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Render the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n*Claim.* {}\n\n",
            self.id.to_uppercase(),
            self.title,
            self.claim
        );
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("*Notes.*\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// A reproducible experiment: a workload, a sweep, and a
/// theory-vs-measured table.
pub trait Experiment: Sync {
    /// Stable id (`"e01"`…`"e13"`).
    fn id(&self) -> &'static str;
    /// Short title for listings.
    fn title(&self) -> &'static str;
    /// Run at the given scale.
    fn run(&self, scale: Scale) -> ExperimentReport;
}

/// All experiments, in id order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(experiments::e01_naive::E01),
        Box::new(experiments::e02_two_choice::E02),
        Box::new(experiments::e03_threshold_heavy::E03),
        Box::new(experiments::e04_underload::E04),
        Box::new(experiments::e05_lower_bound::E05),
        Box::new(experiments::e06_asymmetric::E06),
        Box::new(experiments::e07_collision::E07),
        Box::new(experiments::e08_stemann_heavy::E08),
        Box::new(experiments::e09_adler::E09),
        Box::new(experiments::e10_messages::E10),
        Box::new(experiments::e11_fixed_threshold::E11),
        Box::new(experiments::e12_batched::E12),
        Box::new(experiments::e13_ablation::E13),
        Box::new(experiments::e14_preliminaries::E14),
    ]
}

/// Find one experiment by id (case-insensitive).
pub fn experiment_by_id(id: &str) -> Option<Box<dyn Experiment>> {
    let id = id.to_lowercase();
    all_experiments().into_iter().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let all = all_experiments();
        assert_eq!(all.len(), 14);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.id(), format!("e{:02}", i + 1));
            assert!(!e.title().is_empty());
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(experiment_by_id("e07").is_some());
        assert!(experiment_by_id("E07").is_some());
        assert!(experiment_by_id("e99").is_none());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
        assert!(Scale::Full.reps() > Scale::Smoke.reps());
    }
}
