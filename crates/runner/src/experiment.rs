//! The [`Experiment`] trait and registry.

use std::sync::Arc;
use std::time::Instant;

use pba_core::metrics::{EngineMetrics, FanoutSink, MetricsReport, MetricsSink, Phase};
use pba_core::RunConfig;

use crate::experiments;
use crate::table::Table;

/// How large and how replicated an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes, 2 seeds — used by the integration tests.
    Smoke,
    /// Moderate sizes, ~5 seeds — seconds per experiment.
    Default,
    /// Paper-style sizes, ~15 seeds — the numbers in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Standard replication count at this scale.
    pub fn reps(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Default => 5,
            Scale::Full => 15,
        }
    }
}

/// Harness-level options threaded through every engine run an experiment
/// performs.
///
/// The harness helpers ([`crate::replicate::replicate_outcomes_with`],
/// [`RunOptions::config`]) build their `RunConfig` through this factory,
/// so attaching a sink here observes *every* run of the experiment —
/// including the replicated ones fanned out across the pool.
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Observability sink attached to every engine run.
    pub metrics: Option<Arc<dyn MetricsSink>>,
}

impl RunOptions {
    /// Default options: sequential, per-bin tracking, no sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a sink observing every engine run.
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// The `RunConfig` factory used by all harness helpers: sequential,
    /// per-bin tracking, trace recorded, sink attached when present.
    pub fn config(&self, seed: u64) -> RunConfig {
        let config = RunConfig::seeded(seed);
        match &self.metrics {
            Some(sink) => config.with_metrics(sink.clone()),
            None => config,
        }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field(
                "metrics",
                &if self.metrics.is_some() {
                    "Some(<sink>)"
                } else {
                    "None"
                },
            )
            .finish()
    }
}

/// Aggregated engine performance of one experiment run, attached to every
/// [`ExperimentReport`] by the provided [`Experiment::run`] wrapper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfSummary {
    /// Everything the harness's [`EngineMetrics`] aggregator saw.
    pub engine: MetricsReport,
    /// Wall-clock nanoseconds for the whole experiment (harness included;
    /// replicated runs overlap, so this can be far below
    /// `engine.run_nanos`).
    pub wall_nanos: u64,
}

impl PerfSummary {
    /// Balls placed per second of engine run time.
    pub fn balls_per_sec(&self) -> f64 {
        self.engine.balls_per_sec()
    }

    /// Rounds executed per second of engine run time.
    pub fn rounds_per_sec(&self) -> f64 {
        self.engine.rounds_per_sec()
    }

    /// One-paragraph markdown rendering (throughput + phase split).
    pub fn to_markdown(&self) -> String {
        let e = &self.engine;
        let mut out = if e.runs == 0 && e.batches > 0 {
            // Streaming experiments drive the batch allocator, not the
            // round engine: report batch throughput instead.
            format!(
                "*Perf.* {} batches, {} arrivals in {}; {} batches/s, {} balls/s",
                e.batches,
                e.batch_arrivals,
                fmt_duration(self.wall_nanos),
                fmt_rate(e.batches_per_sec()),
                fmt_rate(e.stream_balls_per_sec()),
            )
        } else {
            format!(
                "*Perf.* {} runs, {} rounds, {} balls in {}; {} balls/s, {} rounds/s",
                e.runs,
                e.rounds,
                e.placed,
                fmt_duration(self.wall_nanos),
                fmt_rate(e.balls_per_sec()),
                fmt_rate(e.rounds_per_sec()),
            )
        };
        if e.phase_nanos.iter().any(|&n| n > 0) {
            let split: Vec<String> = Phase::ALL
                .iter()
                .map(|&p| format!("{} {:.0}%", p.name(), 100.0 * e.phase_fraction(p)))
                .collect();
            out.push_str(&format!("; phases: {}", split.join(", ")));
        }
        if let Some(pool) = &e.pool {
            out.push_str(&format!(
                "; pool: {} jobs, {} tasks, busy {}",
                pool.jobs,
                pool.tasks,
                fmt_duration(pool.total_busy_nanos())
            ));
        }
        out.push('\n');
        out
    }
}

/// Human-friendly duration from nanoseconds.
fn fmt_duration(nanos: u64) -> String {
    let secs = nanos as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

/// Human-friendly rate (k/M suffixes).
fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// The output of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"e03"`.
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// The paper claim being reproduced (one paragraph).
    pub claim: &'static str,
    /// Result tables (usually one).
    pub tables: Vec<Table>,
    /// Free-form observations (shape checks, caveats).
    pub notes: Vec<String>,
    /// Engine throughput and phase split, filled by the provided
    /// [`Experiment::run`] / [`Experiment::run_with`] wrappers
    /// (`None` when [`Experiment::execute`] is called directly).
    pub perf: Option<PerfSummary>,
}

impl ExperimentReport {
    /// Render the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n*Claim.* {}\n\n",
            self.id.to_uppercase(),
            self.title,
            self.claim
        );
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("*Notes.*\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
            out.push('\n');
        }
        if let Some(perf) = &self.perf {
            out.push_str(&perf.to_markdown());
            out.push('\n');
        }
        out
    }
}

/// A reproducible experiment: a workload, a sweep, and a
/// theory-vs-measured table.
///
/// Implementors provide [`execute`](Experiment::execute) and build every
/// engine run through the given [`RunOptions`] (typically via
/// [`replicate_outcomes_with`](crate::replicate::replicate_outcomes_with)
/// or [`RunOptions::config`]); callers use the provided
/// [`run`](Experiment::run) / [`run_with`](Experiment::run_with), which
/// attach the harness's [`EngineMetrics`] aggregator and fill
/// [`ExperimentReport::perf`] with throughput and phase-split numbers.
pub trait Experiment: Sync {
    /// Stable id (`"e01"`…`"e19"`).
    fn id(&self) -> &'static str;
    /// Short title for listings.
    fn title(&self) -> &'static str;
    /// Run at the given scale, threading `opts` into every engine run.
    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport;

    /// Run at the given scale with default options plus perf aggregation.
    fn run(&self, scale: Scale) -> ExperimentReport {
        self.run_with(scale, &RunOptions::default())
    }

    /// Like [`run`](Experiment::run), but also forwarding every engine
    /// event to the caller's sink (when `opts.metrics` is set) — e.g. a
    /// JSONL trace writer — while still aggregating perf.
    fn run_with(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let aggregate = Arc::new(EngineMetrics::new());
        let sink: Arc<dyn MetricsSink> = match &opts.metrics {
            None => aggregate.clone(),
            Some(caller) => Arc::new(FanoutSink::new(vec![
                aggregate.clone() as Arc<dyn MetricsSink>,
                caller.clone(),
            ])),
        };
        let inner = RunOptions::new().with_metrics(sink);
        let started = Instant::now();
        let mut report = self.execute(scale, &inner);
        report.perf = Some(PerfSummary {
            engine: aggregate.report(),
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        report
    }
}

/// All experiments, in id order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(experiments::e01_naive::E01),
        Box::new(experiments::e02_two_choice::E02),
        Box::new(experiments::e03_threshold_heavy::E03),
        Box::new(experiments::e04_underload::E04),
        Box::new(experiments::e05_lower_bound::E05),
        Box::new(experiments::e06_asymmetric::E06),
        Box::new(experiments::e07_collision::E07),
        Box::new(experiments::e08_stemann_heavy::E08),
        Box::new(experiments::e09_adler::E09),
        Box::new(experiments::e10_messages::E10),
        Box::new(experiments::e11_fixed_threshold::E11),
        Box::new(experiments::e12_batched::E12),
        Box::new(experiments::e13_ablation::E13),
        Box::new(experiments::e14_preliminaries::E14),
        Box::new(experiments::e15_stream_batches::E15),
        Box::new(experiments::e16_churn::E16),
        Box::new(experiments::e17_weighted::E17),
        Box::new(experiments::e18_message_loss::E18),
        Box::new(experiments::e19_shard_failures::E19),
        Box::new(experiments::e24_kd_choice::E24),
        Box::new(experiments::e25_estimated_average::E25),
    ]
}

/// Find one experiment by id (case-insensitive).
pub fn experiment_by_id(id: &str) -> Option<Box<dyn Experiment>> {
    let id = id.to_lowercase();
    all_experiments().into_iter().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let all = all_experiments();
        assert_eq!(all.len(), 21);
        // E1–E19 are dense; E24/E25 (the protocol-family studies) follow
        // the EXPERIMENTS.md numbering, where E20–E23 are the
        // cluster/wire/replay studies reported outside this registry.
        let ids: Vec<&str> = all.iter().map(|e| e.id()).collect();
        for (i, id) in ids.iter().take(19).enumerate() {
            assert_eq!(*id, format!("e{:02}", i + 1));
        }
        assert_eq!(&ids[19..], &["e24", "e25"]);
        for e in &all {
            assert!(!e.title().is_empty());
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate experiment ids");
    }

    #[test]
    fn lookup_by_id() {
        assert!(experiment_by_id("e07").is_some());
        assert!(experiment_by_id("E07").is_some());
        assert!(experiment_by_id("e99").is_none());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
        assert!(Scale::Full.reps() > Scale::Smoke.reps());
    }

    #[test]
    fn run_fills_perf_and_markdown_renders_it() {
        let e = experiment_by_id("e07").unwrap();
        let report = e.run(Scale::Smoke);
        let perf = report.perf.as_ref().expect("run() aggregates perf");
        assert!(perf.engine.runs > 0);
        assert!(perf.engine.rounds > 0);
        assert!(perf.engine.placed > 0);
        assert!(perf.balls_per_sec() > 0.0);
        assert!(perf.wall_nanos > 0);
        assert!(report.to_markdown().contains("*Perf.*"));
    }

    #[test]
    fn run_with_forwards_events_to_caller_sink() {
        let caller = Arc::new(EngineMetrics::new());
        let e = experiment_by_id("e07").unwrap();
        let opts = RunOptions::new().with_metrics(caller.clone());
        let report = e.run_with(Scale::Smoke, &opts);
        // The caller's sink and the harness aggregator saw the same runs.
        let perf = report.perf.unwrap();
        assert_eq!(caller.report().rounds, perf.engine.rounds);
        assert_eq!(caller.report().placed, perf.engine.placed);
    }

    #[test]
    fn execute_without_wrapper_leaves_perf_unset() {
        let e = experiment_by_id("e07").unwrap();
        let report = e.execute(Scale::Smoke, &RunOptions::default());
        assert!(report.perf.is_none());
        // No sink attached: the report still renders without a perf block.
        assert!(!report.to_markdown().contains("*Perf.*"));
    }

    #[test]
    fn run_options_config_attaches_sink() {
        let opts = RunOptions::default();
        assert!(opts.config(3).metrics.is_none());
        assert_eq!(opts.config(3).seed, 3);
        let sink = Arc::new(EngineMetrics::new());
        let opts = RunOptions::new().with_metrics(sink);
        assert!(opts.config(4).metrics.is_some());
    }
}
