//! `pba-run` — run the reproduction experiments and ad-hoc protocol
//! simulations from the command line.
//!
//! ```text
//! pba-run list
//! pba-run all [--scale smoke|default|full] [--out DIR]
//! pba-run <experiment-id> [--scale ...] [--out DIR]
//! pba-run protocol <name> --m M --n N [--seed S] [--parallel]
//! pba-run protocols            # list protocol names
//! ```

use std::process::ExitCode;

use pba_core::{ExecutorKind, ProblemSpec, RunConfig};
use pba_protocols::{protocol_names, run_by_name};
use pba_runner::{all_experiments, experiment_by_id, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pba-run list
  pba-run all [--scale smoke|default|full] [--out DIR]
  pba-run <experiment-id e01..e13> [--scale ...] [--out DIR]
  pba-run protocol <name> --m M --n N [--seed S] [--parallel]
  pba-run protocols";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{}  {}", e.id(), e.title());
            }
            Ok(())
        }
        "protocols" => {
            for name in protocol_names() {
                println!("{name}");
            }
            Ok(())
        }
        "all" => {
            let (scale, out_dir) = parse_scale_out(&args[1..])?;
            for e in all_experiments() {
                run_experiment(e.as_ref(), scale, out_dir.as_deref())?;
            }
            Ok(())
        }
        "protocol" => run_protocol(&args[1..]),
        id => {
            let e = experiment_by_id(id).ok_or_else(|| format!("unknown experiment '{id}'"))?;
            let (scale, out_dir) = parse_scale_out(&args[1..])?;
            run_experiment(e.as_ref(), scale, out_dir.as_deref())
        }
    }
}

fn run_experiment(
    e: &dyn pba_runner::Experiment,
    scale: Scale,
    out_dir: Option<&str>,
) -> Result<(), String> {
    eprintln!("running {} ({})…", e.id(), e.title());
    let started = std::time::Instant::now();
    let report = e.run(scale);
    eprintln!("  done in {:.1?}", started.elapsed());
    let md = report.to_markdown();
    println!("{md}");
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
        let path = format!("{dir}/{}.md", report.id);
        std::fs::write(&path, &md).map_err(|err| err.to_string())?;
        for (i, t) in report.tables.iter().enumerate() {
            let csv_path = format!("{dir}/{}_{}.csv", report.id, i);
            std::fs::write(&csv_path, t.to_csv()).map_err(|err| err.to_string())?;
        }
    }
    Ok(())
}

fn parse_scale_out(args: &[String]) -> Result<(Scale, Option<String>), String> {
    let mut scale = Scale::Default;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(v).ok_or_else(|| format!("bad scale '{v}'"))?;
            }
            "--out" => {
                out = Some(it.next().ok_or("--out needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok((scale, out))
}

fn run_protocol(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("protocol: missing name".into());
    };
    let mut m = 1u64 << 20;
    let mut n = 1u32 << 10;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--m" => {
                m = it
                    .next()
                    .ok_or("--m needs a value")?
                    .parse()
                    .map_err(|_| "bad --m")?
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?
            }
            "--parallel" => parallel = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let spec = ProblemSpec::new(m, n).map_err(|e| e.to_string())?;
    let mut cfg = RunConfig::seeded(seed);
    if parallel {
        cfg.executor = ExecutorKind::Parallel;
    }
    let started = std::time::Instant::now();
    let out = run_by_name(name, spec, cfg)
        .ok_or_else(|| format!("unknown protocol '{name}' (try `pba-run protocols`)"))?
        .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    let stats = out.load_stats();
    println!("protocol:   {}", out.protocol);
    println!("spec:       {spec}");
    println!("rounds:     {}", out.rounds);
    println!(
        "placed:     {} ({} unallocated)",
        out.placed, out.unallocated
    );
    println!("max load:   {} (gap {})", stats.max(), out.gap());
    println!("load stats: {stats}");
    println!(
        "messages:   {} total ({} requests, {} responses, {} commits)",
        out.messages.total(),
        out.messages.requests,
        out.messages.responses,
        out.messages.commits
    );
    if let Some(max_bin) = out.max_bin_received() {
        println!("max bin rx: {max_bin}");
    }
    println!("wall time:  {elapsed:.2?}");
    Ok(())
}
