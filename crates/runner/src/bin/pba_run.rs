//! `pba-run` — run the reproduction experiments and ad-hoc protocol
//! simulations from the command line.
//!
//! ```text
//! pba-run list
//! pba-run all [--scale smoke|default|full] [--out DIR] [--trace F.jsonl]
//! pba-run <experiment-id> [--scale ...] [--out DIR] [--trace F.jsonl]
//! pba-run protocol <name> --m M --n N [--seed S] [--parallel] [--trace F.jsonl]
//! pba-run protocols            # list protocol names
//! pba-run stream [--policy P] [--n N] [--batch 8n] …   # streaming allocator
//! pba-run serve --replay [--rate R] [--snapshot F] …   # replay service facade
//! pba-run cluster protocol <name> --shards S …   # multi-process shards
//! pba-run cluster stream --shards S [--kill S@B] …
//! pba-run bench [--tier small|medium|large|xl] [--out DIR|FILE.json]
//! pba-run tune [--tier ...] [--out DIR|FILE.json]     # autotune chunk geometry
//! pba-run verify [CLAIM…] [--scale ci|full] [--json]  # statistical claim oracles
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use pba_cluster::ClusterConfig;
use pba_conformance::{Claim, VerifyOptions, VerifyScale};
use pba_core::metrics::{EngineMetrics, FanoutSink, MetricsSink, Phase};
use pba_core::{ExecutorKind, ProblemSpec, RunConfig, Tuning};
use pba_protocols::{protocol_names, run_by_name};
use pba_runner::json::{escape as json_escape, executor_str, u64_array, JsonObject};
use pba_runner::{
    all_experiments, describe_fault_plan, experiment_by_id, parse_fault_spec, JsonlTrace,
    RunOptions, Scale, Table,
};
use pba_stream::{
    replay, PolicyKind, ServiceConfig, StreamAllocator, WeightDist, Workload, WorkloadCfg,
    WorkloadKind,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pba-run list
  pba-run all [--scale smoke|default|full] [--out DIR] [--trace FILE.jsonl]
  pba-run <experiment-id e01..e25> [--scale ...] [--out DIR] [--trace FILE.jsonl]
  pba-run protocol <name> --m M --n N [--seed S] [--parallel] [--trace FILE.jsonl]
                 [--faults SPEC]
  pba-run protocols
  pba-run stream [--policy one-choice|two-choice|batched-two-choice|threshold]
                 [--n N] [--batch B | Kn] [--batches K] [--workload uniform|zipf|burst]
                 [--churn F] [--shards S] [--seed S] [--parallel] [--trace FILE.jsonl]
                 [--faults SPEC]
  pba-run serve --replay [--policy P] [--n N] [--batch B | Kn] [--batches K]
                 [--workload W] [--churn F] [--shards S] [--seed S] [--parallel]
                 [--rate BALLS_PER_SEC] [--queue DEPTH] [--checkpoint-every K]
                 [--snapshot-at K] [--snapshot FILE] [--restore FILE]
                 [--faults SPEC] [--trace FILE.jsonl]
  pba-run serve --listen ADDR [--policy P] [--n N] [--shards S] [--seed S]
                 (accept framed batches from one `serve --send` client)
  pba-run serve --send ADDR [--policy P] [--n N] [--batch B | Kn] [--batches K]
                 [--workload W] [--churn F] [--seed S]
  pba-run cluster protocol <name> --m M --n N [--shards S] [--seed S]
                 [--local | --socket | --connect A1,A2,…] [--wire binary|json]
                 [--no-overlap] [--faults SPEC] [--trace FILE.jsonl]
  pba-run cluster stream [--policy P] [--n N] [--batch B | Kn] [--batches K]
                 [--workload W] [--churn F] [--shards S] [--seed S] [--kill S@B]
                 [--local | --socket | --connect A1,A2,…] [--wire binary|json]
                 [--no-overlap] [--faults SPEC] [--trace FILE.jsonl]
  pba-run shard-worker [--listen ADDR]   (internal: spawned per shard by
                 `cluster`; --listen serves one orchestrator over TCP/UDS)
  pba-run bench [--tier small|medium|large|xl | --scale smoke|default|full]
                [--out DIR|FILE.json]
  pba-run tune [--tier small|medium|large|xl] [--out DIR|FILE.json]
  pba-run verify [CLAIM…] [--scale ci|full] [--json] [--faults SPEC]

fault spec: comma-separated key=value clauses, e.g.
  --faults drop=0.1,crash=0.02,straggle=8x0.2,domains=8x0.3,kill=2x5,seed=7";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let done = |()| ExitCode::SUCCESS;
    match cmd.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{}  {}", e.id(), e.title());
            }
            Ok(ExitCode::SUCCESS)
        }
        "protocols" => {
            for name in protocol_names() {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "all" => {
            let flags = RunFlags::parse(&args[1..])?;
            let trace = flags.open_trace()?;
            for e in all_experiments() {
                run_experiment(e.as_ref(), &flags, trace.clone())?;
            }
            flush_trace(trace).map(done)
        }
        "protocol" => run_protocol(&args[1..]).map(done),
        "stream" => run_stream_cmd(&args[1..]).map(done),
        "serve" => run_serve(&args[1..]).map(done),
        "cluster" => run_cluster(&args[1..]).map(done),
        // The child mode `cluster` spawns per shard. Errors go to stderr
        // without the usage banner: the orchestrator is the audience.
        "shard-worker" => {
            let served = match args.get(1).map(String::as_str) {
                None => pba_cluster::worker::serve_stdio(),
                Some("--listen") => match args.get(2) {
                    Some(addr) => pba_cluster::worker::serve_listen(addr),
                    None => Err("--listen needs an address".into()),
                },
                Some(other) => Err(format!("unknown flag '{other}' (--listen ADDR)")),
            };
            match served {
                Ok(()) => Ok(ExitCode::SUCCESS),
                Err(detail) => {
                    eprintln!("shard-worker: {detail}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "bench" => run_bench(&args[1..]).map(done),
        "tune" => run_tune(&args[1..]).map(done),
        // `verify` owns its exit code: a refuted claim is a nonzero exit
        // with the verdict table printed, not a usage error.
        "verify" => run_verify(&args[1..]),
        id => {
            let e = experiment_by_id(id).ok_or_else(|| unknown_command_message(id))?;
            let flags = RunFlags::parse(&args[1..])?;
            let trace = flags.open_trace()?;
            run_experiment(e.as_ref(), &flags, trace.clone())?;
            flush_trace(trace).map(done)
        }
    }
}

/// Error text for an unrecognized first argument: name the valid range
/// and, when something known is close, suggest it.
fn unknown_command_message(id: &str) -> String {
    const COMMANDS: [&str; 10] = [
        "list",
        "all",
        "protocol",
        "protocols",
        "stream",
        "serve",
        "cluster",
        "bench",
        "tune",
        "verify",
    ];
    let lowered = id.to_lowercase();
    let best = all_experiments()
        .iter()
        .map(|e| e.id())
        .chain(COMMANDS)
        .map(|c| (edit_distance(&lowered, c), c))
        .min()
        .filter(|&(d, _)| d <= 2);
    let hint = match best {
        Some((_, c)) => format!("did you mean '{c}'? "),
        None => String::new(),
    };
    format!(
        "unknown experiment or command '{id}': {hint}valid experiment ids are \
         e01..e25 (see `pba-run list`)"
    )
}

/// Levenshtein distance, for the did-you-mean suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Flags shared by the experiment-running commands.
struct RunFlags {
    scale: Scale,
    out_dir: Option<String>,
    trace_path: Option<String>,
}

impl RunFlags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = RunFlags {
            scale: Scale::Default,
            out_dir: None,
            trace_path: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    flags.scale = Scale::parse(v).ok_or_else(|| format!("bad scale '{v}'"))?;
                }
                "--out" => {
                    flags.out_dir = Some(it.next().ok_or("--out needs a value")?.clone());
                }
                "--trace" => {
                    flags.trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(flags)
    }

    /// Open the JSONL trace sink, when requested.
    fn open_trace(&self) -> Result<Option<Arc<JsonlTrace>>, String> {
        match &self.trace_path {
            None => Ok(None),
            Some(path) => JsonlTrace::create(path)
                .map(|t| Some(Arc::new(t)))
                .map_err(|e| format!("--trace {path}: {e}")),
        }
    }
}

fn flush_trace(trace: Option<Arc<JsonlTrace>>) -> Result<(), String> {
    if let Some(t) = trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    Ok(())
}

fn run_experiment(
    e: &dyn pba_runner::Experiment,
    flags: &RunFlags,
    trace: Option<Arc<JsonlTrace>>,
) -> Result<(), String> {
    eprintln!("running {} ({})…", e.id(), e.title());
    let started = std::time::Instant::now();
    let mut opts = RunOptions::new();
    if let Some(t) = trace {
        opts = opts.with_metrics(t);
    }
    let report = e.run_with(flags.scale, &opts);
    eprintln!("  done in {:.1?}", started.elapsed());
    let md = report.to_markdown();
    println!("{md}");
    if let Some(dir) = &flags.out_dir {
        std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
        let path = format!("{dir}/{}.md", report.id);
        std::fs::write(&path, &md).map_err(|err| err.to_string())?;
        for (i, t) in report.tables.iter().enumerate() {
            let csv_path = format!("{dir}/{}_{}.csv", report.id, i);
            std::fs::write(&csv_path, t.to_csv()).map_err(|err| err.to_string())?;
        }
    }
    Ok(())
}

fn run_protocol(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("protocol: missing name".into());
    };
    let mut m = 1u64 << 20;
    let mut n = 1u32 << 10;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--m" => {
                m = it
                    .next()
                    .ok_or("--m needs a value")?
                    .parse()
                    .map_err(|_| "bad --m")?
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?
            }
            "--parallel" => parallel = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let spec = ProblemSpec::new(m, n).map_err(|e| e.to_string())?;
    let mut cfg = RunConfig::seeded(seed);
    if parallel {
        cfg = cfg.parallel();
    }
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    cfg = match &trace {
        None => cfg.with_metrics(metrics.clone()),
        Some(t) => cfg.with_metrics(Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ]))),
    };
    let started = std::time::Instant::now();
    let out = run_by_name(name, spec, cfg)
        .ok_or_else(|| format!("unknown protocol '{name}' (try `pba-run protocols`)"))?
        .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    let stats = out.load_stats();
    let report = metrics.report();
    println!("protocol:   {}", out.protocol);
    println!("spec:       {spec}");
    println!("rounds:     {}", out.rounds);
    println!(
        "placed:     {} ({} unallocated)",
        out.placed, out.unallocated
    );
    println!("max load:   {} (gap {})", stats.max(), out.gap());
    println!("load stats: {stats}");
    if let Some(plan) = &faults {
        println!("faults:     {}", describe_fault_plan(plan));
    }
    if let Some(f) = &out.faults {
        println!(
            "fault hits: {} dropped, {} crash-lost ({} redraws), {} straggled, \
             {} deferred, {} escalations, {} crashed bins",
            f.dropped_requests,
            f.crash_lost,
            f.crash_redraws,
            f.straggler_balls,
            f.deferred_balls,
            f.backoff_escalations,
            f.crashed_bins
        );
    }
    println!(
        "messages:   {} total ({} requests, {} responses, {} commits)",
        out.messages.total(),
        out.messages.requests,
        out.messages.responses,
        out.messages.commits
    );
    if let Some(max_bin) = out.max_bin_received() {
        println!("max bin rx: {max_bin}");
    }
    println!("wall time:  {elapsed:.2?}");
    println!(
        "throughput: {:.0} balls/s, {:.1} rounds/s",
        report.balls_per_sec(),
        report.rounds_per_sec()
    );
    let phases: Vec<String> = Phase::ALL
        .iter()
        .map(|&p| format!("{} {:.0}%", p.name(), 100.0 * report.phase_fraction(p)))
        .collect();
    println!("phases:     {}", phases.join(", "));
    if let Some(pool) = &report.pool {
        println!(
            "pool:       {} jobs, {} tasks, busy {:.2?}",
            pool.jobs,
            pool.tasks,
            std::time::Duration::from_nanos(pool.total_busy_nanos())
        );
    }
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// Parse a batch size: an absolute count (`4096`) or a multiple of the
/// bin count (`8n`, `n`).
fn parse_batch_size(spec: &str, n: u32) -> Result<u64, String> {
    let s = spec.trim();
    let value = if let Some(mult) = s.strip_suffix(['n', 'N']) {
        let mult: u64 = if mult.is_empty() {
            1
        } else {
            mult.parse().map_err(|_| {
                format!("bad --batch '{spec}' (absolute count or multiple like '8n')")
            })?
        };
        mult.checked_mul(n as u64)
            .ok_or_else(|| format!("--batch '{spec}' overflows"))?
    } else {
        s.parse()
            .map_err(|_| format!("bad --batch '{spec}' (absolute count or multiple like '8n')"))?
    };
    if value == 0 {
        return Err("--batch must be at least 1".into());
    }
    Ok(value)
}

/// Parse a `--workload` name, shared by `stream`, `serve`, and
/// `cluster stream`; unknown names get a did-you-mean suggestion.
fn parse_workload_kind(name: &str) -> Result<WorkloadKind, String> {
    const WORKLOADS: [&str; 3] = ["uniform", "zipf", "burst"];
    match name {
        "uniform" => Ok(WorkloadKind::Uniform),
        "zipf" => Ok(WorkloadKind::Zipf { s: 1.2, max: 32 }),
        "burst" => Ok(WorkloadKind::Burst {
            period: 8,
            factor: 4,
        }),
        other => {
            let lowered = other.to_lowercase();
            let hint = WORKLOADS
                .iter()
                .map(|&w| (edit_distance(&lowered, w), w))
                .min()
                .filter(|&(d, _)| d <= 2)
                .map(|(_, w)| format!("did you mean '{w}'? "))
                .unwrap_or_default();
            Err(format!(
                "unknown workload '{other}' ({hint}choose from: {})",
                WORKLOADS.join(", ")
            ))
        }
    }
}

/// `pba-run stream` — drive a synthetic workload through a long-lived
/// [`StreamAllocator`] and print a paper-style checkpoint table plus a
/// throughput summary.
fn run_stream_cmd(args: &[String]) -> Result<(), String> {
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut batch_spec = "4n".to_string();
    let mut batches: u64 = 32;
    let mut workload = "uniform".to_string();
    let mut churn = 0.0f64;
    let mut shards: usize = 1;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| {
                    let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown policy '{v}' (choose from: {})", names.join(", "))
                })?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--batch" => batch_spec = it.next().ok_or("--batch needs a value")?.clone(),
            "--batches" => {
                batches = it
                    .next()
                    .ok_or("--batches needs a value")?
                    .parse()
                    .map_err(|_| "bad --batches")?;
            }
            "--workload" => workload = it.next().ok_or("--workload needs a value")?.clone(),
            "--churn" => {
                churn = it
                    .next()
                    .ok_or("--churn needs a value")?
                    .parse()
                    .map_err(|_| "bad --churn")?;
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--parallel" => parallel = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    let b = parse_batch_size(&batch_spec, n)?;
    let kind = parse_workload_kind(&workload)?;
    let cfg = WorkloadCfg {
        kind,
        batch: b,
        churn,
        weights: WeightDist::Constant(1),
    };

    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    let sink: Arc<dyn MetricsSink> = match &trace {
        None => metrics.clone(),
        Some(t) => Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ])),
    };
    let mut alloc = StreamAllocator::new(n, seed, policy)
        .with_shards(shards)
        .with_metrics(sink);
    if parallel {
        alloc = alloc.parallel();
    }
    if let Some(plan) = faults {
        alloc = alloc.with_faults(plan);
    }
    // Distinct salt keeps workload draws off the placement streams.
    let mut traffic = Workload::new(cfg, seed ^ 0x57AEA3);

    let started = std::time::Instant::now();
    let records: Vec<_> = (0..batches)
        .map(|_| alloc.ingest(&traffic.next_batch()).record)
        .collect();
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }

    let mut table = Table::new(
        format!(
            "Streaming {}: {batches} batches of b = {batch_spec} ({b} arrivals), \
             n = {n}, churn {churn}",
            policy.name()
        ),
        &[
            "batch",
            "arrivals",
            "departures",
            "resident",
            "max load",
            "gap",
        ],
    );
    let step = (batches / 8).max(1);
    for (t, r) in records.iter().enumerate() {
        let t = t as u64;
        if t.is_multiple_of(step) || t == batches - 1 {
            table.push_row(vec![
                t.to_string(),
                r.arrivals.to_string(),
                r.departures.to_string(),
                r.resident.to_string(),
                r.max_load.to_string(),
                r.gap.to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());

    let report = metrics.report();
    let last = records.last().expect("batches >= 1");
    let mode = if parallel { ", parallel" } else { "" };
    println!("policy:     {} ({shards} shard(s){mode})", policy.name());
    println!("workload:   {workload}, b = {b}, churn {churn}, seed {seed}");
    if let Some(plan) = &faults {
        let redirects: u64 = records.iter().map(|r| r.fault_redirects).sum();
        let faulted = records.iter().filter(|r| r.failed_domains > 0).count();
        println!(
            "faults:     {} — {faulted}/{batches} batches degraded, {redirects} redirects",
            describe_fault_plan(plan)
        );
    }
    println!(
        "resident:   {} balls in {n} bins (max load {}, gap {})",
        last.resident, last.max_load, last.gap
    );
    println!("wall time:  {elapsed:.2?}");
    println!(
        "throughput: {:.1} batches/s, {:.0} balls/s",
        report.batches_per_sec(),
        report.stream_balls_per_sec()
    );
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// Render nanoseconds as microseconds with one decimal, for the serve
/// checkpoint table.
fn micros(nanos: u64) -> String {
    format!("{:.1}", nanos as f64 / 1e3)
}

/// `pba-run serve --replay` — the production facade: replay a synthetic
/// workload through a long-lived [`pba_stream::ReplayService`] (worker
/// thread + bounded backpressure queue) at a target rate, print one row
/// per checkpoint window with queue-to-placement latency percentiles, and
/// optionally snapshot the allocator state mid-replay (`--snapshot-at K
/// --snapshot FILE`) or resume a previous session (`--restore FILE`).
///
/// With `--snapshot FILE` but no `--snapshot-at`, the *final* state is
/// written — the natural handoff for a later `--restore` run. On restore
/// the snapshot defines the bin count, policy, shards, and seed (the
/// corresponding flags are ignored) and the workload generator is
/// fast-forwarded past the already-ingested prefix, so the resumed replay
/// continues bit-identically to an uninterrupted one.
fn run_serve(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--listen") {
        return run_serve_listen(args);
    }
    if args.iter().any(|a| a == "--send") {
        return run_serve_send(args);
    }
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut batch_spec = "4n".to_string();
    let mut batches: u64 = 32;
    let mut workload = "uniform".to_string();
    let mut churn = 0.0f64;
    let mut shards: usize = 1;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut rate = 0.0f64;
    let mut queue: usize = 4;
    let mut checkpoint_every: u64 = 8;
    let mut snapshot_at: Option<u64> = None;
    let mut snapshot_path: Option<String> = None;
    let mut restore_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            // The only mode today; named so `serve` can grow ingestion
            // modes later without breaking scripts.
            "--replay" => {}
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| {
                    let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown policy '{v}' (choose from: {})", names.join(", "))
                })?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--batch" => batch_spec = it.next().ok_or("--batch needs a value")?.clone(),
            "--batches" => {
                batches = it
                    .next()
                    .ok_or("--batches needs a value")?
                    .parse()
                    .map_err(|_| "bad --batches")?;
            }
            "--workload" => workload = it.next().ok_or("--workload needs a value")?.clone(),
            "--churn" => {
                churn = it
                    .next()
                    .ok_or("--churn needs a value")?
                    .parse()
                    .map_err(|_| "bad --churn")?;
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--parallel" => parallel = true,
            "--rate" => {
                rate = it
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|_| "bad --rate")?;
            }
            "--queue" => {
                queue = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --queue")?;
            }
            "--checkpoint-every" => {
                checkpoint_every = it
                    .next()
                    .ok_or("--checkpoint-every needs a value")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every")?;
            }
            "--snapshot-at" => {
                snapshot_at = Some(
                    it.next()
                        .ok_or("--snapshot-at needs a value")?
                        .parse()
                        .map_err(|_| "bad --snapshot-at")?,
                );
            }
            "--snapshot" => {
                snapshot_path = Some(it.next().ok_or("--snapshot needs a value")?.clone());
            }
            "--restore" => {
                restore_path = Some(it.next().ok_or("--restore needs a value")?.clone());
            }
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    if !rate.is_finite() || rate < 0.0 {
        return Err("--rate must be a finite rate >= 0 (0 = unthrottled)".into());
    }
    if queue == 0 {
        return Err("--queue must be at least 1".into());
    }
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if snapshot_at.is_some_and(|k| k == 0 || k > batches) {
        return Err(format!(
            "--snapshot-at must be in 1..={batches} (--batches)"
        ));
    }

    let (alloc, restored_bytes) = match &restore_path {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("--restore {path}: {e}"))?;
            let alloc =
                StreamAllocator::restore(&bytes).map_err(|e| format!("--restore {path}: {e}"))?;
            (alloc, bytes.len() as u64)
        }
        None => (StreamAllocator::new(n, seed, policy).with_shards(shards), 0),
    };
    // From here on the allocator is authoritative: on restore its meta
    // (bins, seed, policy, shards) comes from the snapshot, not the flags.
    let meta = alloc.meta();
    let (n, seed, shards, policy_name) = (meta.bins, meta.seed, meta.shards, meta.policy);
    let start_batch = alloc.batches();

    let b = parse_batch_size(&batch_spec, n)?;
    let kind = parse_workload_kind(&workload)?;
    let cfg = WorkloadCfg {
        kind,
        batch: b,
        churn,
        weights: WeightDist::Constant(1),
    };

    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    let sink: Arc<dyn MetricsSink> = match &trace {
        None => metrics.clone(),
        Some(t) => Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ])),
    };
    let mut alloc = alloc.with_metrics(sink);
    if parallel {
        alloc = alloc.parallel();
    }
    if let Some(plan) = faults {
        alloc = alloc.with_faults(plan);
    }

    // Same workload salt as `pba-run stream`; a restored session
    // fast-forwards the deterministic generator past the ingested prefix.
    let mut traffic = Workload::new(cfg, seed ^ 0x57AEA3);
    for _ in 0..start_batch {
        traffic.next_batch();
    }

    let mut service_cfg = ServiceConfig::default()
        .with_queue_capacity(queue)
        .with_checkpoint_every(checkpoint_every)
        .with_rate(rate);
    if let Some(k) = snapshot_at {
        service_cfg = service_cfg.with_snapshot_at(k);
    }

    let started = std::time::Instant::now();
    let (alloc, report) = replay(alloc, &mut traffic, batches, service_cfg);
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }

    // `--snapshot FILE` writes the mid-replay capture when `--snapshot-at`
    // named one, the final state otherwise.
    let mut snapshot_note = None;
    if let Some(path) = &snapshot_path {
        let (at, bytes) = match &report.snapshot {
            Some((at, bytes)) => (start_batch + at, bytes.clone()),
            None => (start_batch + report.batches, alloc.snapshot()),
        };
        std::fs::write(path, &bytes).map_err(|e| format!("--snapshot {path}: {e}"))?;
        snapshot_note = Some(format!("{path} ({} bytes, after batch {at})", bytes.len()));
    }

    let mut table = Table::new(
        format!(
            "Replay service {policy_name}: {batches} batches of b = {batch_spec} \
             ({b} arrivals), n = {n}, queue {queue}"
        ),
        &[
            "ckpt", "batches", "balls", "resident", "gap", "p50 µs", "p99 µs", "p999 µs",
        ],
    );
    for c in &report.checkpoints {
        table.push_row(vec![
            c.checkpoint.to_string(),
            c.batches.to_string(),
            c.balls.to_string(),
            c.resident.to_string(),
            c.gap.to_string(),
            micros(c.p50_nanos),
            micros(c.p99_nanos),
            micros(c.p999_nanos),
        ]);
    }
    println!("{}", table.to_markdown());

    let mode = if parallel { ", parallel" } else { "" };
    println!("policy:     {policy_name} ({shards} shard(s){mode})");
    println!("workload:   {workload}, b = {b}, churn {churn}, seed {seed}");
    let pacing = if rate > 0.0 {
        format!("{rate:.0} balls/s target")
    } else {
        "unthrottled".into()
    };
    println!("service:    queue {queue}, checkpoint every {checkpoint_every} batches, {pacing}");
    if let Some(path) = &restore_path {
        println!("restored:   {path} ({restored_bytes} bytes, resumed at batch {start_batch})");
    }
    if let Some(plan) = &faults {
        println!(
            "faults:     {} — {}/{batches} batches degraded, {} redirects",
            describe_fault_plan(plan),
            report.degraded_batches,
            report.fault_redirects
        );
    }
    println!(
        "latency:    p50 {} µs, p99 {} µs, p999 {} µs, max {} µs (queue to placement)",
        micros(report.total.p50()),
        micros(report.total.p99()),
        micros(report.total.p999()),
        micros(report.total.max())
    );
    println!(
        "resident:   {} balls in {n} bins (max load {}, gap {})",
        alloc.resident(),
        alloc.bin_state().max_load(),
        alloc.bin_state().gap()
    );
    if let Some(note) = snapshot_note {
        println!("snapshot:   {note}");
    } else if let Some((at, bytes)) = &report.snapshot {
        println!(
            "snapshot:   {} bytes after batch {} (pass --snapshot FILE to keep it)",
            bytes.len(),
            start_batch + at
        );
    }
    println!("wall time:  {elapsed:.2?}");
    println!(
        "throughput: {:.0} balls/s through the service",
        report.balls as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// The two halves of a connected ingest socket.
type IngestHalves = (Box<dyn std::io::Read>, Box<dyn std::io::Write>);

/// A connected ingest socket, split into its two halves.
fn connect_ingest(addr: &str) -> Result<IngestHalves, String> {
    if pba_cluster::transport::is_unix_addr(addr) {
        #[cfg(unix)]
        {
            let stream = std::os::unix::net::UnixStream::connect(addr)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let r = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
            return Ok((Box::new(r), Box::new(stream)));
        }
        #[cfg(not(unix))]
        return Err(format!(
            "unix socket path '{addr}' unsupported on this platform"
        ));
    }
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let r = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    Ok((Box::new(r), Box::new(stream)))
}

/// `pba-run serve --listen ADDR` — real traffic for the allocator: bind a
/// TCP or Unix-domain socket, accept one `serve --send` client, ingest
/// its framed batches (binary wire codec, checksummed), and report the
/// final state. The allocator ends bit-identical to an in-process run
/// that ingested the same batches.
fn run_serve_listen(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut shards: usize = 1;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => addr = it.next().ok_or("--listen needs an address")?.clone(),
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--parallel" => parallel = true,
            other => return Err(format!("unknown flag '{other}' for serve --listen")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let mut alloc = StreamAllocator::new(n, seed, policy).with_shards(shards);
    if parallel {
        alloc = alloc.parallel();
    }
    let started = std::time::Instant::now();
    let (mut reader, mut writer): (Box<dyn std::io::Read>, Box<dyn std::io::Write>) =
        if pba_cluster::transport::is_unix_addr(&addr) {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(&addr);
                let listener = std::os::unix::net::UnixListener::bind(&addr)
                    .map_err(|e| format!("bind {addr}: {e}"))?;
                println!("listening:  {addr} (unix)");
                let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                let _ = std::fs::remove_file(&addr);
                let r = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
                (Box::new(r), Box::new(stream))
            }
            #[cfg(not(unix))]
            return Err(format!(
                "unix socket path '{addr}' unsupported on this platform"
            ));
        } else {
            let listener =
                std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            println!("listening:  {addr} (tcp)");
            let (stream, peer) = listener.accept().map_err(|e| format!("accept: {e}"))?;
            println!("client:     {peer}");
            let r = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
            (Box::new(r), Box::new(stream))
        };
    let summary = pba_stream::ingest::serve_ingest(&mut reader, &mut writer, &mut alloc)?;
    let elapsed = started.elapsed();
    println!("policy:     {} ({shards} shard(s))", policy.name());
    println!(
        "ingested:   {} batches, {} balls over the socket",
        summary.batches, summary.balls
    );
    println!(
        "resident:   {} balls in {n} bins (max load {}, gap {})",
        summary.resident, summary.max_load, summary.gap
    );
    println!("wall time:  {elapsed:.2?}");
    Ok(())
}

/// `pba-run serve --send ADDR` — the driver for `serve --listen`:
/// generate the deterministic synthetic workload locally and ship it to
/// the listening allocator as framed batches, verifying every ack.
fn run_serve_send(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut batch_spec = "4n".to_string();
    let mut batches: u64 = 32;
    let mut workload = "uniform".to_string();
    let mut churn = 0.0f64;
    let mut seed = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--send" => addr = it.next().ok_or("--send needs an address")?.clone(),
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--batch" => batch_spec = it.next().ok_or("--batch needs a value")?.clone(),
            "--batches" => {
                batches = it
                    .next()
                    .ok_or("--batches needs a value")?
                    .parse()
                    .map_err(|_| "bad --batches")?;
            }
            "--workload" => workload = it.next().ok_or("--workload needs a value")?.clone(),
            "--churn" => {
                churn = it
                    .next()
                    .ok_or("--churn needs a value")?
                    .parse()
                    .map_err(|_| "bad --churn")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            other => return Err(format!("unknown flag '{other}' for serve --send")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    let b = parse_batch_size(&batch_spec, n)?;
    let kind = parse_workload_kind(&workload)?;
    let cfg = WorkloadCfg {
        kind,
        batch: b,
        churn,
        weights: WeightDist::Constant(1),
    };
    // Same workload salt as `pba-run serve --replay`: a listen/send pair
    // with these flags reproduces the local replay bit for bit.
    let mut traffic = Workload::new(cfg, seed ^ 0x57AEA3);
    let hello = pba_stream::IngestFrame::Hello {
        n,
        seed,
        policy: policy.name().to_owned(),
    };
    let started = std::time::Instant::now();
    let (mut reader, mut writer) = connect_ingest(&addr)?;
    let summary =
        pba_stream::ingest::drive_ingest(&mut reader, &mut writer, &hello, &mut traffic, batches)?;
    let elapsed = started.elapsed();
    println!("sent:       {batches} batches of b = {b} to {addr}");
    println!(
        "server:     {} balls ingested, resident {}, max load {}, gap {}",
        summary.balls, summary.resident, summary.max_load, summary.gap
    );
    println!("wall time:  {elapsed:.2?}");
    Ok(())
}

/// `pba-run cluster` — run an engine protocol or a streaming policy over
/// real shard processes: one `pba-run shard-worker` child per bin range
/// (stdin/stdout pipes by default; `--socket` swaps in Unix-domain
/// sockets, `--connect` targets already-listening workers, `--local`
/// worker threads over in-memory pipes). All transports speak the same
/// checksummed wire frames — binary by default, `--wire json` for the
/// human-readable compat path. Runs are bit-identical to the
/// single-process equivalent for the same seed regardless of transport,
/// codec, or `--no-overlap`; the orchestrator verifies per-wave checksums
/// and a final drain.
fn run_cluster(args: &[String]) -> Result<(), String> {
    let Some(mode) = args.first() else {
        return Err("cluster: missing mode ('protocol' or 'stream')".into());
    };
    match mode.as_str() {
        "protocol" => run_cluster_protocol(&args[1..]),
        "stream" => run_cluster_stream(&args[1..]),
        other => Err(format!(
            "cluster: unknown mode '{other}' (protocol or stream)"
        )),
    }
}

/// Which transport carries the cluster's wire frames.
enum ClusterTransport {
    /// Child processes over stdin/stdout pipes (the default).
    Process,
    /// Worker threads over in-memory pipes.
    Local,
    /// Managed child processes over Unix-domain sockets.
    Socket,
    /// Unmanaged, already-listening workers (one address per shard).
    Connect(Vec<String>),
}

impl ClusterTransport {
    fn describe(&self) -> &'static str {
        match self {
            ClusterTransport::Process => "processes",
            ClusterTransport::Local => "local threads",
            ClusterTransport::Socket => "socket workers",
            ClusterTransport::Connect(_) => "remote workers",
        }
    }

    fn run(&self, cfg: pba_cluster::ClusterConfig) -> Result<pba_cluster::ClusterOutcome, String> {
        match self {
            ClusterTransport::Process => cfg.run_process(),
            ClusterTransport::Local => cfg.run_local(),
            ClusterTransport::Socket => cfg.run_socket(),
            ClusterTransport::Connect(addrs) => cfg.run_connect(addrs),
        }
        .map_err(|e| e.to_string())
    }
}

/// Parse `--kill SHARD@BATCH`, e.g. `2@5`.
fn parse_kill(v: &str) -> Result<(u32, u64), String> {
    let (s, b) = v
        .split_once('@')
        .ok_or_else(|| format!("bad --kill '{v}' (expected SHARD@BATCH, e.g. 2@5)"))?;
    let shard = s.parse().map_err(|_| format!("bad --kill shard '{s}'"))?;
    let batch = b.parse().map_err(|_| format!("bad --kill batch '{b}'"))?;
    Ok((shard, batch))
}

/// The metrics sink for a cluster run: the aggregator, fanned out to the
/// JSONL trace when one was requested.
fn cluster_sink(
    metrics: &Arc<EngineMetrics>,
    trace: &Option<Arc<JsonlTrace>>,
) -> Arc<dyn MetricsSink> {
    match trace {
        None => metrics.clone(),
        Some(t) => Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ])),
    }
}

/// Per-shard wire accounting lines shared by both cluster sub-modes.
fn print_cluster_wire(out: &pba_cluster::ClusterOutcome) {
    println!(
        "wire:       {} frames, {} bytes over {} shard link(s)",
        out.total_frames(),
        out.total_bytes(),
        out.shard_records.len()
    );
    for r in &out.shard_records {
        println!(
            "  shard {}: bins [{}, {}), frames {} out / {} in, bytes {} out / {} in, \
             {} barriers{}",
            r.shard,
            r.lo,
            r.hi,
            r.frames_sent,
            r.frames_recv,
            r.bytes_sent,
            r.bytes_recv,
            r.barriers,
            if r.killed { ", killed" } else { "" }
        );
    }
}

fn run_cluster_protocol(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("cluster protocol: missing name".into());
    };
    let mut m = 1u64 << 20;
    let mut n = 1u32 << 10;
    let mut seed = 0u64;
    let mut shards = 2u32;
    let mut transport = ClusterTransport::Process;
    let mut wire = pba_cluster::WireFormat::Binary;
    let mut overlap = true;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--m" => {
                m = it
                    .next()
                    .ok_or("--m needs a value")?
                    .parse()
                    .map_err(|_| "bad --m")?
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?
            }
            "--local" => transport = ClusterTransport::Local,
            "--socket" => transport = ClusterTransport::Socket,
            "--connect" => {
                let addrs = it.next().ok_or("--connect needs addresses")?;
                transport =
                    ClusterTransport::Connect(addrs.split(',').map(str::to_owned).collect());
            }
            "--wire" => {
                wire =
                    pba_cluster::WireFormat::parse_flag(it.next().ok_or("--wire needs a value")?)?;
            }
            "--no-overlap" => overlap = false,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if !protocol_names().contains(&name.as_str()) {
        return Err(format!(
            "unknown protocol '{name}' (try `pba-run protocols`)"
        ));
    }
    if shards == 0 || shards > n {
        return Err(format!("--shards must be in 1..={n} (the bin count)"));
    }
    let spec = ProblemSpec::new(m, n).map_err(|e| e.to_string())?;
    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    let mut cfg = ClusterConfig::engine(name, spec, seed)
        .with_shards(shards)
        .with_wire(wire)
        .with_overlap(overlap)
        .with_metrics(cluster_sink(&metrics, &trace));
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let started = std::time::Instant::now();
    let out = transport.run(cfg)?;
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    let run = out.run.as_ref().expect("engine outcome");
    let stats = run.load_stats();
    println!(
        "protocol:   {} (cluster: {shards} shard(s) as {}, {} wire{})",
        run.protocol,
        transport.describe(),
        wire.name(),
        if overlap { "" } else { ", no overlap" }
    );
    println!("spec:       {spec}");
    println!("rounds:     {}", run.rounds);
    println!(
        "placed:     {} ({} unallocated)",
        run.placed, run.unallocated
    );
    println!("max load:   {} (gap {})", stats.max(), run.gap());
    if let Some(plan) = &faults {
        println!("faults:     {}", describe_fault_plan(plan));
    }
    println!(
        "messages:   {} total ({} requests, {} responses, {} commits)",
        run.messages.total(),
        run.messages.requests,
        run.messages.responses,
        run.messages.commits
    );
    print_cluster_wire(&out);
    println!("wall time:  {elapsed:.2?}");
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

fn run_cluster_stream(args: &[String]) -> Result<(), String> {
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut batch_spec = "4n".to_string();
    let mut batches: u64 = 32;
    let mut workload = "uniform".to_string();
    let mut churn = 0.0f64;
    let mut shards = 2u32;
    let mut seed = 0u64;
    let mut kill: Option<(u32, u64)> = None;
    let mut transport = ClusterTransport::Process;
    let mut wire = pba_cluster::WireFormat::Binary;
    let mut overlap = true;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| {
                    let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown policy '{v}' (choose from: {})", names.join(", "))
                })?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--batch" => batch_spec = it.next().ok_or("--batch needs a value")?.clone(),
            "--batches" => {
                batches = it
                    .next()
                    .ok_or("--batches needs a value")?
                    .parse()
                    .map_err(|_| "bad --batches")?;
            }
            "--workload" => workload = it.next().ok_or("--workload needs a value")?.clone(),
            "--churn" => {
                churn = it
                    .next()
                    .ok_or("--churn needs a value")?
                    .parse()
                    .map_err(|_| "bad --churn")?;
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--kill" => {
                kill = Some(parse_kill(it.next().ok_or("--kill needs a value")?)?);
            }
            "--local" => transport = ClusterTransport::Local,
            "--socket" => transport = ClusterTransport::Socket,
            "--connect" => {
                let addrs = it.next().ok_or("--connect needs addresses")?;
                transport =
                    ClusterTransport::Connect(addrs.split(',').map(str::to_owned).collect());
            }
            "--wire" => {
                wire =
                    pba_cluster::WireFormat::parse_flag(it.next().ok_or("--wire needs a value")?)?;
            }
            "--no-overlap" => overlap = false,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    if shards == 0 || shards > n {
        return Err(format!("--shards must be in 1..={n} (the bin count)"));
    }
    let b = parse_batch_size(&batch_spec, n)?;
    let kind = parse_workload_kind(&workload)?;
    let cfg = WorkloadCfg {
        kind,
        batch: b,
        churn,
        weights: WeightDist::Constant(1),
    };
    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    let mut cluster = ClusterConfig::stream(policy, n, seed, batches, b)
        .with_workload(cfg)
        .with_shards(shards)
        .with_wire(wire)
        .with_overlap(overlap)
        .with_metrics(cluster_sink(&metrics, &trace));
    if let Some(plan) = faults {
        cluster = cluster.with_faults(plan);
    }
    if let Some((s, t)) = kill {
        cluster = cluster.with_kill(s, t);
    }
    let started = std::time::Instant::now();
    let out = transport.run(cluster)?;
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    let resident: u64 = out.loads.iter().sum();
    let max_load = out.loads.iter().copied().max().unwrap_or(0);
    println!(
        "policy:     {} (cluster: {shards} shard(s) as {}, {} wire{})",
        out.workload,
        transport.describe(),
        wire.name(),
        if overlap { "" } else { ", no overlap" }
    );
    println!("workload:   {workload}, b = {b}, churn {churn}, seed {seed}");
    if let Some((s, t)) = kill {
        println!(
            "chaos:      shard {s} killed before batch {t}; placements redirected to live domains"
        );
    }
    if let Some(plan) = &faults {
        println!("faults:     {}", describe_fault_plan(plan));
    }
    println!("batches:    {}", out.batches);
    println!(
        "resident:   {resident} balls in {n} bins (max load {max_load}, gap {})",
        max_load.saturating_sub(resident / u64::from(n))
    );
    print_cluster_wire(&out);
    println!("wall time:  {elapsed:.2?}");
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// One benchmark tier: problem size, rep count, protocol subset, executor
/// sweep, and tuning mode.
struct BenchTier {
    name: &'static str,
    n: u32,
    reps: u64,
    protocols: Vec<&'static str>,
    executors: Vec<ExecutorKind>,
    tuning: Tuning,
    stream: bool,
}

/// The hot subset measured at medium+ tiers: the paper's headline
/// protocols plus the single-choice baseline.
const HOT_PROTOCOLS: [&str; 4] = [
    "single-choice",
    "collision",
    "parallel-two-choice",
    "stemann-heavy",
];

/// Small-shaped tier: the full registry plus the stream section, with a
/// pinned fan-out geometry. The parallel rows need two fixes to report
/// genuine pool numbers in `BENCH_*.json` instead of `pool_jobs: 0`: a
/// dedicated 4-lane pool (the global pool collapses to one lane on
/// single-core runners, and one-lane rounds never fan out), and a chunk
/// geometry under the bench sizes (m = n ≤ 4096 sits below the auto
/// fan-out cutoff, which would silently serialize every round).
fn small_shaped_tier(name: &'static str, n: u32, reps: u64) -> BenchTier {
    BenchTier {
        name,
        n,
        reps,
        protocols: protocol_names().to_vec(),
        executors: vec![ExecutorKind::Sequential, ExecutorKind::ParallelWith(4)],
        tuning: Tuning::fixed(256, n as usize),
        stream: true,
    }
}

/// Medium+ tier: the hot subset across a lane sweep under [`Tuning::Auto`]
/// so lane-scaling curves come out of one invocation.
fn lane_sweep_tier(name: &'static str, n: u32, reps: u64) -> BenchTier {
    BenchTier {
        name,
        n,
        reps,
        protocols: HOT_PROTOCOLS.to_vec(),
        executors: vec![
            ExecutorKind::Sequential,
            ExecutorKind::ParallelWith(2),
            ExecutorKind::ParallelWith(4),
        ],
        tuning: Tuning::Auto,
        stream: false,
    }
}

/// The named bench/tune tiers, in size order.
const TIER_NAMES: [&str; 4] = ["small", "medium", "large", "xl"];

fn bench_tier(tier: &str) -> Result<BenchTier, String> {
    Ok(match tier {
        "small" => small_shaped_tier("small", 1 << 10, 5),
        "medium" => lane_sweep_tier("medium", 1 << 16, 3),
        "large" => lane_sweep_tier("large", 1 << 20, 2),
        "xl" => lane_sweep_tier("xl", 1 << 24, 1),
        other => return Err(unknown_tier_message(other)),
    })
}

/// Error text for an unrecognized `--tier` value: list the tiers and,
/// when something known is close, suggest it — same treatment experiment
/// ids and verify claims get.
fn unknown_tier_message(tier: &str) -> String {
    let lowered = tier.to_lowercase();
    let best = TIER_NAMES
        .iter()
        .map(|t| (edit_distance(&lowered, t), *t))
        .min()
        .filter(|&(d, _)| d <= 2);
    let hint = match best {
        Some((_, t)) => format!("did you mean '{t}'? "),
        None => String::new(),
    };
    format!(
        "unknown tier '{tier}': {hint}choose from: {}",
        TIER_NAMES.join(", ")
    )
}

/// Lanes an executor actually runs with (reported in every bench row).
fn executor_lanes(executor: ExecutorKind) -> usize {
    match executor {
        ExecutorKind::Sequential => 1,
        ExecutorKind::Parallel => pba_par::global_pool().lanes(),
        ExecutorKind::ParallelWith(lanes) => lanes.max(1),
    }
}

fn tuning_mode(tuning: Tuning) -> &'static str {
    match tuning {
        Tuning::Auto => "auto",
        Tuning::Fixed(_) => "fixed",
    }
}

/// Resolve `--out` into a file path: a value ending in `.json` names the
/// file exactly (for side-by-side baseline comparisons via
/// `scripts/bench_diff.sh`); anything else is a directory receiving
/// `default_name`.
fn resolve_out_path(out: Option<&str>, default_name: &str) -> Result<String, String> {
    let out = out.unwrap_or(".");
    if out.ends_with(".json") {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        Ok(out.to_string())
    } else {
        std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
        Ok(format!("{out}/{default_name}"))
    }
}

/// Criterion-free self-timing benchmark of the protocol registry at one
/// tier: each tier's protocol subset at `m = n` across its executor
/// sweep, `reps` seeds each, measured by the engine's own
/// [`EngineMetrics`]; the small-shaped tiers additionally time every
/// streaming placement policy ingesting 32n-ball batches. Every JSON row
/// carries the actual lane count and the resolved tuning, and the doc is
/// written to `BENCH_<tier>.json`.
fn run_bench(args: &[String]) -> Result<(), String> {
    let mut tier_name: Option<String> = None;
    let mut scale: Option<Scale> = None;
    let mut out_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tier" => {
                tier_name = Some(it.next().ok_or("--tier needs a value")?.clone());
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = Some(Scale::parse(v).ok_or_else(|| format!("bad scale '{v}'"))?);
            }
            "--out" => out_dir = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--trace" => return Err("bench does not take --trace".into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if tier_name.is_some() && scale.is_some() {
        return Err("bench takes --tier or --scale, not both".into());
    }
    // `--scale` is the legacy spelling of the small-shaped tiers (smoke
    // and full keep their historical sizes); `--tier` adds the lane-sweep
    // campaign sizes. The default is the small tier — the committed
    // BENCH_small.json baseline and the CI throughput gate.
    let tier = match (tier_name.as_deref(), scale) {
        (Some(t), None) => bench_tier(t)?,
        (None, Some(Scale::Smoke)) => {
            small_shaped_tier("smoke", 1 << 8, Scale::Smoke.reps() as u64)
        }
        (None, Some(Scale::Full)) => small_shaped_tier("full", 1 << 12, Scale::Full.reps() as u64),
        (None, _) => small_shaped_tier("small", 1 << 10, Scale::Default.reps() as u64),
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };

    let n = tier.n;
    let reps = tier.reps;
    let spec = ProblemSpec::new(n as u64, n).map_err(|e| e.to_string())?;
    eprintln!(
        "benchmarking {} protocol(s) at m = n = {n} ({} tier), {reps} seed(s), {} executor(s)…",
        tier.protocols.len(),
        tier.name,
        tier.executors.len()
    );
    let mut entries = Vec::new();
    println!(
        "{:<22} {:<12} {:>6} {:>12} {:>12} {:>9}",
        "protocol", "executor", "lanes", "balls/s", "rounds/s", "rounds"
    );
    for &name in &tier.protocols {
        for &executor in &tier.executors {
            let lanes = executor_lanes(executor);
            let metrics = Arc::new(EngineMetrics::new());
            for rep in 0..reps {
                let cfg = RunConfig::seeded(90_000 + rep)
                    .with_executor(executor)
                    .with_tuning(tier.tuning)
                    .with_trace(false)
                    .with_metrics(metrics.clone());
                run_by_name(name, spec, cfg)
                    .expect("registry name")
                    .map_err(|e| format!("{name} ({}): {e}", executor_str(executor)))?;
            }
            let report = metrics.report();
            println!(
                "{:<22} {:<12} {:>6} {:>12.0} {:>12.1} {:>9}",
                name,
                executor_str(executor),
                lanes,
                report.balls_per_sec(),
                report.rounds_per_sec(),
                report.rounds
            );
            // The resolved plan for a full-size round (under auto tuning
            // later rounds re-resolve as the active set drains).
            let plan = tier.tuning.plan(spec.balls(), lanes);
            let mut entry = JsonObject::new()
                .str("protocol", name)
                .str("executor", &executor_str(executor))
                .u64("lanes", lanes as u64)
                .str("tuning", tuning_mode(tier.tuning))
                .u64("min_chunk", plan.min_chunk as u64)
                .u64("par_cutoff", plan.par_cutoff as u64)
                .u64("runs", report.runs)
                .u64("rounds", report.rounds)
                .u64("placed", report.placed)
                .u64("run_nanos", report.run_nanos)
                .u64("round_nanos", report.round_nanos)
                .f64("balls_per_sec", report.balls_per_sec())
                .f64("rounds_per_sec", report.rounds_per_sec())
                .raw("phase_nanos", &u64_array(&report.phase_nanos));
            if let Some(pool) = &report.pool {
                entry = entry
                    .u64("pool_jobs", pool.jobs)
                    .u64("pool_tasks", pool.tasks)
                    .u64("pool_busy_nanos", pool.total_busy_nanos());
            }
            entries.push(entry.finish());
        }
    }

    // Streaming throughput (small-shaped tiers): every placement policy
    // ingesting 32n-ball batches (32n ≥ the ingest parallel cutoff at
    // every scale), so the parallel rows genuinely exercise the pool.
    let stream_b = 32 * n as u64;
    let stream_batches = 8u64;
    let mut stream_entries = Vec::new();
    if tier.stream {
        eprintln!(
            "benchmarking {} stream policies at n = {n}, b = 32n, {reps} seeds…",
            PolicyKind::ALL.len()
        );
        println!();
        println!(
            "{:<22} {:<12} {:>12} {:>12} {:>14}",
            "stream policy", "ingest", "batches/s", "balls/s", "balls/s/lane"
        );
        for kind in PolicyKind::ALL {
            for parallel in [false, true] {
                // Live-load two-choice is defined by sequential ingestion;
                // a "parallel" row would just repeat the sequential
                // numbers.
                if parallel && matches!(kind, PolicyKind::TwoChoice) {
                    continue;
                }
                let lanes = if parallel {
                    pba_par::global_pool().lanes() as u64
                } else {
                    1
                };
                let metrics = Arc::new(EngineMetrics::new());
                for rep in 0..reps {
                    let mut alloc = StreamAllocator::new(n, 91_000 + rep, kind)
                        .with_shards(lanes as usize)
                        .with_metrics(metrics.clone());
                    if parallel {
                        alloc = alloc.parallel();
                    }
                    let mut traffic = Workload::new(WorkloadCfg::uniform(stream_b), 92_000 + rep);
                    for _ in 0..stream_batches {
                        alloc.ingest(&traffic.next_batch());
                    }
                }
                let report = metrics.report();
                let ingest = if parallel { "parallel" } else { "sequential" };
                let balls_per_sec = report.stream_balls_per_sec();
                println!(
                    "{:<22} {:<12} {:>12.1} {:>12.0} {:>14.0}",
                    kind.name(),
                    ingest,
                    report.batches_per_sec(),
                    balls_per_sec,
                    balls_per_sec / lanes as f64
                );
                // The allocator runs Tuning::Auto; report the plan it
                // resolves for a full-size batch.
                let plan = Tuning::Auto.plan_ingest(stream_b, lanes as usize);
                stream_entries.push(
                    JsonObject::new()
                        .str("policy", kind.name())
                        .str("ingest", ingest)
                        .u64("lanes", lanes)
                        .str("tuning", "auto")
                        .u64("min_chunk", plan.min_chunk as u64)
                        .u64("par_cutoff", plan.par_cutoff as u64)
                        .u64("batches", report.batches)
                        .u64("balls", report.batch_arrivals)
                        .u64("batch_nanos", report.batch_nanos)
                        .f64("batches_per_sec", report.batches_per_sec())
                        .f64("balls_per_sec", balls_per_sec)
                        .f64("balls_per_sec_per_lane", balls_per_sec / lanes as f64)
                        .finish(),
                );
            }
        }
    }

    // Cluster mode (small-shaped tiers): wire cost and throughput of the
    // sharded orchestration at 1/2/4 shards. Worker threads over
    // in-memory pipes carry the identical wire protocol; spawning real
    // processes here would benchmark the OS, not the waves. The rows lack
    // the protocol/executor and policy/ingest keys `bench_diff.sh`
    // matches on, so the section rides along outside the regression gate.
    let mut cluster_entries = Vec::new();
    if tier.stream {
        eprintln!("benchmarking cluster mode at m = n = {n}, shards 1/2/4, both codecs…");
        println!();
        println!(
            "{:<22} {:>7} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "cluster", "shards", "wire", "balls/s", "frames", "bytes", "bytes/wave"
        );
        for shards in [1u32, 2, 4] {
            for wire in [
                pba_cluster::WireFormat::Binary,
                pba_cluster::WireFormat::Json,
            ] {
                let started = std::time::Instant::now();
                let out = ClusterConfig::engine("collision", spec, 93_000)
                    .with_shards(shards)
                    .with_wire(wire)
                    .run_local()
                    .map_err(|e| {
                        format!("cluster bench ({shards} shards, {}): {e}", wire.name())
                    })?;
                let nanos = started.elapsed().as_nanos() as u64;
                let run = out.run.as_ref().expect("engine outcome");
                let bps = run.placed as f64 / (nanos as f64 / 1e9);
                // Every shard crosses the same barriers; shard 0's count
                // is the wave count of the whole run.
                let waves = out.shard_records.first().map_or(0, |r| r.barriers);
                let bytes_per_wave = out.total_bytes() / waves.max(1);
                println!(
                    "{:<22} {:>7} {:>7} {:>12.0} {:>12} {:>12} {:>12}",
                    "engine/collision",
                    shards,
                    wire.name(),
                    bps,
                    out.total_frames(),
                    out.total_bytes(),
                    bytes_per_wave
                );
                cluster_entries.push(
                    JsonObject::new()
                        .str("mode", "engine")
                        .str("workload", out.workload)
                        .str("wire", wire.name())
                        .u64("n", u64::from(n))
                        .u64("shards", u64::from(shards))
                        .u64("rounds", u64::from(run.rounds))
                        .u64("placed", run.placed)
                        .u64("messages", run.messages.total())
                        .u64("frames", out.total_frames())
                        .u64("bytes", out.total_bytes())
                        .u64("waves", waves)
                        .u64("wire_bytes_per_wave", bytes_per_wave)
                        .u64("wall_nanos", nanos)
                        .f64("balls_per_sec", bps)
                        .finish(),
                );
            }
        }

        // The headline wire claim is measured at n = 2^20 regardless of
        // the tier size: binary frames must cut bytes per wave by >= 3x
        // against JSON lines on the identical run. Shards 4 keeps the
        // run representative of a real fan-out without benchmarking the
        // scheduler.
        let wide_n = 1u32 << 20;
        let wide_spec = ProblemSpec::new(u64::from(wide_n), wide_n).map_err(|e| e.to_string())?;
        eprintln!("benchmarking wire codecs at m = n = 2^20, 4 shards…");
        let mut per_wave = [0u64; 2];
        for (slot, wire) in [
            pba_cluster::WireFormat::Binary,
            pba_cluster::WireFormat::Json,
        ]
        .into_iter()
        .enumerate()
        {
            let started = std::time::Instant::now();
            let out = ClusterConfig::engine("collision", wide_spec, 93_000)
                .with_shards(4)
                .with_wire(wire)
                .run_local()
                .map_err(|e| format!("wire bench ({}): {e}", wire.name()))?;
            let nanos = started.elapsed().as_nanos() as u64;
            let run = out.run.as_ref().expect("engine outcome");
            let bps = run.placed as f64 / (nanos as f64 / 1e9);
            let waves = out.shard_records.first().map_or(0, |r| r.barriers);
            let bytes_per_wave = out.total_bytes() / waves.max(1);
            per_wave[slot] = bytes_per_wave;
            println!(
                "{:<22} {:>7} {:>7} {:>12.0} {:>12} {:>12} {:>12}",
                "engine/collision 2^20",
                4,
                wire.name(),
                bps,
                out.total_frames(),
                out.total_bytes(),
                bytes_per_wave
            );
            cluster_entries.push(
                JsonObject::new()
                    .str("mode", "engine")
                    .str("workload", out.workload)
                    .str("wire", wire.name())
                    .u64("n", u64::from(wide_n))
                    .u64("shards", 4)
                    .u64("rounds", u64::from(run.rounds))
                    .u64("placed", run.placed)
                    .u64("messages", run.messages.total())
                    .u64("frames", out.total_frames())
                    .u64("bytes", out.total_bytes())
                    .u64("waves", waves)
                    .u64("wire_bytes_per_wave", bytes_per_wave)
                    .u64("wall_nanos", nanos)
                    .f64("balls_per_sec", bps)
                    .finish(),
            );
        }
        if per_wave[0] > 0 {
            println!(
                "wire ratio at n = 2^20:  json/binary = {:.2}x bytes per wave",
                per_wave[1] as f64 / per_wave[0] as f64
            );
        }
    }

    // Replay-service latency (small-shaped tiers): each workload shape
    // replayed unthrottled through the service facade, reporting
    // queue-to-placement latency percentiles per ball. Entries carry no
    // `ingest` key, so they ride outside the `bench_diff.sh` gate like
    // the cluster section.
    let serve_b = 4 * n as u64;
    let serve_batches = 12u64;
    let mut service_entries = Vec::new();
    if tier.stream {
        eprintln!("benchmarking replay service at n = {n}, b = 4n, 3 workloads…");
        println!();
        println!(
            "{:<22} {:>12} {:>10} {:>10} {:>10}",
            "serve workload", "balls/s", "p50 µs", "p99 µs", "p999 µs"
        );
        for workload in ["uniform", "zipf", "burst"] {
            let kind = parse_workload_kind(workload)?;
            let cfg = WorkloadCfg {
                kind,
                batch: serve_b,
                churn: 0.0,
                weights: WeightDist::Constant(1),
            };
            let alloc = StreamAllocator::new(n, 94_000, PolicyKind::BatchedTwoChoice);
            let mut traffic = Workload::new(cfg, 94_500);
            let service_cfg = ServiceConfig::default()
                .with_queue_capacity(4)
                .with_checkpoint_every(4);
            let started = std::time::Instant::now();
            let (_, report) = replay(alloc, &mut traffic, serve_batches, service_cfg);
            let nanos = started.elapsed().as_nanos() as u64;
            let bps = report.balls as f64 / (nanos as f64 / 1e9);
            println!(
                "{:<22} {:>12.0} {:>10.1} {:>10.1} {:>10.1}",
                workload,
                bps,
                report.total.p50() as f64 / 1e3,
                report.total.p99() as f64 / 1e3,
                report.total.p999() as f64 / 1e3
            );
            service_entries.push(
                JsonObject::new()
                    .str("workload", workload)
                    .str("policy", "batched-two-choice")
                    .u64("queue", 4)
                    .u64("batches", report.batches)
                    .u64("balls", report.balls)
                    .u64("checkpoints", report.checkpoints.len() as u64)
                    .u64("p50_nanos", report.total.p50())
                    .u64("p99_nanos", report.total.p99())
                    .u64("p999_nanos", report.total.p999())
                    .u64("max_nanos", report.total.max())
                    .u64("wall_nanos", nanos)
                    .f64("balls_per_sec", bps)
                    .finish(),
            );
        }
    }

    let mut doc = JsonObject::new()
        .str("bench", "pba protocol registry")
        .str("tier", tier.name)
        .str("scale", tier.name)
        .u64("m", spec.balls())
        .u64("n", spec.bins() as u64)
        .u64("reps", reps)
        .str("tuning", tuning_mode(tier.tuning))
        .raw("phases", &phase_names_json())
        .raw("entries", &format!("[{}]", entries.join(",")));
    if tier.stream {
        doc = doc
            .u64("stream_batch", stream_b)
            .u64("stream_batches", stream_batches)
            .raw("stream_entries", &format!("[{}]", stream_entries.join(",")))
            .raw(
                "cluster_entries",
                &format!("[{}]", cluster_entries.join(",")),
            )
            .u64("service_batch", serve_b)
            .u64("service_batches", serve_batches)
            .raw(
                "service_entries",
                &format!("[{}]", service_entries.join(",")),
            );
    }
    let doc = doc.finish();
    let path = resolve_out_path(out_dir.as_deref(), &format!("BENCH_{}.json", tier.name))?;
    std::fs::write(&path, format!("{doc}\n")).map_err(|e| e.to_string())?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Measure one registry protocol's throughput (balls/s) at `m = n` with
/// a pinned executor and tuning, aggregated over `reps` seeded runs.
fn tune_point(
    name: &str,
    n: u32,
    executor: ExecutorKind,
    tuning: Tuning,
    reps: u64,
) -> Result<f64, String> {
    let spec = ProblemSpec::new(n as u64, n).map_err(|e| e.to_string())?;
    let metrics = Arc::new(EngineMetrics::new());
    for rep in 0..reps {
        let cfg = RunConfig::seeded(95_000 + rep)
            .with_executor(executor)
            .with_tuning(tuning)
            .with_trace(false)
            .with_metrics(metrics.clone());
        run_by_name(name, spec, cfg)
            .expect("registry name")
            .map_err(|e| format!("{name}: {e}"))?;
    }
    Ok(metrics.report().balls_per_sec())
}

/// Measure streaming ingest throughput (balls/s) for one batch size.
fn tune_ingest_point(n: u32, b: u64, parallel: bool, tuning: Tuning, reps: u64) -> f64 {
    let metrics = Arc::new(EngineMetrics::new());
    for rep in 0..reps {
        let mut alloc = StreamAllocator::new(n, 96_000 + rep, PolicyKind::BatchedTwoChoice)
            .with_shards(4)
            .with_tuning(tuning)
            .with_metrics(metrics.clone());
        if parallel {
            alloc = alloc.parallel();
        }
        let mut traffic = Workload::new(WorkloadCfg::uniform(b), 97_000 + rep);
        for _ in 0..4 {
            alloc.ingest(&traffic.next_batch());
        }
    }
    metrics.report().stream_balls_per_sec()
}

/// `pba-run tune` — sweep the chunk-geometry knobs at one tier and write
/// `tuning.json`: the measurements that feed the shipped `Tuning::Auto`
/// tables (`AUTO_*` constants in `pba_core::exec`). Three sweeps:
///
/// 1. **min_chunk** — parallel(4) single-choice at the tier size with the
///    fan-out forced, across per-chunk floors; the best floor is the
///    `AUTO_MIN_CHUNK_FLOOR` candidate.
/// 2. **crossover** — sequential vs parallel(4) across geometric problem
///    sizes up to the tier size; the smallest size where parallel wins is
///    the `AUTO_PAR_CUTOFF` candidate (absent on hardware where parallel
///    never wins — single-core runners — in which case the shipped
///    default is kept and reported as such).
/// 3. **ingest** — the same two sweeps for the streaming snapshot path.
fn run_tune(args: &[String]) -> Result<(), String> {
    let mut tier_name = "medium".to_string();
    let mut out_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tier" => tier_name = it.next().ok_or("--tier needs a value")?.clone(),
            "--out" => out_dir = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let tier = bench_tier(&tier_name)?;
    let n = tier.n;
    let reps = tier.reps.max(2);
    let par4 = ExecutorKind::ParallelWith(4);

    // --- Sweep 1: per-chunk floor at the tier size, fan-out forced.
    eprintln!("tune: min_chunk sweep at m = n = {n} ({tier_name} tier)…");
    println!("{:<14} {:>14}", "min_chunk", "par(4) balls/s");
    let mut mc_rows = Vec::new();
    let mut best_mc = (pba_core::exec::AUTO_MIN_CHUNK_FLOOR, 0.0f64);
    for mc in [1usize << 10, 1 << 12, 1 << 13, 1 << 14, 1 << 16] {
        if mc > n as usize {
            continue;
        }
        let bps = tune_point("single-choice", n, par4, Tuning::fixed(mc, 1), reps)?;
        println!("{:<14} {:>14.0}", mc, bps);
        if bps > best_mc.1 {
            best_mc = (mc, bps);
        }
        mc_rows.push(
            JsonObject::new()
                .u64("min_chunk", mc as u64)
                .f64("balls_per_sec", bps)
                .finish(),
        );
    }

    // --- Sweep 2: serial→parallel crossover over geometric sizes.
    eprintln!("tune: crossover sweep (sequential vs parallel(4))…");
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "work", "seq balls/s", "par(4) balls/s", "winner"
    );
    let mut cross_rows = Vec::new();
    let mut crossover: Option<u64> = None;
    let mut w = 1u32 << 12;
    loop {
        let seq = tune_point(
            "single-choice",
            w,
            ExecutorKind::Sequential,
            Tuning::Auto,
            reps,
        )?;
        let par = tune_point(
            "single-choice",
            w,
            par4,
            Tuning::fixed(best_mc.0.min(w as usize), 1),
            reps,
        )?;
        let winner = if par > seq { "parallel" } else { "serial" };
        if par > seq && crossover.is_none() {
            crossover = Some(w as u64);
        }
        println!("{:<12} {:>14.0} {:>14.0} {:>8}", w, seq, par, winner);
        cross_rows.push(
            JsonObject::new()
                .u64("work", w as u64)
                .f64("seq_balls_per_sec", seq)
                .f64("par_balls_per_sec", par)
                .str("winner", winner)
                .finish(),
        );
        if w >= n {
            break;
        }
        w = (w << 2).min(n);
    }

    // --- Sweep 3: ingest crossover + floor for the streaming path.
    let ingest_n = n.min(1 << 12);
    eprintln!("tune: ingest sweep at n = {ingest_n} (batched-two-choice)…");
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "batch", "seq balls/s", "par balls/s", "winner"
    );
    let mut ingest_rows = Vec::new();
    let mut ingest_crossover: Option<u64> = None;
    for b in [1u64 << 11, 1 << 13, 1 << 15, 1 << 17] {
        let seq = tune_ingest_point(ingest_n, b, false, Tuning::Auto, reps);
        let par = tune_ingest_point(
            ingest_n,
            b,
            true,
            Tuning::fixed(pba_core::exec::AUTO_INGEST_MIN_CHUNK, 1),
            reps,
        );
        let winner = if par > seq { "parallel" } else { "serial" };
        if par > seq && ingest_crossover.is_none() {
            ingest_crossover = Some(b);
        }
        println!("{:<12} {:>14.0} {:>14.0} {:>8}", b, seq, par, winner);
        ingest_rows.push(
            JsonObject::new()
                .u64("batch", b)
                .f64("seq_balls_per_sec", seq)
                .f64("par_balls_per_sec", par)
                .str("winner", winner)
                .finish(),
        );
    }

    // Shipped constants, and what this box's measurements suggest. A null
    // crossover means parallel never won (expected on single-core
    // runners): the shipped cutoff is kept rather than disabling fan-out
    // for the hardware the binary was tuned on elsewhere.
    let suggested_cutoff = crossover.unwrap_or(pba_core::exec::AUTO_PAR_CUTOFF as u64);
    let suggested_ingest_cutoff =
        ingest_crossover.unwrap_or(pba_core::exec::AUTO_INGEST_PAR_CUTOFF as u64);
    println!();
    println!(
        "suggested: min_chunk_floor {} (measured best), par_cutoff {} ({}), \
         ingest_par_cutoff {} ({})",
        best_mc.0,
        suggested_cutoff,
        if crossover.is_some() {
            "measured crossover"
        } else {
            "no crossover measured; shipped default kept"
        },
        suggested_ingest_cutoff,
        if ingest_crossover.is_some() {
            "measured crossover"
        } else {
            "no crossover measured; shipped default kept"
        },
    );

    let doc = JsonObject::new()
        .str("tool", "pba-run tune")
        .str("tier", tier.name)
        .u64("n", n as u64)
        .u64("reps", reps)
        .raw("min_chunk_sweep", &format!("[{}]", mc_rows.join(",")))
        .u64("best_min_chunk", best_mc.0 as u64)
        .raw("crossover_sweep", &format!("[{}]", cross_rows.join(",")))
        .raw(
            "measured_par_crossover",
            &crossover.map_or("null".into(), |c| c.to_string()),
        )
        .raw("ingest_sweep", &format!("[{}]", ingest_rows.join(",")))
        .raw(
            "measured_ingest_crossover",
            &ingest_crossover.map_or("null".into(), |c| c.to_string()),
        )
        .raw(
            "suggested",
            &JsonObject::new()
                .u64("min_chunk_floor", best_mc.0 as u64)
                .u64("par_cutoff", suggested_cutoff)
                .u64(
                    "ingest_min_chunk",
                    pba_core::exec::AUTO_INGEST_MIN_CHUNK as u64,
                )
                .u64("ingest_par_cutoff", suggested_ingest_cutoff)
                .finish(),
        )
        .raw(
            "shipped",
            &JsonObject::new()
                .u64(
                    "min_chunk_floor",
                    pba_core::exec::AUTO_MIN_CHUNK_FLOOR as u64,
                )
                .u64("par_cutoff", pba_core::exec::AUTO_PAR_CUTOFF as u64)
                .u64(
                    "ingest_min_chunk",
                    pba_core::exec::AUTO_INGEST_MIN_CHUNK as u64,
                )
                .u64(
                    "ingest_par_cutoff",
                    pba_core::exec::AUTO_INGEST_PAR_CUTOFF as u64,
                )
                .finish(),
        )
        .finish();
    let path = resolve_out_path(out_dir.as_deref(), "tuning.json")?;
    std::fs::write(&path, format!("{doc}\n")).map_err(|e| e.to_string())?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Error text for an unrecognized claim id: list the registry and, when
/// something known is close, suggest it — same treatment experiment ids
/// get in [`unknown_command_message`].
fn unknown_claim_message(id: &str) -> String {
    let ids = pba_conformance::claim_ids();
    let lowered = id.to_lowercase();
    let best = ids
        .iter()
        .map(|c| (edit_distance(&lowered, c), *c))
        .min()
        .filter(|&(d, _)| d <= 2);
    let hint = match best {
        Some((_, c)) => format!("did you mean '{c}'? "),
        None => String::new(),
    };
    format!(
        "unknown claim '{id}': {hint}registered oracles are {}",
        ids.join(", ")
    )
}

/// `pba-run verify` — run the statistical claim oracles from
/// `pba-conformance` and render a paper-style verdict table. Exits
/// nonzero when any claim is REFUTED, so CI catches a miswired engine;
/// `--faults` deliberately miswires every run (the negative control).
fn run_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut scale = VerifyScale::Ci;
    let mut json = false;
    let mut faults = None;
    let mut requested: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = VerifyScale::parse(v)
                    .ok_or_else(|| format!("bad verify scale '{v}' (ci or full)"))?;
            }
            "--json" => json = true,
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            claim => requested.push(claim.to_string()),
        }
    }
    let claims: Vec<Box<dyn Claim>> = if requested.is_empty() {
        pba_conformance::all_claims()
    } else {
        requested
            .iter()
            .map(|id| pba_conformance::claim_by_id(id).ok_or_else(|| unknown_claim_message(id)))
            .collect::<Result<_, _>>()?
    };
    let opts = VerifyOptions {
        scale,
        miswire: faults,
    };

    eprintln!(
        "verifying {} claim(s) at {} scale ({} replicates each)…",
        claims.len(),
        scale.name(),
        scale.reps()
    );
    if let Some(plan) = &faults {
        eprintln!("miswired on purpose: {}", describe_fault_plan(plan));
    }
    let started = std::time::Instant::now();
    let reports: Vec<_> = claims
        .iter()
        .map(|c| {
            let t = std::time::Instant::now();
            let r = c.check(&opts);
            eprintln!(
                "  {:<12} {:<9} {:.1?}",
                r.id,
                r.verdict.as_str(),
                t.elapsed()
            );
            r
        })
        .collect();
    let elapsed = started.elapsed();
    let refuted = reports.iter().filter(|r| !r.confirmed()).count();

    if json {
        let entries: Vec<String> = reports
            .iter()
            .map(|r| {
                let notes: Vec<String> = r
                    .notes
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect();
                JsonObject::new()
                    .str("id", r.id)
                    .str("experiment", r.experiment)
                    .str("title", r.title)
                    .str("bound", &r.bound)
                    .str("observed", &r.observed)
                    .f64("mean", r.mean)
                    .f64("ci_lo", r.ci.0)
                    .f64("ci_hi", r.ci.1)
                    .str("verdict", r.verdict.as_str())
                    .raw("notes", &format!("[{}]", notes.join(",")))
                    .finish()
            })
            .collect();
        let doc = JsonObject::new()
            .str("scale", scale.name())
            .u64("claims", reports.len() as u64)
            .u64("refuted", refuted as u64)
            .raw("reports", &format!("[{}]", entries.join(",")))
            .finish();
        println!("{doc}");
    } else {
        let mut table = Table::new(
            format!(
                "Conformance verdicts at {} scale ({} replicates per point)",
                scale.name(),
                scale.reps()
            ),
            &["oracle", "exp", "bound", "observed", "verdict"],
        );
        for r in &reports {
            table.push_row(vec![
                r.id.to_string(),
                r.experiment.to_string(),
                r.bound.clone(),
                r.observed.clone(),
                r.verdict.as_str().to_string(),
            ]);
        }
        println!("{}", table.to_markdown());
        for r in &reports {
            if !r.notes.is_empty() {
                println!("{} — {}", r.id, r.title);
                for note in &r.notes {
                    println!("  · {note}");
                }
            }
        }
        println!();
        println!(
            "{} claim(s) checked in {:.1?}: {} CONFIRMED, {} REFUTED",
            reports.len(),
            elapsed,
            reports.len() - refuted,
            refuted
        );
    }
    Ok(if refuted == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The phase-name legend for `phase_nanos` arrays in `BENCH_*.json`.
fn phase_names_json() -> String {
    let names: Vec<String> = Phase::ALL
        .iter()
        .map(|p| format!("\"{}\"", p.name()))
        .collect();
    format!("[{}]", names.join(","))
}
