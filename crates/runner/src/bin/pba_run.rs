//! `pba-run` — run the reproduction experiments and ad-hoc protocol
//! simulations from the command line.
//!
//! ```text
//! pba-run list
//! pba-run all [--scale smoke|default|full] [--out DIR] [--trace F.jsonl]
//! pba-run <experiment-id> [--scale ...] [--out DIR] [--trace F.jsonl]
//! pba-run protocol <name> --m M --n N [--seed S] [--parallel] [--trace F.jsonl]
//! pba-run protocols            # list protocol names
//! pba-run stream [--policy P] [--n N] [--batch 8n] …   # streaming allocator
//! pba-run bench [--scale ...] [--out DIR|FILE.json]   # self-timed registry bench
//! pba-run verify [CLAIM…] [--scale ci|full] [--json]  # statistical claim oracles
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use pba_conformance::{Claim, VerifyOptions, VerifyScale};
use pba_core::metrics::{EngineMetrics, FanoutSink, MetricsSink, Phase};
use pba_core::{ExecutorKind, ProblemSpec, RunConfig};
use pba_protocols::{protocol_names, run_by_name};
use pba_runner::json::{escape as json_escape, executor_str, u64_array, JsonObject};
use pba_runner::{
    all_experiments, describe_fault_plan, experiment_by_id, parse_fault_spec, JsonlTrace,
    RunOptions, Scale, Table,
};
use pba_stream::{PolicyKind, StreamAllocator, WeightDist, Workload, WorkloadCfg, WorkloadKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pba-run list
  pba-run all [--scale smoke|default|full] [--out DIR] [--trace FILE.jsonl]
  pba-run <experiment-id e01..e19> [--scale ...] [--out DIR] [--trace FILE.jsonl]
  pba-run protocol <name> --m M --n N [--seed S] [--parallel] [--trace FILE.jsonl]
                 [--faults SPEC]
  pba-run protocols
  pba-run stream [--policy one-choice|two-choice|batched-two-choice|threshold]
                 [--n N] [--batch B | Kn] [--batches K] [--workload uniform|zipf|burst]
                 [--churn F] [--shards S] [--seed S] [--parallel] [--trace FILE.jsonl]
                 [--faults SPEC]
  pba-run bench [--scale smoke|default|full] [--out DIR|FILE.json]
  pba-run verify [CLAIM…] [--scale ci|full] [--json] [--faults SPEC]

fault spec: comma-separated key=value clauses, e.g.
  --faults drop=0.1,crash=0.02,straggle=8x0.2,domains=8x0.3,seed=7";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let done = |()| ExitCode::SUCCESS;
    match cmd.as_str() {
        "list" => {
            for e in all_experiments() {
                println!("{}  {}", e.id(), e.title());
            }
            Ok(ExitCode::SUCCESS)
        }
        "protocols" => {
            for name in protocol_names() {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "all" => {
            let flags = RunFlags::parse(&args[1..])?;
            let trace = flags.open_trace()?;
            for e in all_experiments() {
                run_experiment(e.as_ref(), &flags, trace.clone())?;
            }
            flush_trace(trace).map(done)
        }
        "protocol" => run_protocol(&args[1..]).map(done),
        "stream" => run_stream_cmd(&args[1..]).map(done),
        "bench" => run_bench(&args[1..]).map(done),
        // `verify` owns its exit code: a refuted claim is a nonzero exit
        // with the verdict table printed, not a usage error.
        "verify" => run_verify(&args[1..]),
        id => {
            let e = experiment_by_id(id).ok_or_else(|| unknown_command_message(id))?;
            let flags = RunFlags::parse(&args[1..])?;
            let trace = flags.open_trace()?;
            run_experiment(e.as_ref(), &flags, trace.clone())?;
            flush_trace(trace).map(done)
        }
    }
}

/// Error text for an unrecognized first argument: name the valid range
/// and, when something known is close, suggest it.
fn unknown_command_message(id: &str) -> String {
    const COMMANDS: [&str; 7] = [
        "list",
        "all",
        "protocol",
        "protocols",
        "stream",
        "bench",
        "verify",
    ];
    let lowered = id.to_lowercase();
    let best = all_experiments()
        .iter()
        .map(|e| e.id())
        .chain(COMMANDS)
        .map(|c| (edit_distance(&lowered, c), c))
        .min()
        .filter(|&(d, _)| d <= 2);
    let hint = match best {
        Some((_, c)) => format!("did you mean '{c}'? "),
        None => String::new(),
    };
    format!(
        "unknown experiment or command '{id}': {hint}valid experiment ids are \
         e01..e19 (see `pba-run list`)"
    )
}

/// Levenshtein distance, for the did-you-mean suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Flags shared by the experiment-running commands.
struct RunFlags {
    scale: Scale,
    out_dir: Option<String>,
    trace_path: Option<String>,
}

impl RunFlags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = RunFlags {
            scale: Scale::Default,
            out_dir: None,
            trace_path: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    flags.scale = Scale::parse(v).ok_or_else(|| format!("bad scale '{v}'"))?;
                }
                "--out" => {
                    flags.out_dir = Some(it.next().ok_or("--out needs a value")?.clone());
                }
                "--trace" => {
                    flags.trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(flags)
    }

    /// Open the JSONL trace sink, when requested.
    fn open_trace(&self) -> Result<Option<Arc<JsonlTrace>>, String> {
        match &self.trace_path {
            None => Ok(None),
            Some(path) => JsonlTrace::create(path)
                .map(|t| Some(Arc::new(t)))
                .map_err(|e| format!("--trace {path}: {e}")),
        }
    }
}

fn flush_trace(trace: Option<Arc<JsonlTrace>>) -> Result<(), String> {
    if let Some(t) = trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    Ok(())
}

fn run_experiment(
    e: &dyn pba_runner::Experiment,
    flags: &RunFlags,
    trace: Option<Arc<JsonlTrace>>,
) -> Result<(), String> {
    eprintln!("running {} ({})…", e.id(), e.title());
    let started = std::time::Instant::now();
    let mut opts = RunOptions::new();
    if let Some(t) = trace {
        opts = opts.with_metrics(t);
    }
    let report = e.run_with(flags.scale, &opts);
    eprintln!("  done in {:.1?}", started.elapsed());
    let md = report.to_markdown();
    println!("{md}");
    if let Some(dir) = &flags.out_dir {
        std::fs::create_dir_all(dir).map_err(|err| err.to_string())?;
        let path = format!("{dir}/{}.md", report.id);
        std::fs::write(&path, &md).map_err(|err| err.to_string())?;
        for (i, t) in report.tables.iter().enumerate() {
            let csv_path = format!("{dir}/{}_{}.csv", report.id, i);
            std::fs::write(&csv_path, t.to_csv()).map_err(|err| err.to_string())?;
        }
    }
    Ok(())
}

fn run_protocol(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("protocol: missing name".into());
    };
    let mut m = 1u64 << 20;
    let mut n = 1u32 << 10;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--m" => {
                m = it
                    .next()
                    .ok_or("--m needs a value")?
                    .parse()
                    .map_err(|_| "bad --m")?
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?
            }
            "--parallel" => parallel = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let spec = ProblemSpec::new(m, n).map_err(|e| e.to_string())?;
    let mut cfg = RunConfig::seeded(seed);
    if parallel {
        cfg = cfg.parallel();
    }
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    cfg = match &trace {
        None => cfg.with_metrics(metrics.clone()),
        Some(t) => cfg.with_metrics(Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ]))),
    };
    let started = std::time::Instant::now();
    let out = run_by_name(name, spec, cfg)
        .ok_or_else(|| format!("unknown protocol '{name}' (try `pba-run protocols`)"))?
        .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }
    let stats = out.load_stats();
    let report = metrics.report();
    println!("protocol:   {}", out.protocol);
    println!("spec:       {spec}");
    println!("rounds:     {}", out.rounds);
    println!(
        "placed:     {} ({} unallocated)",
        out.placed, out.unallocated
    );
    println!("max load:   {} (gap {})", stats.max(), out.gap());
    println!("load stats: {stats}");
    if let Some(plan) = &faults {
        println!("faults:     {}", describe_fault_plan(plan));
    }
    if let Some(f) = &out.faults {
        println!(
            "fault hits: {} dropped, {} crash-lost ({} redraws), {} straggled, \
             {} deferred, {} escalations, {} crashed bins",
            f.dropped_requests,
            f.crash_lost,
            f.crash_redraws,
            f.straggler_balls,
            f.deferred_balls,
            f.backoff_escalations,
            f.crashed_bins
        );
    }
    println!(
        "messages:   {} total ({} requests, {} responses, {} commits)",
        out.messages.total(),
        out.messages.requests,
        out.messages.responses,
        out.messages.commits
    );
    if let Some(max_bin) = out.max_bin_received() {
        println!("max bin rx: {max_bin}");
    }
    println!("wall time:  {elapsed:.2?}");
    println!(
        "throughput: {:.0} balls/s, {:.1} rounds/s",
        report.balls_per_sec(),
        report.rounds_per_sec()
    );
    let phases: Vec<String> = Phase::ALL
        .iter()
        .map(|&p| format!("{} {:.0}%", p.name(), 100.0 * report.phase_fraction(p)))
        .collect();
    println!("phases:     {}", phases.join(", "));
    if let Some(pool) = &report.pool {
        println!(
            "pool:       {} jobs, {} tasks, busy {:.2?}",
            pool.jobs,
            pool.tasks,
            std::time::Duration::from_nanos(pool.total_busy_nanos())
        );
    }
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// Parse a batch size: an absolute count (`4096`) or a multiple of the
/// bin count (`8n`, `n`).
fn parse_batch_size(spec: &str, n: u32) -> Result<u64, String> {
    let s = spec.trim();
    let value = if let Some(mult) = s.strip_suffix(['n', 'N']) {
        let mult: u64 = if mult.is_empty() {
            1
        } else {
            mult.parse().map_err(|_| {
                format!("bad --batch '{spec}' (absolute count or multiple like '8n')")
            })?
        };
        mult.checked_mul(n as u64)
            .ok_or_else(|| format!("--batch '{spec}' overflows"))?
    } else {
        s.parse()
            .map_err(|_| format!("bad --batch '{spec}' (absolute count or multiple like '8n')"))?
    };
    if value == 0 {
        return Err("--batch must be at least 1".into());
    }
    Ok(value)
}

/// `pba-run stream` — drive a synthetic workload through a long-lived
/// [`StreamAllocator`] and print a paper-style checkpoint table plus a
/// throughput summary.
fn run_stream_cmd(args: &[String]) -> Result<(), String> {
    let mut policy = PolicyKind::BatchedTwoChoice;
    let mut n: u32 = 1 << 10;
    let mut batch_spec = "4n".to_string();
    let mut batches: u64 = 32;
    let mut workload = "uniform".to_string();
    let mut churn = 0.0f64;
    let mut shards: usize = 1;
    let mut seed = 0u64;
    let mut parallel = false;
    let mut trace_path: Option<String> = None;
    let mut faults = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                policy = PolicyKind::parse(v).ok_or_else(|| {
                    let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown policy '{v}' (choose from: {})", names.join(", "))
                })?;
            }
            "--n" => {
                n = it
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "bad --n")?;
            }
            "--batch" => batch_spec = it.next().ok_or("--batch needs a value")?.clone(),
            "--batches" => {
                batches = it
                    .next()
                    .ok_or("--batches needs a value")?
                    .parse()
                    .map_err(|_| "bad --batches")?;
            }
            "--workload" => workload = it.next().ok_or("--workload needs a value")?.clone(),
            "--churn" => {
                churn = it
                    .next()
                    .ok_or("--churn needs a value")?
                    .parse()
                    .map_err(|_| "bad --churn")?;
            }
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "bad --shards")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed")?;
            }
            "--parallel" => parallel = true,
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be in [0, 1]".into());
    }
    let b = parse_batch_size(&batch_spec, n)?;
    let kind = match workload.as_str() {
        "uniform" => WorkloadKind::Uniform,
        "zipf" => WorkloadKind::Zipf { s: 1.2, max: 32 },
        "burst" => WorkloadKind::Burst {
            period: 8,
            factor: 4,
        },
        other => {
            return Err(format!(
                "unknown workload '{other}' (choose from: uniform, zipf, burst)"
            ))
        }
    };
    let cfg = WorkloadCfg {
        kind,
        batch: b,
        churn,
        weights: WeightDist::Constant(1),
    };

    let metrics = Arc::new(EngineMetrics::new());
    let trace = match &trace_path {
        None => None,
        Some(path) => Some(Arc::new(
            JsonlTrace::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
        )),
    };
    let sink: Arc<dyn MetricsSink> = match &trace {
        None => metrics.clone(),
        Some(t) => Arc::new(FanoutSink::new(vec![
            metrics.clone() as Arc<dyn MetricsSink>,
            t.clone() as Arc<dyn MetricsSink>,
        ])),
    };
    let mut alloc = StreamAllocator::new(n, seed, policy)
        .with_shards(shards)
        .with_metrics(sink);
    if parallel {
        alloc = alloc.parallel();
    }
    if let Some(plan) = faults {
        alloc = alloc.with_faults(plan);
    }
    // Distinct salt keeps workload draws off the placement streams.
    let mut traffic = Workload::new(cfg, seed ^ 0x57AEA3);

    let started = std::time::Instant::now();
    let records: Vec<_> = (0..batches)
        .map(|_| alloc.ingest(&traffic.next_batch()).record)
        .collect();
    let elapsed = started.elapsed();
    if let Some(t) = &trace {
        t.flush().map_err(|e| format!("trace flush: {e}"))?;
    }

    let mut table = Table::new(
        format!(
            "Streaming {}: {batches} batches of b = {batch_spec} ({b} arrivals), \
             n = {n}, churn {churn}",
            policy.name()
        ),
        &[
            "batch",
            "arrivals",
            "departures",
            "resident",
            "max load",
            "gap",
        ],
    );
    let step = (batches / 8).max(1);
    for (t, r) in records.iter().enumerate() {
        let t = t as u64;
        if t.is_multiple_of(step) || t == batches - 1 {
            table.push_row(vec![
                t.to_string(),
                r.arrivals.to_string(),
                r.departures.to_string(),
                r.resident.to_string(),
                r.max_load.to_string(),
                r.gap.to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());

    let report = metrics.report();
    let last = records.last().expect("batches >= 1");
    let mode = if parallel { ", parallel" } else { "" };
    println!("policy:     {} ({shards} shard(s){mode})", policy.name());
    println!("workload:   {workload}, b = {b}, churn {churn}, seed {seed}");
    if let Some(plan) = &faults {
        let redirects: u64 = records.iter().map(|r| r.fault_redirects).sum();
        let faulted = records.iter().filter(|r| r.failed_domains > 0).count();
        println!(
            "faults:     {} — {faulted}/{batches} batches degraded, {redirects} redirects",
            describe_fault_plan(plan)
        );
    }
    println!(
        "resident:   {} balls in {n} bins (max load {}, gap {})",
        last.resident, last.max_load, last.gap
    );
    println!("wall time:  {elapsed:.2?}");
    println!(
        "throughput: {:.1} batches/s, {:.0} balls/s",
        report.batches_per_sec(),
        report.stream_balls_per_sec()
    );
    if let Some(path) = &trace_path {
        println!("trace:      {path}");
    }
    Ok(())
}

/// Criterion-free self-timing benchmark of the protocol registry: every
/// protocol at `m = n`, sequential and parallel executors, `reps` seeds
/// each, measured by the engine's own [`EngineMetrics`]; then every
/// streaming placement policy ingesting 32n-ball batches, sequential and
/// parallel (batches/s, balls/s per lane). Writes `BENCH_<scale>.json`
/// and prints both summary tables.
fn run_bench(args: &[String]) -> Result<(), String> {
    let flags = RunFlags::parse(args)?;
    if flags.trace_path.is_some() {
        return Err("bench does not take --trace".into());
    }
    let n: u32 = match flags.scale {
        Scale::Smoke => 1 << 8,
        Scale::Default => 1 << 10,
        Scale::Full => 1 << 12,
    };
    let reps = flags.scale.reps() as u64;
    let spec = ProblemSpec::new(n as u64, n).map_err(|e| e.to_string())?;
    let scale_name = match flags.scale {
        Scale::Smoke => "smoke",
        Scale::Default => "default",
        Scale::Full => "full",
    };

    eprintln!(
        "benchmarking {} protocols at m = n = {n}, {reps} seeds, both executors…",
        protocol_names().len()
    );
    let mut entries = Vec::new();
    println!(
        "{:<22} {:<12} {:>12} {:>12} {:>9}",
        "protocol", "executor", "balls/s", "rounds/s", "rounds"
    );
    // The parallel rows need two fixes to report genuine pool numbers in
    // `BENCH_*.json` instead of `pool_jobs: 0`: a dedicated 4-lane pool
    // (the global pool collapses to one lane on single-core runners, and
    // one-lane rounds never fan out), and a chunk geometry under the
    // bench sizes (m = n ≤ 4096 sits below the engine's default 64 Ki
    // fan-out cutoff, which would silently serialize every round).
    let parallel = ExecutorKind::ParallelWith(4);
    for &name in protocol_names() {
        for executor in [ExecutorKind::Sequential, parallel] {
            let metrics = Arc::new(EngineMetrics::new());
            for rep in 0..reps {
                let cfg = RunConfig::seeded(90_000 + rep)
                    .with_executor(executor)
                    .with_chunking(256, n as usize)
                    .with_trace(false)
                    .with_metrics(metrics.clone());
                run_by_name(name, spec, cfg)
                    .expect("registry name")
                    .map_err(|e| format!("{name} ({}): {e}", executor_str(executor)))?;
            }
            let report = metrics.report();
            println!(
                "{:<22} {:<12} {:>12.0} {:>12.1} {:>9}",
                name,
                executor_str(executor),
                report.balls_per_sec(),
                report.rounds_per_sec(),
                report.rounds
            );
            let mut entry = JsonObject::new()
                .str("protocol", name)
                .str("executor", &executor_str(executor))
                .u64("runs", report.runs)
                .u64("rounds", report.rounds)
                .u64("placed", report.placed)
                .u64("run_nanos", report.run_nanos)
                .u64("round_nanos", report.round_nanos)
                .f64("balls_per_sec", report.balls_per_sec())
                .f64("rounds_per_sec", report.rounds_per_sec())
                .raw("phase_nanos", &u64_array(&report.phase_nanos));
            if let Some(pool) = &report.pool {
                entry = entry
                    .u64("pool_jobs", pool.jobs)
                    .u64("pool_tasks", pool.tasks)
                    .u64("pool_busy_nanos", pool.total_busy_nanos());
            }
            entries.push(entry.finish());
        }
    }

    // Streaming throughput: every placement policy ingesting 32n-ball
    // batches (32n ≥ the allocator's parallel cutoff at every scale), so
    // the parallel rows genuinely exercise the pool.
    let stream_b = 32 * n as u64;
    let stream_batches = 8u64;
    eprintln!(
        "benchmarking {} stream policies at n = {n}, b = 32n, {reps} seeds…",
        PolicyKind::ALL.len()
    );
    println!();
    println!(
        "{:<22} {:<12} {:>12} {:>12} {:>14}",
        "stream policy", "ingest", "batches/s", "balls/s", "balls/s/lane"
    );
    let mut stream_entries = Vec::new();
    for kind in PolicyKind::ALL {
        for parallel in [false, true] {
            // Live-load two-choice is defined by sequential ingestion; a
            // "parallel" row would just repeat the sequential numbers.
            if parallel && matches!(kind, PolicyKind::TwoChoice) {
                continue;
            }
            let lanes = if parallel {
                pba_par::global_pool().lanes() as u64
            } else {
                1
            };
            let metrics = Arc::new(EngineMetrics::new());
            for rep in 0..reps {
                let mut alloc = StreamAllocator::new(n, 91_000 + rep, kind)
                    .with_shards(lanes as usize)
                    .with_metrics(metrics.clone());
                if parallel {
                    alloc = alloc.parallel();
                }
                let mut traffic = Workload::new(WorkloadCfg::uniform(stream_b), 92_000 + rep);
                for _ in 0..stream_batches {
                    alloc.ingest(&traffic.next_batch());
                }
            }
            let report = metrics.report();
            let ingest = if parallel { "parallel" } else { "sequential" };
            let balls_per_sec = report.stream_balls_per_sec();
            println!(
                "{:<22} {:<12} {:>12.1} {:>12.0} {:>14.0}",
                kind.name(),
                ingest,
                report.batches_per_sec(),
                balls_per_sec,
                balls_per_sec / lanes as f64
            );
            stream_entries.push(
                JsonObject::new()
                    .str("policy", kind.name())
                    .str("ingest", ingest)
                    .u64("lanes", lanes)
                    .u64("batches", report.batches)
                    .u64("balls", report.batch_arrivals)
                    .u64("batch_nanos", report.batch_nanos)
                    .f64("batches_per_sec", report.batches_per_sec())
                    .f64("balls_per_sec", balls_per_sec)
                    .f64("balls_per_sec_per_lane", balls_per_sec / lanes as f64)
                    .finish(),
            );
        }
    }

    let doc = JsonObject::new()
        .str("bench", "pba protocol registry")
        .str("scale", scale_name)
        .u64("m", spec.balls())
        .u64("n", spec.bins() as u64)
        .u64("reps", reps)
        .raw("phases", &phase_names_json())
        .raw("entries", &format!("[{}]", entries.join(",")))
        .u64("stream_batch", stream_b)
        .u64("stream_batches", stream_batches)
        .raw("stream_entries", &format!("[{}]", stream_entries.join(",")))
        .finish();
    // `--out x.json` names the output file exactly (for side-by-side
    // baseline comparisons via scripts/bench_diff.sh); any other value is
    // a directory receiving the conventional `BENCH_<scale>.json`.
    let out = flags.out_dir.as_deref().unwrap_or(".");
    let path = if out.ends_with(".json") {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        out.to_string()
    } else {
        std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
        format!("{out}/BENCH_{scale_name}.json")
    };
    std::fs::write(&path, format!("{doc}\n")).map_err(|e| e.to_string())?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Error text for an unrecognized claim id: list the registry and, when
/// something known is close, suggest it — same treatment experiment ids
/// get in [`unknown_command_message`].
fn unknown_claim_message(id: &str) -> String {
    let ids = pba_conformance::claim_ids();
    let lowered = id.to_lowercase();
    let best = ids
        .iter()
        .map(|c| (edit_distance(&lowered, c), *c))
        .min()
        .filter(|&(d, _)| d <= 2);
    let hint = match best {
        Some((_, c)) => format!("did you mean '{c}'? "),
        None => String::new(),
    };
    format!(
        "unknown claim '{id}': {hint}registered oracles are {}",
        ids.join(", ")
    )
}

/// `pba-run verify` — run the statistical claim oracles from
/// `pba-conformance` and render a paper-style verdict table. Exits
/// nonzero when any claim is REFUTED, so CI catches a miswired engine;
/// `--faults` deliberately miswires every run (the negative control).
fn run_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut scale = VerifyScale::Ci;
    let mut json = false;
    let mut faults = None;
    let mut requested: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = VerifyScale::parse(v)
                    .ok_or_else(|| format!("bad verify scale '{v}' (ci or full)"))?;
            }
            "--json" => json = true,
            "--faults" => {
                faults = Some(parse_fault_spec(
                    it.next().ok_or("--faults needs a value")?,
                )?);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            claim => requested.push(claim.to_string()),
        }
    }
    let claims: Vec<Box<dyn Claim>> = if requested.is_empty() {
        pba_conformance::all_claims()
    } else {
        requested
            .iter()
            .map(|id| pba_conformance::claim_by_id(id).ok_or_else(|| unknown_claim_message(id)))
            .collect::<Result<_, _>>()?
    };
    let opts = VerifyOptions {
        scale,
        miswire: faults,
    };

    eprintln!(
        "verifying {} claim(s) at {} scale ({} replicates each)…",
        claims.len(),
        scale.name(),
        scale.reps()
    );
    if let Some(plan) = &faults {
        eprintln!("miswired on purpose: {}", describe_fault_plan(plan));
    }
    let started = std::time::Instant::now();
    let reports: Vec<_> = claims
        .iter()
        .map(|c| {
            let t = std::time::Instant::now();
            let r = c.check(&opts);
            eprintln!(
                "  {:<12} {:<9} {:.1?}",
                r.id,
                r.verdict.as_str(),
                t.elapsed()
            );
            r
        })
        .collect();
    let elapsed = started.elapsed();
    let refuted = reports.iter().filter(|r| !r.confirmed()).count();

    if json {
        let entries: Vec<String> = reports
            .iter()
            .map(|r| {
                let notes: Vec<String> = r
                    .notes
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect();
                JsonObject::new()
                    .str("id", r.id)
                    .str("experiment", r.experiment)
                    .str("title", r.title)
                    .str("bound", &r.bound)
                    .str("observed", &r.observed)
                    .f64("mean", r.mean)
                    .f64("ci_lo", r.ci.0)
                    .f64("ci_hi", r.ci.1)
                    .str("verdict", r.verdict.as_str())
                    .raw("notes", &format!("[{}]", notes.join(",")))
                    .finish()
            })
            .collect();
        let doc = JsonObject::new()
            .str("scale", scale.name())
            .u64("claims", reports.len() as u64)
            .u64("refuted", refuted as u64)
            .raw("reports", &format!("[{}]", entries.join(",")))
            .finish();
        println!("{doc}");
    } else {
        let mut table = Table::new(
            format!(
                "Conformance verdicts at {} scale ({} replicates per point)",
                scale.name(),
                scale.reps()
            ),
            &["oracle", "exp", "bound", "observed", "verdict"],
        );
        for r in &reports {
            table.push_row(vec![
                r.id.to_string(),
                r.experiment.to_string(),
                r.bound.clone(),
                r.observed.clone(),
                r.verdict.as_str().to_string(),
            ]);
        }
        println!("{}", table.to_markdown());
        for r in &reports {
            if !r.notes.is_empty() {
                println!("{} — {}", r.id, r.title);
                for note in &r.notes {
                    println!("  · {note}");
                }
            }
        }
        println!();
        println!(
            "{} claim(s) checked in {:.1?}: {} CONFIRMED, {} REFUTED",
            reports.len(),
            elapsed,
            reports.len() - refuted,
            refuted
        );
    }
    Ok(if refuted == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The phase-name legend for `phase_nanos` arrays in `BENCH_*.json`.
fn phase_names_json() -> String {
    let names: Vec<String> = Phase::ALL
        .iter()
        .map(|p| format!("\"{}\"", p.name()))
        .collect();
    format!("[{}]", names.join(","))
}
