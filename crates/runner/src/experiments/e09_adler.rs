//! E9 — \[ACMR98\] r-round non-adaptive parallel GREEDY: the load falls
//! with the number of rounds like `(log n/log log n)^{1/r}`-flavoured
//! trade-offs, the prior art both papers improve on.

use pba_analysis::predict::adler_load_scale;
use pba_protocols::AdlerGreedy;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::spec;
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E9 runner.
pub struct E09;

impl Experiment for E09 {
    fn id(&self) -> &'static str {
        "e09"
    }

    fn title(&self) -> &'static str {
        "ACMR98 r-round GREEDY: load decreasing in r"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (n, rounds): (u32, Vec<u32>) = match scale {
            Scale::Smoke => (1 << 10, vec![1, 2, 3]),
            Scale::Default => (1 << 14, vec![1, 2, 3, 4, 6]),
            Scale::Full => (1 << 17, vec![1, 2, 3, 4, 6, 8]),
        };
        let reps = scale.reps();
        let s = spec(n as u64, n);
        let mut table = Table::new(
            format!("r-round non-adaptive GREEDY[2] at m = n = {n}"),
            &[
                "r",
                "max load (mean)",
                "max load (max)",
                "paper scale (log n/loglog n)^{1/r}",
            ],
        );
        for &r in &rounds {
            let outcomes =
                replicate_outcomes_with(s, 9000, reps, opts, || AdlerGreedy::new(s, 2, r));
            let mean =
                outcomes.iter().map(|o| o.max_load() as f64).sum::<f64>() / outcomes.len() as f64;
            let max = outcomes.iter().map(|o| o.max_load()).max().unwrap();
            table.push_row(vec![
                r.to_string(),
                fnum(mean),
                max.to_string(),
                fnum(adler_load_scale(n, r)),
            ]);
        }
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "Symmetric non-adaptive algorithms achieve maximal load \
                    Θ((log n/log log n)^{1/r})-style trade-offs in r rounds and no better \
                    (Adler, Chakrabarti, Mitzenmacher, Rasmussen 1998); more rounds of \
                    communication buy strictly better balance.",
            tables: vec![table],
            notes: vec![
                "The reproduced shape: the measured max load decreases monotonically in r and \
                 flattens (diminishing returns), mirroring the r-th-root scale."
                    .to_string(),
            ],
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E09);
    }

    #[test]
    fn load_decreases_in_rounds() {
        let report = E09.run(Scale::Smoke);
        let means: Vec<f64> = report.tables[0]
            .rows()
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(means[0] >= means[1], "{means:?}");
        assert!(means[1] + 0.5 >= means[2], "{means:?}");
    }
}
