//! E11 — the introduction's motivating observation: a *fixed* threshold
//! `T = m/n + O(1)` (no undershoot) needs `Ω(log n)` rounds, because a
//! constant fraction of bins fills after one round and unallocated balls
//! keep hitting full bins.

use pba_analysis::LinearFit;
use pba_protocols::{FixedThreshold, ThresholdHeavy};

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{round_summary, spec};
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E11 runner.
pub struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "Fixed threshold needs Ω(log n) rounds; undershooting fixes it"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (ns, ratio): (Vec<u32>, u64) = match scale {
            Scale::Smoke => (vec![1 << 8, 1 << 10], 16),
            Scale::Default => (vec![1 << 8, 1 << 10, 1 << 12, 1 << 14], 64),
            Scale::Full => (vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16], 64),
        };
        let reps = scale.reps();
        let mut table = Table::new(
            format!("Rounds to completion at m/n = {ratio}: fixed T vs A_heavy's undershoot"),
            &["n", "log2 n", "fixed-threshold rounds", "a_heavy rounds"],
        );
        let mut xs = Vec::new();
        let mut fixed_ys = Vec::new();
        let mut heavy_ys = Vec::new();
        for &n in &ns {
            let s = spec(ratio * n as u64, n);
            let fixed = round_summary(&replicate_outcomes_with(s, 11_000, reps, opts, || {
                FixedThreshold::new(s, 1)
            }));
            let heavy = round_summary(&replicate_outcomes_with(s, 11_000, reps, opts, || {
                ThresholdHeavy::new(s)
            }));
            xs.push((n as f64).log2());
            fixed_ys.push(fixed.mean());
            heavy_ys.push(heavy.mean());
            table.push_row(vec![
                n.to_string(),
                fnum((n as f64).log2()),
                fnum(fixed.mean()),
                fnum(heavy.mean()),
            ]);
        }
        let fit_fixed = LinearFit::fit(&xs, &fixed_ys);
        let fit_heavy = LinearFit::fit(&xs, &heavy_ys);
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "Setting every bin's threshold to the final capacity m/n + O(1) from round \
                    one fills a constant fraction of bins immediately, so stragglers face \
                    constant rejection probability per round: Ω(log n) rounds. A_heavy's \
                    deliberately lower thresholds avoid this (§1.1).",
            tables: vec![table],
            notes: vec![format!(
                "Rounds vs log₂ n: fixed threshold slope {} (R² {}), A_heavy slope {} — the \
                 fixed variant grows linearly in log n while A_heavy stays flat.",
                fnum(fit_fixed.slope),
                fnum(fit_fixed.r_squared),
                fnum(fit_heavy.slope)
            )],
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E11);
    }

    #[test]
    fn fixed_threshold_much_slower() {
        let report = E11.run(Scale::Smoke);
        for row in report.tables[0].rows() {
            let fixed: f64 = row[2].parse().unwrap();
            let heavy: f64 = row[3].parse().unwrap();
            assert!(
                fixed > heavy,
                "n = {}: fixed {fixed} vs heavy {heavy}",
                row[0]
            );
        }
    }
}
