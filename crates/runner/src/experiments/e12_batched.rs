//! E12 — batched multiple-choice (\[BCE+12\]): the two-choice gap survives
//! batch-level staleness up to batches of size Θ(n).

use pba_protocols::BatchedTwoChoice;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{gap_summary, spec};
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E12 runner.
pub struct E12;

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "Batched two-choice: gap vs batch size"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (n, ratio) = match scale {
            Scale::Smoke => (1u32 << 8, 8u64),
            Scale::Default => (1 << 9, 32),
            Scale::Full => (1 << 10, 64),
        };
        let m = ratio * n as u64;
        let s = spec(m, n);
        let reps = scale.reps();
        let batches: Vec<(String, u64)> = vec![
            ("n/4".into(), (n / 4).max(1) as u64),
            ("n".into(), n as u64),
            ("4n".into(), 4 * n as u64),
            ("m (one shot)".into(), m),
        ];
        let mut table = Table::new(
            format!("Gap vs batch size B at m/n = {ratio}, n = {n}"),
            &["B", "batches", "gap (mean)", "gap (max)"],
        );
        for (label, b) in &batches {
            let outcomes =
                replicate_outcomes_with(s, 12_000, reps, opts, || BatchedTwoChoice::new(s, *b));
            let gaps = gap_summary(&outcomes);
            table.push_row(vec![
                label.clone(),
                m.div_ceil(*b).to_string(),
                fnum(gaps.mean()),
                fnum(gaps.max()),
            ]);
        }
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "Processing balls in parallel batches of B = O(n), each batch deciding on \
                    loads frozen at batch start, preserves the two-choice gap up to constants \
                    (Berenbrink, Czumaj, Englert, Friedetzky, Nagel 2012); one giant batch \
                    degrades toward d-left-less random placement.",
            tables: vec![table],
            notes: vec![
                "Shape: the gap is near-flat for B ≤ Θ(n) and jumps for B = m, where all \
                 decisions are blind."
                    .to_string(),
            ],
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E12);
    }

    #[test]
    fn one_shot_batch_is_worst() {
        let report = E12.run(Scale::Smoke);
        let rows = report.tables[0].rows();
        let small: f64 = rows[0][2].parse().unwrap();
        let giant: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(giant >= small, "giant batch {giant} < small batch {small}");
    }
}
