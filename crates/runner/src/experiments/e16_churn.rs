//! E16 — churn steady state: with equal arrival and departure rates the
//! batched two-choice gap settles to a bounded steady state instead of
//! drifting with time.

use pba_analysis::Summary;
use pba_stream::{PolicyKind, WorkloadCfg};

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{run_stream, StreamRun};
use crate::replicate::replicate;
use crate::table::{fnum, Table};

/// E16 runner.
pub struct E16;

impl Experiment for E16 {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "Churn steady state: gap under equal arrival/departure rates"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (n, churn_batches) = match scale {
            Scale::Smoke => (1u32 << 7, 24u64),
            Scale::Default => (1 << 9, 48),
            Scale::Full => (1 << 10, 96),
        };
        let reps = scale.reps();
        let b = 4 * n as u64;
        let warmup = 8u64;
        let run = StreamRun {
            bins: n,
            policy: PolicyKind::BatchedTwoChoice,
            cfg: WorkloadCfg::uniform(b).with_churn(1.0),
            warmup,
            batches: warmup + churn_batches,
            faults: None,
        };
        let records = replicate(16_000, reps, |seed| run_stream(&run, seed, opts));

        // Gap sampled at the end of warmup and at thirds of the churn
        // phase: a steady state shows no drift across the checkpoints.
        let checkpoints: [(String, u64); 4] = [
            ("warmup end".to_string(), warmup - 1),
            ("churn +1/3".to_string(), warmup + churn_batches / 3 - 1),
            ("churn +2/3".to_string(), warmup + 2 * churn_batches / 3 - 1),
            ("churn end".to_string(), warmup + churn_batches - 1),
        ];
        let mut table = Table::new(
            format!(
                "Batched two-choice under churn 1.0: resident {}n balls, b = 4n, n = {n}",
                4 * warmup
            ),
            &["checkpoint", "batch", "gap (mean)", "gap (max)"],
        );
        for (label, at) in &checkpoints {
            let gaps = Summary::from_u64(records.iter().map(|r| r[*at as usize].gap));
            table.push_row(vec![
                label.clone(),
                at.to_string(),
                fnum(gaps.mean()),
                fnum(gaps.max()),
            ]);
        }
        let first: f64 =
            Summary::from_u64(records.iter().map(|r| r[warmup as usize - 1].gap)).mean();
        let last: f64 = Summary::from_u64(records.iter().map(|r| r.last().unwrap().gap)).mean();
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "With departures matching arrivals (churn 1.0) the resident population is \
                    constant and the batched two-choice gap reaches a steady state: it does \
                    not grow with the number of elapsed batches, unlike one-choice whose \
                    deviation accumulates. (Batched-model steady state; cf. Los & Sauerwald's \
                    drift analysis.)",
            tables: vec![table],
            notes: vec![format!(
                "Drift check: gap (mean) moves {first} → {last} across the churn phase; \
                 bounded steady state means no monotone growth with time.",
                first = fnum(first),
                last = fnum(last),
            )],
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E16);
    }

    #[test]
    fn steady_state_does_not_blow_up() {
        let report = E16.run(Scale::Smoke);
        let rows = report.tables[0].rows();
        let early: f64 = rows[1][2].parse().unwrap();
        let late: f64 = rows.last().unwrap()[2].parse().unwrap();
        // Steady state: the late gap is within a small factor of the
        // early churn-phase gap (no unbounded drift).
        assert!(
            late <= 3.0 * early.max(2.0),
            "late gap {late} drifted away from early gap {early}"
        );
    }
}
