//! E1 — naive single-choice gap in both regimes.
//!
//! Claim (both papers' baseline): one round of uniform placement yields a
//! gap of `Θ(√((m/n)·ln n))` for `m ≥ n ln n` and `Θ(ln n/ln ln n)` at
//! `m = n`. The table compares the measured gap against the exact
//! first-moment prediction from the binomial marginal.

use pba_analysis::binomial::expected_max_load_single_choice;
use pba_analysis::predict::single_choice_gap;
use pba_protocols::SingleChoice;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{gap_summary, spec};
use crate::replicate::replicate;
use crate::table::{fnum, Table};

/// E1 runner.
pub struct E01;

impl Experiment for E01 {
    fn id(&self) -> &'static str {
        "e01"
    }

    fn title(&self) -> &'static str {
        "Single-choice baseline gap"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (ns, ratios): (Vec<u32>, Vec<u64>) = match scale {
            Scale::Smoke => (vec![1 << 8], vec![1, 64]),
            Scale::Default => (vec![1 << 10, 1 << 13], vec![1, 64, 512]),
            Scale::Full => (vec![1 << 10, 1 << 13, 1 << 16], vec![1, 8, 64, 512]),
        };
        let reps = scale.reps();
        let mut table = Table::new(
            "Single-choice gap: measured vs √(2(m/n)ln n) scale and exact binomial estimate",
            &[
                "n",
                "m/n",
                "gap (mean)",
                "gap (max)",
                "asymptotic scale",
                "exact estimate",
            ],
        );
        let mut notes = Vec::new();
        for &n in &ns {
            for &ratio in &ratios {
                let s = spec(ratio * n as u64, n);
                let outcomes = replicate(1000, reps, |seed| {
                    pba_core::Simulator::new(s, opts.config(seed))
                        .run(SingleChoice::new(s))
                        .unwrap()
                });
                let gaps = gap_summary(&outcomes);
                let predicted = single_choice_gap(s.balls(), n);
                let exact = expected_max_load_single_choice(s.balls(), n) - s.average_load();
                table.push_row(vec![
                    n.to_string(),
                    ratio.to_string(),
                    fnum(gaps.mean()),
                    fnum(gaps.max()),
                    fnum(predicted),
                    fnum(exact),
                ]);
            }
        }
        notes.push(
            "The exact estimate (first-moment crossing of n·P[Bin(m,1/n) ≥ k] = 1) should track \
             the measured mean within a few units; the asymptotic scale is the paper's Θ(·) \
             without its constant."
                .to_string(),
        );
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "Uniform random placement has maximal load m/n + Θ(√((m/n)·log n)) for m ≥ n \
                    log n, and Θ(log n/log log n) at m = n.",
            tables: vec![table],
            notes,
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E01);
    }

    #[test]
    fn measured_tracks_exact_estimate() {
        let report = E01.run(Scale::Smoke);
        let t = &report.tables[0];
        // Row with m/n = 64 at n = 256: measured mean vs exact estimate
        // within a factor 2.
        let row = t.rows().iter().find(|r| r[1] == "64").unwrap();
        let measured: f64 = row[2].parse().unwrap();
        let exact: f64 = row[5].parse().unwrap();
        assert!(
            measured > exact * 0.5 && measured < exact * 2.0,
            "{measured} vs {exact}"
        );
    }
}
