//! E25 — the estimated-average retry loop: balls reject placements above
//! a sampled load-average estimate and retry, bins hard-cap at `⌈m/n⌉`,
//! so completed runs are perfectly balanced and the cost is the retry
//! count — expected-constant per ball, flat in `n` (arXiv:1111.0801).
//! The guarded oracle is `e25-retries`.

use pba_analysis::Summary;
use pba_protocols::EstimatedAverage;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{round_summary, spec};
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E25 runner.
pub struct E25;

impl Experiment for E25 {
    fn id(&self) -> &'static str {
        "e25"
    }

    fn title(&self) -> &'static str {
        "estimated-average: perfect balance at expected-constant retries"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (ns, ratios): (Vec<u32>, Vec<u64>) = match scale {
            Scale::Smoke => (vec![1 << 8, 1 << 9], vec![4]),
            Scale::Default => (vec![1 << 9, 1 << 11, 1 << 13], vec![1, 4]),
            Scale::Full => (vec![1 << 9, 1 << 11, 1 << 13, 1 << 15], vec![1, 4, 16]),
        };
        let reps = scale.reps();
        let mut table = Table::new(
            "estimated-average: retries per ball vs n (max load pinned at ⌈m/n⌉)",
            &[
                "n",
                "m/n",
                "max load",
                "retries (mean)",
                "retries (max rep)",
                "rounds (mean)",
            ],
        );
        let mut retry_means = Vec::new();
        for &ratio in &ratios {
            for &n in &ns {
                let s = spec(ratio * n as u64, n);
                let outcomes =
                    replicate_outcomes_with(s, 25_000, reps, opts, || EstimatedAverage::new(s));
                let max_load = outcomes.iter().map(|o| o.max_load()).max().unwrap();
                assert_eq!(
                    max_load,
                    s.ceil_avg(),
                    "hard cap guarantees exact balance at m/n = {ratio}, n = {n}"
                );
                // Retries per ball: every active ball retries once per
                // round it stays active, so Σ_r active_before / m − 1.
                let retries = Summary::from_values(
                    outcomes
                        .iter()
                        .map(|o| {
                            let t = o.trace.as_ref().expect("harness runs record traces");
                            let probed: u64 = t.records().iter().map(|r| r.active_before).sum();
                            probed as f64 / s.balls() as f64 - 1.0
                        })
                        .collect(),
                );
                let rounds = round_summary(&outcomes);
                if ratio == *ratios.last().unwrap() {
                    retry_means.push(retries.mean());
                }
                table.push_row(vec![
                    n.to_string(),
                    ratio.to_string(),
                    max_load.to_string(),
                    fnum(retries.mean()),
                    fnum(retries.max()),
                    fnum(rounds.mean()),
                ]);
            }
        }
        let mut notes = vec![
            "Max load equals ⌈m/n⌉ on every run by the acceptance rule; the reproduced claim \
             is the retry bill. A retry is a round a ball stays active, so the mean is \
             Σ active(r)/m − 1 over the trace."
                .to_string(),
        ];
        if let (Some(first), Some(last)) = (retry_means.first(), retry_means.last()) {
            notes.push(format!(
                "Retry flatness at the largest ratio: mean {} at the smallest n vs {} at the \
                 largest — expected-constant, not growing with n.",
                fnum(*first),
                fnum(*last)
            ));
        }
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "Balls that estimate the average load from a constant-size probe sample and \
                    reject overfull placements reach the optimal max load ⌈m/n⌉ with only \
                    expected-constant retries per ball, independent of n \
                    (Dutta et al., arXiv:1111.0801).",
            tables: vec![table],
            notes,
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E25);
    }

    #[test]
    fn retries_stay_small_and_balance_is_exact() {
        let report = E25.run(Scale::Smoke);
        for row in report.tables[0].rows() {
            let ratio: f64 = row[1].parse().unwrap();
            let max_load: f64 = row[2].parse().unwrap();
            assert_eq!(max_load, ratio, "max load must equal ⌈m/n⌉ = m/n here");
            let retries: f64 = row[3].parse().unwrap();
            assert!(retries < 4.0, "mean retries {retries} not constant-like");
        }
    }
}
