//! E6 — Theorem 3 / Claims 7–10: the asymmetric superbin protocol places
//! everything in O(1) rounds with gap O(1) and near-average per-bin
//! message counts.

use pba_protocols::Asymmetric;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{gap_summary, round_summary, spec};
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E6 runner.
pub struct E06;

impl Experiment for E06 {
    fn id(&self) -> &'static str {
        "e06"
    }

    fn title(&self) -> &'static str {
        "Asymmetric superbins: O(1) rounds, gap O(1)"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (n, shifts): (u32, Vec<u32>) = match scale {
            Scale::Smoke => (1 << 8, vec![0, 6]),
            Scale::Default => (1 << 10, vec![0, 4, 8, 12]),
            Scale::Full => (1 << 12, vec![0, 4, 8, 12, 14]),
        };
        let reps = scale.reps();
        let mut table = Table::new(
            format!("Asymmetric protocol at n = {n}"),
            &[
                "m/n",
                "rounds (max over seeds)",
                "gap (mean)",
                "gap (max)",
                "max bin msgs / (2·m/n + log n)",
            ],
        );
        for &shift in &shifts {
            let m = (n as u64) << shift;
            let s = spec(m, n);
            let outcomes = replicate_outcomes_with(s, 6000, reps, opts, || Asymmetric::new(s));
            let rounds = round_summary(&outcomes);
            let gaps = gap_summary(&outcomes);
            let denom = 2.0 * s.average_load() + (n as f64).ln();
            let msg_ratio = outcomes
                .iter()
                .map(|o| o.max_bin_received().unwrap_or(0) as f64 / denom)
                .fold(f64::MIN, f64::max);
            table.push_row(vec![
                format!("2^{shift}"),
                fnum(rounds.max()),
                fnum(gaps.mean()),
                fnum(gaps.max()),
                fnum(msg_ratio),
            ]);
        }
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "With globally known bin IDs, m/n + O(1) load is achievable in O(1) rounds \
                    w.h.p. (≤ 3 superbin rounds + 1 symmetric pre-round), with bins receiving \
                    (1+o(1))·m/n + O(log n) ball messages (Theorem 3, Claims 7-10).",
            tables: vec![table],
            notes: vec![
                "Rounds must not grow with m/n across four orders of magnitude — contrast with \
                 E3's log log growth and E11's log n growth."
                    .to_string(),
                "The message column normalizes by 2·m/n + log n (requests + commit \
                 notifications); the (1+o(1)) claim appears as the ratio decreasing toward ~1 \
                 as m/n grows."
                    .to_string(),
            ],
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E06);
    }

    #[test]
    fn rounds_are_constant() {
        let report = E06.run(Scale::Smoke);
        for row in report.tables[0].rows() {
            let rounds: f64 = row[1].parse().unwrap();
            assert!(rounds <= 6.0, "m/n = {}: {rounds} rounds", row[0]);
        }
    }
}
