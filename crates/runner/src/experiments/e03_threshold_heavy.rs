//! E3 — the main theorem: `A_heavy` places m balls with gap O(1) in
//! `O(log log(m/n) + log* n)` rounds using O(m) messages (Theorems 1/6).

use pba_analysis::predict::{log_star, predicted_rounds_threshold_heavy};
use pba_analysis::LinearFit;
use pba_core::mathutil::log_log2;
use pba_protocols::ThresholdHeavy;

use crate::experiment::{Experiment, ExperimentReport, RunOptions, Scale};
use crate::experiments::{gap_summary, round_summary, spec};
use crate::replicate::replicate_outcomes_with;
use crate::table::{fnum, Table};

/// E3 runner.
pub struct E03;

impl Experiment for E03 {
    fn id(&self) -> &'static str {
        "e03"
    }

    fn title(&self) -> &'static str {
        "A_heavy: gap O(1) in O(log log(m/n) + log* n) rounds"
    }

    fn execute(&self, scale: Scale, opts: &RunOptions) -> ExperimentReport {
        let (n, ratio_shifts): (u32, Vec<u32>) = match scale {
            Scale::Smoke => (1 << 8, vec![4, 8]),
            Scale::Default => (1 << 10, vec![4, 8, 12, 16]),
            Scale::Full => (1 << 11, vec![4, 8, 12, 15]),
        };
        let reps = scale.reps();
        let mut table = Table::new(
            format!("A_heavy at n = {n}: rounds, gap, messages vs theory"),
            &[
                "m/n",
                "rounds (mean)",
                "paper rounds (recurrence + log* n)",
                "gap (mean)",
                "gap (max)",
                "ball msgs / m",
            ],
        );
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &shift in &ratio_shifts {
            let m = (n as u64) << shift;
            let s = spec(m, n);
            let outcomes = replicate_outcomes_with(s, 3000, reps, opts, || ThresholdHeavy::new(s));
            let rounds = round_summary(&outcomes);
            let gaps = gap_summary(&outcomes);
            let msgs_per_ball = outcomes
                .iter()
                .map(|o| o.messages.sent_by_balls() as f64 / m as f64)
                .sum::<f64>()
                / outcomes.len() as f64;
            let paper = predicted_rounds_threshold_heavy(m, n) + log_star(n as f64);
            xs.push(log_log2((m / n as u64) as f64));
            ys.push(rounds.mean());
            table.push_row(vec![
                format!("2^{shift}"),
                fnum(rounds.mean()),
                paper.to_string(),
                fnum(gaps.mean()),
                fnum(gaps.max()),
                fnum(msgs_per_ball),
            ]);
        }
        let fit = LinearFit::fit(&xs, &ys);
        let notes = vec![
            format!(
                "Rounds regressed on log₂log₂(m/n): slope {}, R² {} — the paper predicts a \
                 strong positive linear relationship (each threshold round cuts log(m̃/n) to \
                 2/3).",
                fnum(fit.slope),
                fnum(fit.r_squared)
            ),
            "Ball messages per ball must stay O(1): the request counts form a geometric series \
             (Theorem 6 bounds the total by 2m; the light phase adds a bounded tail)."
                .to_string(),
        ];
        ExperimentReport {
            id: self.id(),
            title: self.title(),
            claim: "A_heavy achieves maximal load m/n + O(1) within O(log log(m/n) + log* n) \
                    rounds w.h.p., with O(m) total messages (Theorem 1/6).",
            tables: vec![table],
            notes,
            perf: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        crate::experiments::smoke::check(&E03);
    }

    #[test]
    fn gap_stays_constant_while_ratio_explodes() {
        let report = E03.run(Scale::Smoke);
        let t = &report.tables[0];
        for row in t.rows() {
            let gap_max: f64 = row[4].parse().unwrap();
            assert!(gap_max <= 3.0, "m/n = {}: gap {gap_max}", row[0]);
        }
    }
}
